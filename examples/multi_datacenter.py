#!/usr/bin/env python3
"""Multi-datacenter operation: the §5 deployment pattern.

"The messaging layer, based on Apache Kafka, runs in 5 co-location centers,
spanning different geographical areas."

This example runs two co-location centers as independent Liquid stacks:

* **west** ingests front-end traffic and runs the nearline cleaning job;
* a :class:`MirrorMaker` replicates the cleaned feed over a simulated WAN
  into **east**, where the offline/analytics side consumes it;
* the east side consumer uses ``read_committed`` isolation while the west
  producer writes transactionally — an exactly-once cross-DC pipeline
  (the paper's §4.3 "ongoing effort", completed);
* access control (§2.1) gives each team only the feeds it owns.

Run:  python examples/multi_datacenter.py
"""

from repro import Liquid, JobConfig
from repro.common.clock import SimClock
from repro.core import OP_CREATE, OP_READ, OP_WRITE, CleaningTask
from repro.messaging.mirror import MirrorMaker
from repro.messaging.transactions import TransactionalProducer
from repro.workloads import ProfileUpdateGenerator


def main() -> None:
    clock = SimClock()  # one wall clock spans both datacenters
    west = Liquid(num_brokers=3, clock=clock, access_control=True)
    east = Liquid(num_brokers=3, clock=clock)

    # --- Access control: platform owns feeds, teams get narrow grants -----
    west.acl.grant("platform", OP_CREATE, "*")
    west.acl.grant("frontend", OP_WRITE, "profile-updates")
    west.acl.grant("cleaning-team", OP_READ, "profile-updates")
    west.acl.grant("cleaning-team", OP_CREATE, "profiles-clean")
    west.create_feed("profile-updates", partitions=2, principal="platform")

    west.submit_job(
        JobConfig(
            name="clean",
            inputs=["profile-updates"],
            task_factory=lambda: CleaningTask(
                "profiles-clean", {"headline": lambda s: " ".join(str(s).split())}
            ),
        ),
        outputs=["profiles-clean"],
        principal="cleaning-team",
        description="normalize whitespace in headlines",
    )

    # --- West: transactional ingest (exactly-once even with retries) -------
    generator = ProfileUpdateGenerator(users=200, seed=5)
    txn = TransactionalProducer(west.cluster, "frontend-ingest")
    batch: list = []
    ingested = 0
    for profile in generator.snapshot():
        batch.append(profile)
        if len(batch) == 50:
            txn.begin()
            for item in batch:
                txn.send("profile-updates", item, key=item["user"])
            txn.commit()
            ingested += len(batch)
            batch = []
    if batch:
        txn.begin()
        for item in batch:
            txn.send("profile-updates", item, key=item["user"])
        txn.commit()
        ingested += len(batch)
    print(f"west ingested {ingested} profile updates transactionally")

    west.process_available()
    west.tick(0.1)

    # --- WAN mirroring into east ------------------------------------------
    mirror = MirrorMaker(
        west.cluster, east.cluster, topics=["profiles-clean"],
        name="west-to-east", wan_rtt=40e-3,
    )
    copied = mirror.run_until_synced()
    print(f"mirrored {copied} cleaned records west -> east "
          f"(lag now {mirror.lag()})")
    assert copied == ingested
    assert mirror.lag() == 0

    # --- East: offline consumers read the mirrored feed --------------------
    east.tick(0.1)
    analytics = east.consumer(group="analytics")
    analytics.subscribe(["profiles-clean"])
    got = []
    while True:
        records = analytics.poll(500)
        if not records:
            break
        got.extend(records)
    print(f"east analytics consumed {len(got)} records "
          f"({len({r.key for r in got})} distinct members)")
    assert len(got) == ingested

    # New data keeps flowing; the mirror keeps up incrementally.
    txn.begin()
    for update in generator.delta(100.0):
        txn.send("profile-updates", update, key=update["user"])
    txn.commit()
    west.process_available()
    delta_copied = mirror.run_until_synced()
    print(f"incremental delta mirrored: {delta_copied} records")
    assert delta_copied > 0

    print("multi_datacenter OK")


if __name__ == "__main__":
    main()
