"""Trace one record through the stack, hop by hop.

Installs a tracer, pushes a single record into a source feed, lets a job
enrich it into a derived feed, consumes the result — then prints the one
connected trace that journey produced, plus the per-stage latency report.

Run with::

    PYTHONPATH=src python examples/trace_a_record.py

Deterministic: same output every run (trace ids are seeded, time is
simulated).
"""

from repro.api import (
    AdminClient,
    JobConfig,
    Liquid,
    TopicPartition,
    TraceQuery,
    Tracer,
    render_timeline,
    tracing,
)


class EnrichTask:
    """The paper's §3.2 sketch: read a feed, emit a cleaned derived feed."""

    def process(self, record, collector):
        collector.send(
            "page_views_cleaned",
            {"member": record.key, "page": record.value["page"], "ok": True},
            key=record.key,
        )


def main() -> None:
    liquid = Liquid(num_brokers=3)
    liquid.create_feed("page_views", partitions=1)
    liquid.submit_job(
        JobConfig(name="clean", inputs=["page_views"], task_factory=EnrichTask),
        outputs=["page_views_cleaned"],
    )

    with tracing(Tracer(seed=7)) as tracer:
        # 1. Produce one record into the source-of-truth feed.
        liquid.producer().send(
            "page_views", {"page": "/jobs"}, key="member-17"
        )
        liquid.cluster.run_until_replicated()

        # 2. The nearline job picks it up and emits to the derived feed.
        liquid.process_available()
        liquid.cluster.run_until_replicated()

        # 3. A back-end consumer reads the derived feed.
        consumer = liquid.consumer()
        consumer.assign([TopicPartition("page_views_cleaned", 0)])
        records = consumer.poll()

    print(f"consumed: {records[0].value}\n")

    query = TraceQuery(tracer)
    (trace_id,) = query.trace_ids()
    print(render_timeline(trace_id, tracer))
    print(f"\nconnected tree: {query.is_connected(trace_id)}")
    print(f"stages: {len(query.stages(trace_id))} spans, "
          f"end-to-end {query.duration(trace_id) * 1000:.2f} ms simulated")

    print("\nper-stage latency (p50/p99, simulated seconds):")
    report = AdminClient(liquid.cluster).stage_latency_report(tracer)
    for stats in report.stages:
        print(f"  {stats.stage:24s} count={stats.count} "
              f"p50={stats.p50:.6f} p99={stats.p99:.6f}")

    assert query.is_connected(trace_id) and len(records) == 1
    print("\ntrace a record OK")


if __name__ == "__main__":
    main()
