#!/usr/bin/env python3
"""Site-speed monitoring (RUM): the paper's first §5.1 production use case.

"when a client visits a webpage, an event is created that contains a
timestamp, the page or resource loaded, the time that it took to load, the
IP address location of the requesting client and the CDN used ... Liquid can
feed back-end applications that detect anomalies: e.g. CDNs that are
performing particularly slowly ... back-end applications can detect
anomalies within minutes as opposed to hours."

Pipeline built here (three jobs chained through derived feeds):

    rum-events ──(sessionize)──> rum-sessions
    rum-events ──(group by CDN, tumbling 10s windows)──> cdn-load-stats
    cdn-load-stats ──(anomaly detect)──> cdn-alerts

A CDN degradation is injected at t=30s; the example verifies the alert feed
flags the right CDN, and reports the simulated detection delay.

Run:  python examples/site_speed_monitoring.py
"""

from repro import Liquid, JobConfig, StoreConfig
from repro.core import AnomalyDetectorTask
from repro.processing import SessionWindow, TumblingWindow
from repro.workloads import CdnDegradation, RumEventGenerator

DEGRADED_CDN = "cdn-fastly"
DEGRADATION_AT = 30.0


class SessionizeTask:
    """Groups per-user events into gap-based sessions (gap = 20s)."""

    def __init__(self) -> None:
        self.windows = SessionWindow(
            gap=20.0,
            init=lambda: {"events": 0, "total_ms": 0.0},
            fold=lambda acc, e: {
                "events": acc["events"] + 1,
                "total_ms": acc["total_ms"] + e["load_time_ms"],
            },
        )

    def process(self, record, collector) -> None:
        event = record.value
        for done in self.windows.add(event["user"], event["timestamp"], event):
            collector.send(
                "rum-sessions",
                {
                    "user": done.key,
                    "session_start": done.window_start,
                    "session_end": done.window_end,
                    "page_loads": done.count,
                    "mean_load_ms": done.value["total_ms"] / done.count,
                },
                key=done.key,
                timestamp=done.window_end,
            )


class CdnWindowTask:
    """Per-CDN tumbling-window mean load times."""

    def __init__(self) -> None:
        self.windows = TumblingWindow(
            size=10.0,
            init=lambda: {"n": 0, "total_ms": 0.0},
            fold=lambda acc, e: {
                "n": acc["n"] + 1,
                "total_ms": acc["total_ms"] + e["load_time_ms"],
            },
        )

    def process(self, record, collector) -> None:
        event = record.value
        for done in self.windows.add(event["cdn"], event["timestamp"], event):
            collector.send(
                "cdn-load-stats",
                {
                    "cdn": done.key,
                    "window_start": done.window_start,
                    "mean_load_ms": done.value["total_ms"] / done.value["n"],
                    "samples": done.count,
                },
                key=done.key,
                timestamp=done.window_end,
            )


def main() -> None:
    liquid = Liquid(num_brokers=3)
    liquid.create_feed("rum-events", partitions=2)

    liquid.submit_job(
        JobConfig(name="sessionize", inputs=["rum-events"],
                  task_factory=SessionizeTask),
        outputs=["rum-sessions"],
        description="per-user session rollups",
    )
    liquid.submit_job(
        JobConfig(name="cdn-windows", inputs=["rum-events"],
                  task_factory=CdnWindowTask),
        outputs=["cdn-load-stats"],
        description="per-CDN 10s window means",
    )
    liquid.submit_job(
        JobConfig(
            name="cdn-anomalies",
            inputs=["cdn-load-stats"],
            task_factory=lambda: AnomalyDetectorTask(
                "cdn-alerts",
                metric_fn=lambda v: v["mean_load_ms"],
                key_fn=lambda v: v["cdn"],
                threshold=2.5,
                min_samples=2,
            ),
            stores=[StoreConfig("baselines")],
        ),
        outputs=["cdn-alerts"],
        description="alert when a CDN's window mean jumps 2.5x over baseline",
    )

    # Front-end traffic with an injected CDN incident at t=30s.
    generator = RumEventGenerator(
        rate_per_second=100.0,
        degradation=CdnDegradation(DEGRADED_CDN, at_time=DEGRADATION_AT, factor=6.0),
    )
    producer = liquid.producer()
    for event in generator.events(6_000):  # ~60s of traffic
        producer.send("rum-events", event, key=event["user"],
                      timestamp=event["timestamp"])

    liquid.process_available()
    liquid.tick(0.1)

    # Back-end: read the alert feed.
    alerts_consumer = liquid.consumer(group="oncall")
    alerts_consumer.subscribe(["cdn-alerts"])
    alerts = []
    while True:
        batch = alerts_consumer.poll(500)
        if not batch:
            break
        alerts.extend(batch)

    flagged = {a.value["key"] for a in alerts}
    first_alert_ts = min(a.timestamp for a in alerts) if alerts else None
    print(f"{len(alerts)} alerts; CDNs flagged: {sorted(flagged)}")
    assert DEGRADED_CDN in flagged, "the degraded CDN must be flagged"
    if first_alert_ts is not None:
        print(f"incident at t={DEGRADATION_AT:.0f}s (event time); first alert "
              f"window closed by t={first_alert_ts:.1f}s "
              f"(detection delay ~{first_alert_ts - DEGRADATION_AT:.1f}s — "
              f"'minutes as opposed to hours')")

    # Sessions rollup exists too.
    sess_consumer = liquid.consumer(group="ux-research")
    sess_consumer.subscribe(["rum-sessions"])
    sessions = []
    while True:
        batch = sess_consumer.poll(500)
        if not batch:
            break
        sessions.extend(batch)
    print(f"{len(sessions)} completed user sessions rolled up")

    print("site_speed_monitoring OK")


if __name__ == "__main__":
    main()
