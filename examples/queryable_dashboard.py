#!/usr/bin/env python3
"""Querying job state: a dashboard reading nearline counters in place.

A counting job aggregates page-view events per page.  Instead of consuming
the job's output feed (another pipeline to operate), a dashboard queries
the job's *state* directly through a :class:`StateQueryRouter`: point
lookups land on the shard that owns the key — routed with the producer's
own hash partitioner, so routing can never disagree with placement — and
range/count queries scatter-gather across every shard.

Three read flavors, all with per-response staleness bounds:

* **bounded** (default) — the live store, staleness 0 from the primary;
* **stale-tolerant** — a warm standby replica answers, off the processing
  container's critical path, reporting how many changelog records it may
  be behind;
* **snapshot** — state as of the last checkpoint: nothing the response
  contains can be rolled back by a crash.

The job keeps ``num_standby_replicas=1``, so when its container crashes
the recovery *promotes* the standby — paying only the changelog tail since
the last checkpoint — and the dashboard keeps answering, exactly.

Everything runs on the simulated clock: identical output on every run.

Run:  python examples/queryable_dashboard.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.common.clock import SimClock
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobRunner, StoreConfig
from repro.serving import CONSISTENCY_SNAPSHOT, StateQueryRouter

PAGES = ["home", "search", "checkout", "profile", "help"]


class PageViewCounter:
    def init(self, context):
        self.store = context.store("views")

    def process(self, record, collector):
        page = record.key
        self.store.put(page, (self.store.get(page) or 0) + 1)


def main() -> None:
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("page-views", num_partitions=3, replication_factor=3)

    runner = JobRunner(
        JobConfig(
            name="view-counter",
            inputs=["page-views"],
            task_factory=PageViewCounter,
            stores=[StoreConfig("views")],
            changelog_replication=3,
            num_standby_replicas=1,
        ),
        cluster,
    )

    producer = Producer(cluster)
    for i in range(600):
        producer.send("page-views", {"viewer": i}, key=PAGES[i % len(PAGES)])
    runner.run_until_idle()
    runner.checkpoint()

    router = StateQueryRouter(runner)
    print("== the dashboard's queries ==")
    for page in PAGES:
        result = router.get("views", page)
        print(f"  views[{page!r:11s}] = {result.value:4d}  "
              f"(shard {result.task_id}, {result.served_by}, "
              f"staleness {result.staleness_records} records)")
    total = router.approximate_count("views")
    print(f"  distinct pages: {total.value}")

    # More traffic lands but is not yet checkpointed: the three read
    # flavors now answer differently — and each says how stale it is.
    for i in range(90):
        producer.send("page-views", {"viewer": 600 + i}, key="checkout")
    runner.run_until_idle()
    live = router.get("views", "checkout")
    stale = router.get("views", "checkout", allow_stale=True)
    snap = router.get("views", "checkout", consistency=CONSISTENCY_SNAPSHOT)
    print("== between checkpoints ==")
    print(f"  bounded : {live.value} (staleness {live.staleness_records})")
    print(f"  stale-ok: {stale.value} from {stale.served_by} "
          f"(staleness {stale.staleness_records})")
    print(f"  snapshot: {snap.value} as of the last checkpoint")

    runner.checkpoint()
    before = {page: router.get("views", page).value for page in PAGES}
    runner.crash()
    report = runner.recover()
    print("== after a crash ==")
    print(f"  promoted standbys: {report.standby_promotions()} "
          f"(replayed only {report.records_replayed} tail records)")
    after = {page: router.get("views", page).value for page in PAGES}
    assert after == before, "failover must not change a single answer"
    print(f"  answers identical across failover: {after == before}")
    print("OK")


if __name__ == "__main__":
    main()
