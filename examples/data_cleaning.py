#!/usr/bin/env python3
"""Data cleaning & normalization: the paper's §5.1 headline use case.

"when users generate new content, the cleaning pipeline must have
low-latency ... when the source code of the cleaning pipeline changes, it is
necessary to re-process data with the new algorithm so that all data was
cleaned with the same algorithm."

This example runs both halves on ONE system (the point of Liquid):

1. the v1 cleaning job processes profile updates nearline;
2. the algorithm changes (v2 adds location canonicalization); a v2 job is
   submitted which REWINDS to the beginning and re-cleans everything, while
   v1-cleaned data keeps serving — the two jobs run under separate container
   quotas (resource isolation, "as required for A/B testing");
3. once v2 catches up, back-end systems cut over; every v2 record carries
   the algorithm version in its headers, so consumers can verify "all data
   was cleaned with the same algorithm".

Run:  python examples/data_cleaning.py
"""

from repro import Liquid, JobConfig
from repro.core import CleaningTask
from repro.processing import ResourceQuota
from repro.workloads import ProfileUpdateGenerator


def clean_v1_rules() -> dict:
    """v1: trim + lowercase headlines."""
    return {
        "headline": lambda s: " ".join(str(s).split()).lower(),
        "connections": int,
    }


def clean_v2_rules() -> dict:
    """v2: v1 plus location canonicalization (title-case)."""
    rules = clean_v1_rules()
    rules["location"] = lambda s: str(s).strip().title()
    return rules


def drain(liquid, topic: str, group: str) -> list:
    consumer = liquid.consumer(group=group)
    consumer.subscribe([topic])
    out = []
    while True:
        batch = consumer.poll(500)
        if not batch:
            break
        out.extend(batch)
    return out


def main() -> None:
    liquid = Liquid(num_brokers=3, host_cores=4)
    liquid.create_feed("profile-updates", partitions=2)

    # --- Phase 1: v1 cleaning runs nearline -------------------------------------
    v1 = JobConfig(
        name="clean-v1",
        inputs=["profile-updates"],
        task_factory=lambda: CleaningTask("profiles-clean-v1", clean_v1_rules(),
                                          version="v1"),
        version="v1",
    )
    liquid.submit_job(v1, outputs=["profiles-clean-v1"],
                      quota=ResourceQuota(cpu_cores=1.0),
                      description="v1 cleaning: trim+lowercase headlines")

    generator = ProfileUpdateGenerator(users=300, churn_fraction=0.05)
    producer = liquid.producer()
    for profile in generator.snapshot(timestamp=0.0):
        producer.send("profile-updates", profile, key=profile["user"],
                      timestamp=profile["timestamp"])
    for delta in generator.deltas(periods=5, start=1.0):
        producer.send("profile-updates", delta, key=delta["user"],
                      timestamp=delta["timestamp"])

    liquid.process_available()
    liquid.tick(0.1)
    v1_clean = drain(liquid, "profiles-clean-v1", "search-backend")
    print(f"v1 cleaned {len(v1_clean)} records nearline")
    assert all(r.headers.get("cleaned_by") == "v1" for r in v1_clean)

    # --- Phase 2: the algorithm changes; v2 re-processes from scratch -----------
    # The offset manager knows where v1 got to (its checkpoints carry the
    # version annotation); v2 simply starts from the beginning of the
    # source-of-truth feed — same code path, no separate batch system.
    v2 = JobConfig(
        name="clean-v2",
        inputs=["profile-updates"],
        task_factory=lambda: CleaningTask("profiles-clean-v2", clean_v2_rules(),
                                          version="v2"),
        version="v2",
    )
    liquid.submit_job(v2, outputs=["profiles-clean-v2"],
                      quota=ResourceQuota(cpu_cores=1.0),
                      description="v2 cleaning: + location canonicalization")

    # New user content keeps arriving while v2 back-fills (both jobs run,
    # isolated from each other).
    for delta in generator.deltas(periods=3, start=10.0):
        producer.send("profile-updates", delta, key=delta["user"],
                      timestamp=delta["timestamp"])

    liquid.process_available()
    liquid.tick(0.1)

    v2_clean = drain(liquid, "profiles-clean-v2", "search-backend-v2")
    v1_total = liquid.dataflow.runner("clean-v1").records_processed
    v2_total = liquid.dataflow.runner("clean-v2").records_processed
    print(f"v2 re-cleaned the full history + new data: {len(v2_clean)} records")
    print(f"job records processed: v1={v1_total}, v2={v2_total}")
    assert v2_total == v1_total, "v2 must have covered everything v1 did"
    assert all(r.headers.get("cleaned_by") == "v2" for r in v2_clean), (
        "every v2 record must be cleaned by the same algorithm"
    )
    canonical = [r for r in v2_clean if r.value.get("location") == "Singapore"]
    print(f"v2 canonicalized {len(canonical)} 'singapore' locations "
          "(v1 left them mis-cased)")
    assert canonical, "expected v2-only normalization to appear"

    # --- Phase 3: lineage shows both derivations side by side --------------------
    for feed_name in ("profiles-clean-v1", "profiles-clean-v2"):
        lineage = liquid.feeds.get(feed_name).lineage
        print(f"{feed_name}: produced by {lineage.produced_by} "
              f"(algorithm {lineage.software_version})")

    print("data_cleaning OK")


if __name__ == "__main__":
    main()
