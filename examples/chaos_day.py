#!/usr/bin/env python3
"""Chaos day: a seeded fault storm against the messaging layer (§4.3, §5).

LinkedIn's Liquid deployment runs ~300 brokers; at that scale broker
crashes, leadership churn and replication stalls are daily weather, not
incidents.  This example compresses a "chaos day" into a few simulated
minutes: a :class:`ChaosSchedule` derives the whole storm from ONE seed, an
idempotent acks=all producer and a committing consumer group work through
it, and a :class:`ChaosReport` audits the invariants that make the paper's
nearline guarantees real:

* no acknowledged record is lost,
* committed consumer offsets never move backwards,
* idempotent dedup holds (retries never double-append).

Because every random draw comes from the seed, re-running this script
replays the exact same storm — the printed trace is byte-for-byte stable.

Run:  python examples/chaos_day.py
"""

from repro.chaos import ChaosConfig, ChaosReport, ChaosSchedule
from repro.common.clock import SimClock
from repro.common.errors import MessagingError
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.consumer_group import GroupCoordinator
from repro.messaging.producer import Producer

SEED = 20150107  # CIDR'15, day one
HORIZON = 30.0


def main() -> None:
    cluster = MessagingCluster(num_brokers=5, clock=SimClock())
    cluster.create_topic(
        "events", num_partitions=4, replication_factor=3,
        min_insync_replicas=2,
    )
    schedule = ChaosSchedule(
        cluster, seed=SEED, topics=["events"],
        config=ChaosConfig(horizon=HORIZON),
    )
    plan = schedule.install()
    print(f"seed {SEED}: {len(plan)} faults planned over {HORIZON:.0f}s")

    report = ChaosReport()
    producer = Producer(
        cluster, acks=ACKS_ALL, idempotent=True, max_retries=2,
        retry_jitter_seed=SEED,
    )
    coordinator = GroupCoordinator(cluster)
    consumer = Consumer(cluster, group="dashboard",
                        group_coordinator=coordinator)
    consumer.subscribe(["events"])

    sent = 0
    while cluster.clock.now() < HORIZON:
        for _ in range(3):
            value = f"event-{sent}"
            sent += 1
            try:
                ack = producer.send("events", value, key=value)
                if ack is not None:
                    report.note_ack(ack.partition, ack, [value])
            except MessagingError as exc:
                report.note_error("produce", exc)  # parked, not lost
        try:
            consumer.poll(50)
            consumer.commit()
            for tp in consumer.assignment():
                report.note_commit("dashboard", tp, consumer.position(tp))
        except MessagingError as exc:
            report.note_error("consume", exc)
        cluster.tick(0.25)

    print("storm trace (first 8 fired events):")
    for line in schedule.trace()[:8]:
        print(f"  {line}")

    # Heal the cluster, then deliver everything the storm parked.
    schedule.heal()
    cluster.run_until_replicated()
    parked = {
        tp: [[v for (_k, v, _ts, _h) in entries] for _seq, entries in batches]
        for tp, batches in producer._failed_batches.items()
    }
    buffered = {
        tp: [v for (_k, v, _ts, _h) in buffer]
        for tp, buffer in producer._buffers.items()
    }
    for ack in producer.flush():
        tp = ack.partition
        values = parked[tp].pop(0) if parked.get(tp) else buffered.pop(tp)
        report.note_ack(tp, ack, values)
    cluster.run_until_replicated()

    summary = report.summary()
    print(
        f"sent {sent} records; {summary['acked_records']} acked, "
        f"{summary['duplicate_acks']} dedup hits, "
        f"{sum(summary['tolerated_errors'].values())} tolerated errors"
    )
    report.assert_invariants(cluster)
    print("invariants hold: no acked record lost, no commit regression, "
          "dedup intact")
    print("chaos day OK")


if __name__ == "__main__":
    main()
