#!/usr/bin/env python3
"""Elastic scale-out: a load spike grows a job, draining it shrinks it back.

A pass-through job starts on one container.  A burst of 2,400 records lands
on its input topic; the :class:`ElasticJobController` watches consumer lag
through a :class:`LagMonitor`, and its :class:`ScalingPolicy` (hysteresis +
cooldown) grows the job to four containers, one per quantum of sustained
breach.  Each scale event checkpoints every task first, then migrates only
the minimum set of tasks — restored from their changelogs — so the drained
output is byte-identical to a fixed-parallelism run.  Once the backlog
empties, the controller scales back down.

Everything runs on the simulated clock: the timeline printed below is the
same on every machine, every run.

Run:  python examples/elastic_scaleout.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.common.clock import SimClock
from repro.elasticity import ElasticJobController, ScalingPolicy
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobRunner
from repro.tools.admin import AdminClient

PARTITIONS = 4
SPIKE = 2400


class Enrich:
    """Pass-through enrichment: tag each click with its partition."""

    def process(self, record, collector):
        collector.send("enriched", {"click": record.value,
                                    "shard": record.partition},
                       key=record.key, partition=record.partition)


def main() -> None:
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    for topic in ("clicks", "enriched"):
        cluster.create_topic(topic, num_partitions=PARTITIONS,
                             replication_factor=3)

    # The spike: 2,400 clicks land before the job gets a single quantum.
    producer = Producer(cluster)
    for i in range(SPIKE):
        producer.send("clicks", f"click-{i}", key=f"user{i % 7}",
                      partition=i % PARTITIONS)
    producer.flush()
    cluster.run_until_replicated()

    runner = JobRunner(
        JobConfig(name="enrich", inputs=["clicks"], task_factory=Enrich,
                  cpu_cost_per_message=0.005),  # 50 msgs / 0.25s quantum
        cluster,
    )
    controller = ElasticJobController(
        runner,
        ScalingPolicy(min_containers=1, max_containers=PARTITIONS,
                      scale_out_lag=100.0, scale_in_lag=10.0, cooldown=1.0),
        quantum=0.25,
    )

    print(f"spike: {SPIKE} records across {PARTITIONS} partitions, "
          f"job starts on {controller.containers} container")
    print(f"initial backlog: {runner.backlog()} records")

    controller.run_until_drained()

    print("scale timeline:")
    for line in controller.timeline():
        print(f"  {line}")
    print(f"drained in {cluster.clock.now():.2f} simulated seconds, "
          f"settled on {controller.containers} containers")

    emitted = sum(
        len(cluster.fetch("enriched", p, 0, 100_000).records)
        for p in range(PARTITIONS)
    )
    assert emitted == SPIKE, "every input record emitted exactly once"
    assert runner.backlog() == 0
    runner.checkpoint()  # commit the drained positions for the lag report
    report = AdminClient(cluster).consumer_lag_report().group("job-enrich")
    assert report.total_lag == 0
    print(f"output: {emitted} enriched records, lag 0")

    print("elastic scale-out OK")


if __name__ == "__main__":
    main()
