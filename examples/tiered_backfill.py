#!/usr/bin/env python3
"""Tiered storage: retention bounds the hot log, the archive keeps history.

A topic with a 1-hour retention window runs for a (simulated) day.  Without
tiering, everything older than an hour is gone; with archive-before-delete
retention, sealed segments move to the cold store (a simulated DFS — the
paper's batch-storage system doubling as the offline tier) and the full day
stays rewindable (§2.2): a consumer can seek to offset 0 and replay the
complete history, paying the cold-fetch cost model only for the archived
part of the scan.

Run:  python examples/tiered_backfill.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.topic import TopicConfig
from repro.storage.log import LogConfig
from repro.storage.retention import RetentionConfig
from repro.storage.tiered import TieredConfig
from repro.tools.admin import AdminClient


def main() -> None:
    cluster = MessagingCluster(num_brokers=3, maintenance_interval=60.0)
    cluster.create_topic(
        TopicConfig(
            name="clicks",
            num_partitions=1,
            replication_factor=3,
            retention=RetentionConfig(retention_seconds=3600.0),  # 1 hour hot
            log=LogConfig(segment_max_messages=50),
            tiered=TieredConfig(),
        )
    )
    tp = TopicPartition("clicks", 0)

    # A day of traffic: one click per simulated minute.
    for minute in range(24 * 60):
        cluster.produce(
            "clicks", 0, [(f"user{minute % 7}", {"minute": minute}, None, {})],
            acks="all",
        )
        cluster.tick(60.0)
    cluster.run_until_replicated()
    cluster.tick(60.0)

    leader = cluster._leader_replica(tp)
    hot_start = leader.log.log_start_offset
    print(f"produced {cluster.log_end_offset(tp)} clicks over 24h")
    print(f"hot log holds offsets [{hot_start}, {cluster.log_end_offset(tp)}) "
          f"(~{(cluster.log_end_offset(tp) - hot_start)} newest)")
    print(f"archive holds offsets [0, {leader.cold_tier.manifest.end_offset}) "
          f"in {leader.cold_tier.manifest.segment_count} segments")

    # Rewind to the very beginning — before the hot log starts — and replay.
    consumer = Consumer(cluster, max_poll_messages=200)
    consumer.assign([tp])
    consumer.seek_to_beginning(tp)
    assert consumer.position(tp) == 0, "beginning_offset reaches the archive"

    replayed = []
    backfill_latency = 0.0
    while True:
        batch = consumer.poll()
        if not batch:
            break
        replayed.extend(batch)
        backfill_latency += consumer.last_poll_latency

    assert [r.offset for r in replayed] == list(range(24 * 60)), "complete history"
    assert [r.value["minute"] for r in replayed] == list(range(24 * 60))
    print(f"backfill replayed {len(replayed)} records "
          f"(simulated {backfill_latency:.2f}s — cold fetches dominate)")

    stats = leader.cold_tier.stats()
    print(f"cold tier: {stats['archived_bytes']}B archived, "
          f"hit ratio {stats['cold_hit_ratio']:.2f}")
    print(AdminClient(cluster).format_topic("clicks"))

    print("tiered backfill OK")


if __name__ == "__main__":
    main()
