#!/usr/bin/env python3
"""Operational analysis: the paper's §5.1 monitoring use case.

"Analyzing operational data, such as metrics, alerts and logs, is crucial
to react to potential problems quickly ... With Liquid, integrating new
data, such as crash reports from mobile phones, is straightforward: all
data is transported by the messaging layer, which only needs to produce a
new metric."

Pipeline:

    ops-events ──(route by type)──> ops-metrics / ops-logs / ops-crashes
    ops-logs   ──(error-rate per host, stateful)──> host-error-rates
    ops-metrics──(running aggregates per metric)──> metric-aggregates

An error burst is injected on one host; the example verifies the burst host
tops the error-rate feed, and that the mobile-crash event type flowed
through with zero schema work (it was just routed to its own feed).

Run:  python examples/operational_analysis.py
"""

from collections import defaultdict

from repro import Liquid, JobConfig, StoreConfig
from repro.core import RouterTask
from repro.workloads import ErrorBurst, OperationalEventGenerator

BURST_HOST = "host-007"


class ErrorRateTask:
    """Per-host error/total counters; emits the rate on every error."""

    def init(self, context) -> None:
        self._store = context.store("counters")

    def process(self, record, collector) -> None:
        event = record.value
        host = event["host"]
        counts = self._store.get_or_default(host, {"total": 0, "errors": 0})
        counts = {
            "total": counts["total"] + 1,
            "errors": counts["errors"] + (1 if event["severity"] == "ERROR" else 0),
        }
        self._store.put(host, counts)
        if event["severity"] == "ERROR":
            collector.send(
                "host-error-rates",
                {
                    "host": host,
                    "errors": counts["errors"],
                    "total": counts["total"],
                    "rate": counts["errors"] / counts["total"],
                },
                key=host,
                timestamp=event["timestamp"],
            )


class MetricAggregateTask:
    """Running mean per (host, metric) pair."""

    def init(self, context) -> None:
        self._store = context.store("aggregates")

    def process(self, record, collector) -> None:
        event = record.value
        key = f"{event['host']}:{event['metric']}"
        agg = self._store.get_or_default(key, {"n": 0, "total": 0.0})
        agg = {"n": agg["n"] + 1, "total": agg["total"] + event["value"]}
        self._store.put(key, agg)
        collector.send(
            "metric-aggregates",
            {"key": key, "mean": agg["total"] / agg["n"], "n": agg["n"]},
            key=key,
            timestamp=event["timestamp"],
        )


def drain(liquid, topic: str, group: str) -> list:
    consumer = liquid.consumer(group=group)
    consumer.subscribe([topic])
    out = []
    while True:
        batch = consumer.poll(500)
        if not batch:
            break
        out.extend(batch)
    return out


def main() -> None:
    liquid = Liquid(num_brokers=3)
    liquid.create_feed("ops-events", partitions=2)

    liquid.submit_job(
        JobConfig(
            name="route",
            inputs=["ops-events"],
            task_factory=lambda: RouterTask(
                lambda v: {
                    "metric": "ops-metrics",
                    "log": "ops-logs",
                    "mobile_crash": "ops-crashes",
                }.get(v["type"])
            ),
        ),
        outputs=["ops-metrics", "ops-logs", "ops-crashes"],
        description="route operational events by type",
    )
    liquid.submit_job(
        JobConfig(
            name="error-rates",
            inputs=["ops-logs"],
            task_factory=ErrorRateTask,
            stores=[StoreConfig("counters")],
        ),
        outputs=["host-error-rates"],
        description="per-host error rates",
    )
    liquid.submit_job(
        JobConfig(
            name="metric-agg",
            inputs=["ops-metrics"],
            task_factory=MetricAggregateTask,
            stores=[StoreConfig("aggregates")],
        ),
        outputs=["metric-aggregates"],
        description="running means per host+metric",
    )

    generator = OperationalEventGenerator(
        hosts=20,
        burst=ErrorBurst(BURST_HOST, at_time=10.0, error_rate=0.9),
        mobile_crash_fraction=0.02,
        seed=7,
    )
    producer = liquid.producer()
    for event in generator.events(5_000):
        producer.send("ops-events", event, key=event["host"],
                      timestamp=event["timestamp"])

    liquid.process_available()
    liquid.tick(0.1)

    # The burst host must dominate the error-rate feed.
    rates = drain(liquid, "host-error-rates", "sre-dashboard")
    last_rate: dict[str, float] = {}
    for record in rates:
        last_rate[record.value["host"]] = record.value["rate"]
    ranked = sorted(last_rate.items(), key=lambda kv: -kv[1])
    print(f"error-rate leaderboard: {[(h, round(r, 3)) for h, r in ranked[:3]]}")
    assert ranked[0][0] == BURST_HOST, f"expected {BURST_HOST} on top"

    # Mobile crashes flowed through without any schema/migration work.
    crashes = drain(liquid, "ops-crashes", "mobile-team")
    by_os = defaultdict(int)
    for record in crashes:
        by_os[record.value["os"]] += 1
    print(f"{len(crashes)} mobile crash reports integrated "
          f"(by OS: {dict(by_os)}) — new data source, zero schema work")
    assert crashes

    aggregates = drain(liquid, "metric-aggregates", "viz-service")
    print(f"{len(aggregates)} aggregate updates feed the metrics visualizations")

    # The engineer terminal (Figure 1): inspect the stack itself.
    from repro.tools import AdminClient

    admin = AdminClient(liquid.cluster)
    print("--- engineer terminal ---")
    print(admin.format_health())
    lags = admin.all_group_lags()
    visible = {g: lag for g, lag in lags.items() if not g.startswith("job-")}
    print(f"consumer group lags: {visible}")
    assert admin.health_check(max_group_lag=10**9).healthy

    print("operational_analysis OK")


if __name__ == "__main__":
    main()
