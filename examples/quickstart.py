#!/usr/bin/env python3
"""Quickstart: the Liquid stack in ~60 lines (paper Figures 1-2).

Builds the two-layer stack, publishes a source-of-truth feed, submits a
stateful ETL job deriving a new feed, consumes the derived feed from a
"back-end system", and demonstrates rewindability — the properties the
paper lists in §1 (low latency, incremental processing, lineage).

Run:  python examples/quickstart.py
"""

from repro import Liquid, JobConfig, StoreConfig
from repro.core import GroupCountTask


def main() -> None:
    # One Liquid deployment: 3 brokers (messaging) + container host (processing).
    liquid = Liquid(num_brokers=3)

    # 1. A source-of-truth feed: primary data entering the organization.
    liquid.create_feed("page-views", partitions=4)

    # 2. ETL-as-a-service: submit a stateful job deriving per-page counts.
    job = JobConfig(
        name="count-views",
        inputs=["page-views"],
        task_factory=lambda: GroupCountTask("views-by-page", lambda v: v["page"]),
        stores=[StoreConfig("counts")],
    )
    liquid.submit_job(job, outputs=["views-by-page"],
                      description="running view counts per page")

    # 3. Front-end systems publish events.  Events are keyed by page — the
    #    aggregation dimension — so all views of a page land in the same
    #    partition and one task owns that page's count (semantic routing,
    #    §3.1: "according to a hash function for ... semantic routing").
    producer = liquid.producer()
    for i in range(1_000):
        page = f"/p/{i % 10}"
        producer.send("page-views", {"page": page, "member": i % 97}, key=page)

    # 4. The processing layer runs the job to completion (nearline: this
    #    happens continuously; here we drain in one call).
    processed = liquid.process_available()
    print(f"processing layer handled {processed} records")

    # 5. A back-end system consumes the derived feed.
    liquid.tick(0.1)  # let replication advance the high watermark
    consumer = liquid.consumer(group="dashboard")
    consumer.subscribe(["views-by-page"])
    latest: dict[str, int] = {}
    while True:
        batch = consumer.poll(500)
        if not batch:
            break
        for record in batch:
            latest[record.value["group"]] = record.value["count"]
    print(f"dashboard sees {len(latest)} pages; "
          f"/p/0 viewed {latest['/p/0']} times")
    assert latest["/p/0"] == 100

    # 6. Lineage: every derived feed knows how it was computed.
    for lineage in liquid.feeds.provenance("views-by-page"):
        print(f"lineage: {lineage.produced_by} ({lineage.software_version}) "
              f"from {list(lineage.inputs)}")

    # 7. Rewindability: reposition to any past point by time.
    offsets = liquid.rewind_to_time("page-views", timestamp=0.0)
    print(f"rewind to t=0 would replay from {sorted(o for o in offsets.values())}")

    print("quickstart OK")


if __name__ == "__main__":
    main()
