#!/usr/bin/env python3
"""Monitoring Liquid with Liquid: the telemetry pipeline eats its own tail.

Liquid's operability story is self-hosted: the exporter snapshots metric
deltas and spans on the sim clock and publishes them into reserved
``__telemetry.*`` feeds — which are ordinary feeds, so the monitoring
stack is *just another Liquid job*.  This example wires the full loop:

1. A workload job (``enrich``) processes a page-view feed.
2. ``liquid.enable_telemetry(with_slos=True)`` starts the exporter and
   the standard SLOs (freshness, lag, ISR availability, standbys).
3. A monitoring job consumes ``__telemetry.metrics`` and rolls up the
   worst p99 per histogram — dogfood analytics over telemetry records.
4. A broker is killed: the ISR-availability SLO burns, a FIRING alert
   lands in ``__telemetry.alerts``, and the health report degrades.
5. The broker returns; the alert RESOLVES and health goes green again.

Run:  python examples/monitor_yourself.py
"""

from repro import JobConfig, Liquid, StoreConfig
from repro.common.records import TopicPartition
from repro.observability.slo import ALERT_FIRING, ALERT_RESOLVED
from repro.observability.telemetry import (
    TELEMETRY_ALERTS_FEED,
    TELEMETRY_METRICS_FEED,
)
from repro.tools.admin import AdminClient

EXPORT_INTERVAL = 5.0


class EnrichTask:
    """The workload under observation: plain per-record enrichment."""

    def process(self, record, collector) -> None:
        view = record.value
        collector.send(
            "sessions",
            {"user": view["user"], "page": view["page"], "ok": True},
            key=view["user"],
        )


class P99RollupTask:
    """The monitor: worst p99 per histogram metric, from telemetry records."""

    def init(self, context) -> None:
        self.worst = context.store("worst_p99")

    def process(self, record, collector) -> None:
        payload = record.value
        if payload.get("kind") != "histogram":
            return
        metric, p99 = payload["metric"], payload["p99"]
        if p99 > (self.worst.get(metric) or -1.0):
            self.worst.put(metric, p99)
            collector.send(
                "p99-rollups", {"metric": metric, "p99": p99}, key=metric
            )


def drain(cluster, topic):
    records = []
    for tp in cluster.partitions_of(topic):
        offset = cluster.beginning_offset(tp)
        while True:
            result = cluster.fetch(topic, tp.partition, offset, 10_000)
            if not result.records:
                break
            records.extend(result.records)
            offset = result.next_offset
    return records


def main() -> None:
    liquid = Liquid(num_brokers=3)
    liquid.create_feed("page-views", partitions=2)
    liquid.submit_job(
        JobConfig(name="enrich", inputs=["page-views"], task_factory=EnrichTask),
        outputs=["sessions"],
    )
    liquid.enable_telemetry(interval=EXPORT_INTERVAL, with_slos=True)
    monitor = liquid.submit_job(
        JobConfig(
            name="monitor",
            inputs=[TELEMETRY_METRICS_FEED],
            task_factory=P99RollupTask,
            stores=[StoreConfig("worst_p99")],
        ),
        outputs=["p99-rollups"],
    )
    admin = AdminClient(liquid.cluster)
    exporter = liquid.telemetry
    slos = exporter.slo_monitor

    # -- steady state: traffic flows, telemetry exports, monitor rolls up --
    producer = liquid.producer()
    for wave in range(3):
        for i in range(40):
            producer.send(
                "page-views",
                {"user": f"u{i % 7}", "page": f"/p/{i % 5}", "wave": wave},
                key=f"u{i % 7}",
            )
        producer.flush()
        liquid.tick(1.0)  # let the wave age so record_age is visible
        liquid.process_available()
        liquid.tick(EXPORT_INTERVAL)  # at least one export cycle per wave
    monitor.run_until_idle()

    rollups = {r.key: r.value["p99"] for r in drain(liquid.cluster, "p99-rollups")}
    print(f"telemetry export cycles:    {exporter.cycles}")
    print(f"histogram metrics rolled up: {len(rollups)}")
    age = "processing.job.enrich.record_age"
    assert age in rollups, "the workload's latency histogram must be rolled up"
    print(f"  worst {age} p99 = {rollups[age]:.3f}s")

    report = admin.cluster_health_report(runners=liquid.dataflow.runners())
    print(f"health before the incident: {report.status}")
    assert report.status == "healthy"

    # -- incident: a broker dies; ISR availability burns; alert fires --
    liquid.cluster.kill_broker(1)
    liquid.tick(6 * EXPORT_INTERVAL)
    report = admin.cluster_health_report(runners=liquid.dataflow.runners())
    print(f"health during the incident: {report.status} "
          f"({', '.join(report.reason_codes())})")
    assert report.status != "healthy"
    assert slos.is_firing("isr_availability")

    # -- recovery: broker returns, replicas heal, the alert resolves --
    liquid.cluster.restart_broker(1)
    liquid.cluster.run_until_replicated()
    liquid.tick(400.0)  # long-window burn drains below the clear threshold
    report = admin.cluster_health_report(runners=liquid.dataflow.runners())
    print(f"health after recovery:      {report.status}")
    assert report.status == "healthy"
    assert not slos.is_firing("isr_availability")

    alerts = [
        r.value
        for r in drain(liquid.cluster, TELEMETRY_ALERTS_FEED)
        if r.value["slo"] == "isr_availability"
    ]
    states = [a["state"] for a in alerts]
    print(f"alert timeline for isr_availability: {states}")
    assert states == [ALERT_FIRING, ALERT_RESOLVED]

    # The alerts feed is itself queryable like any other feed.
    tp = TopicPartition(TELEMETRY_ALERTS_FEED, 0)
    print(f"alert records retained:     {liquid.cluster.end_offset(tp)}")
    print("OK")


if __name__ == "__main__":
    main()
