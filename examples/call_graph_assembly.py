#!/usr/bin/env python3
"""Call-graph assembly: the paper's §5.1 distributed-tracing use case.

"Liquid records each event produced by the REST calls and stores them in
the messaging layer with a unique id per user call ... The processing layer
processes these events to assemble the call graph.  The call graph is used
in production to monitor the site in real-time."

A stateful job buffers spans per request id (keyed state, restored from a
changelog on failure), assembles the tree once the request goes quiet, and
emits an assembled-graph summary; a downstream job flags requests whose
critical path is dominated by one slow service.  Before Liquid this was "a
batch job constructed a call graph hours after an incident was logged" —
here assembly happens as spans stream in.

Run:  python examples/call_graph_assembly.py
"""

from collections import defaultdict

from repro import Liquid, JobConfig, StoreConfig
from repro.workloads import (
    CallGraphEventGenerator,
    SlowService,
    assemble_call_tree,
    critical_path_ms,
)

SLOW_SERVICE = "search-svc"


class AssembleTask:
    """Buffers spans per request; emits the assembled graph when complete.

    Spans are keyed by request id, so each request's spans arrive
    contiguously on one partition.  The task therefore assembles the
    *previous* request as soon as a span from a *new* request shows up, and
    :meth:`window` flushes the final in-flight request on a timer — the
    standard trace-assembly pattern (a real deployment would use the same
    quiescence timeout).  Buffered spans live in a changelogged store, so a
    crashed task recovers its in-flight requests.
    """

    def __init__(self) -> None:
        self._store = None
        self._current_id: str | None = None

    def init(self, context) -> None:
        self._store = context.store("spans")
        self._current_id = None

    def process(self, record, collector) -> None:
        span = record.value
        request_id = span["request_id"]
        if self._current_id is not None and request_id != self._current_id:
            self._flush(self._current_id, collector)
        self._current_id = request_id
        spans = self._store.get_or_default(request_id, [])
        self._store.put(request_id, spans + [span])

    def window(self, collector) -> None:
        """Quiescence flush: assemble whatever is still in flight."""
        for request_id, _spans in list(self._store.items()):
            self._flush(request_id, collector)
        self._current_id = None

    def _flush(self, request_id: str, collector) -> None:
        spans = self._store.get(request_id)
        if spans:
            self._emit(request_id, spans, collector)
        self._store.delete(request_id)

    def _emit(self, request_id: str, spans: list, collector) -> None:
        tree = assemble_call_tree(spans)
        slowest = max(spans, key=lambda s: s["duration_ms"])
        collector.send(
            "call-graphs",
            {
                "request_id": request_id,
                "spans": len(spans),
                "services": sorted({s["service"] for s in spans}),
                "critical_path_ms": critical_path_ms(tree),
                "slowest_service": slowest["service"],
                "slowest_ms": slowest["duration_ms"],
            },
            key=request_id,
            timestamp=max(s["timestamp"] for s in spans),
        )


class SlowCallDetectorTask:
    """Flags assembled graphs whose critical path exceeds a threshold."""

    def __init__(self, threshold_ms: float = 60.0) -> None:
        self.threshold_ms = threshold_ms

    def process(self, record, collector) -> None:
        graph = record.value
        if graph["critical_path_ms"] > self.threshold_ms:
            collector.send(
                "slow-requests",
                {
                    "request_id": graph["request_id"],
                    "critical_path_ms": graph["critical_path_ms"],
                    "suspect_service": graph["slowest_service"],
                },
                key=graph["suspect_service"]
                if "suspect_service" in graph
                else graph["slowest_service"],
                timestamp=record.timestamp,
            )


def main() -> None:
    liquid = Liquid(num_brokers=3)
    # Spans keyed by request id: all spans of a request land in the same
    # partition, preserving per-request ordering (§3.1 total order per
    # topic-partition "is sufficient for most back-end applications").
    liquid.create_feed("rest-spans", partitions=4)

    liquid.submit_job(
        JobConfig(
            name="assemble",
            inputs=["rest-spans"],
            task_factory=AssembleTask,
            stores=[StoreConfig("spans")],
            window_interval=1.0,  # quiescence flush for in-flight requests
        ),
        outputs=["call-graphs"],
        description="assemble spans into call graphs in near real time",
    )
    liquid.submit_job(
        JobConfig(
            name="slow-detect",
            inputs=["call-graphs"],
            task_factory=lambda: SlowCallDetectorTask(threshold_ms=60.0),
        ),
        outputs=["slow-requests"],
        description="flag requests with slow critical paths",
    )

    generator = CallGraphEventGenerator(
        max_depth=3, max_fanout=2, slow=SlowService(SLOW_SERVICE, factor=12.0),
        seed=2024,
    )
    producer = liquid.producer()
    span_count = 0
    for span in generator.events(400):
        producer.send("rest-spans", span, key=span["request_id"],
                      timestamp=span["timestamp"])
        span_count += 1

    liquid.process_available()
    # Let the quiescence window elapse so the final in-flight requests flush.
    liquid.tick(2.0)
    liquid.process_available()
    liquid.tick(0.1)

    graphs_consumer = liquid.consumer(group="capacity-planning")
    graphs_consumer.subscribe(["call-graphs"])
    graphs = []
    while True:
        batch = graphs_consumer.poll(500)
        if not batch:
            break
        graphs.extend(batch)
    print(f"{span_count} spans assembled into {len(graphs)} call graphs")
    assert graphs, "expected assembled graphs"

    slow_consumer = liquid.consumer(group="oncall")
    slow_consumer.subscribe(["slow-requests"])
    slow = []
    while True:
        batch = slow_consumer.poll(500)
        if not batch:
            break
        slow.extend(batch)
    suspects = defaultdict(int)
    for record in slow:
        suspects[record.value["suspect_service"]] += 1
    print(f"{len(slow)} slow requests; suspect ranking: "
          f"{sorted(suspects.items(), key=lambda kv: -kv[1])[:3]}")
    if slow:
        top_suspect = max(suspects.items(), key=lambda kv: kv[1])[0]
        assert top_suspect == SLOW_SERVICE, (
            f"expected {SLOW_SERVICE} as top suspect, got {top_suspect}"
        )
        print(f"correctly isolated {SLOW_SERVICE} as the slow service "
              "within seconds (was: hours, via batch log analysis)")

    print("call_graph_assembly OK")


if __name__ == "__main__":
    main()
