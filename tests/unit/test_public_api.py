"""API-snapshot tests for the curated ``repro.api`` surface.

These tests are the enforcement half of the stability policy in DESIGN.md
§11: the supported public surface is exactly what ``repro.api.__all__``
lists, plus the field sets of the frozen client configs.  A failing
snapshot means a *breaking* change — removals and renames require a
deliberate edit here, in the same commit, with a changelog entry.
Additions only grow the snapshot.
"""

import dataclasses
import inspect

import pytest

import repro.api as api
from repro.common.errors import LiquidError
from repro.messaging.config import ConsumerConfig, ProducerConfig

#: The frozen snapshot.  Keep sorted; update deliberately, never by reflex.
EXPECTED_API = sorted(
    [
        # stack
        "Liquid",
        "MessagingCluster",
        # clients + configs
        "Producer",
        "ProducerConfig",
        "Consumer",
        "ConsumerConfig",
        "ACKS_NONE",
        "ACKS_LEADER",
        "ACKS_ALL",
        "PARTITIONER_HASH",
        "PARTITIONER_ROUND_ROBIN",
        "TransactionalProducer",
        # processing
        "JobConfig",
        "StoreConfig",
        "JobRunner",
        "AT_LEAST_ONCE",
        "EXACTLY_ONCE",
        "RecoveryReport",
        "RestoredStore",
        # serving
        "StateQueryRouter",
        "StateServer",
        "StandbyReplica",
        "CatchUpStats",
        "QueryResult",
        "CONSISTENCY_BOUNDED",
        "CONSISTENCY_SNAPSHOT",
        # elasticity
        "LagMonitor",
        "LagSample",
        "ScalingPolicy",
        "ScalingDecision",
        "ElasticJobController",
        "ScaleEvent",
        "BackpressureValve",
        # observability
        "Tracer",
        "Span",
        "TraceContext",
        "TRACE_HEADER",
        "current_tracer",
        "install_tracer",
        "uninstall_tracer",
        "tracing",
        "TraceQuery",
        "SpanNode",
        "render_timeline",
        # telemetry / SLOs / health
        "TelemetryExporter",
        "TELEMETRY_METRICS_FEED",
        "TELEMETRY_SPANS_FEED",
        "TELEMETRY_ALERTS_FEED",
        "is_telemetry_feed",
        "SloMonitor",
        "Slo",
        "Alert",
        "ClusterSloSampler",
        "standard_slos",
        "ClusterHealthReport",
        "HealthReason",
        "evaluate_cluster_health",
        # tools / metrics
        "AdminClient",
        "ConsumerLagReport",
        "GroupLagReport",
        "PartitionLag",
        "TransactionReport",
        "OpenTransaction",
        "StageLatencyReport",
        "StageLatency",
        "MetricsRegistry",
        "metric_name",
        # records / time
        "ProducerRecord",
        "ConsumerRecord",
        "TopicPartition",
        "SimClock",
        "CostModel",
        # errors
        "LiquidError",
        "ConfigError",
        "MessagingError",
        "ProcessingError",
        "SerdeError",
        "ServingError",
        "AuthorizationError",
        "TransactionError",
        "ProducerFencedError",
    ]
)

EXPECTED_PRODUCER_CONFIG_FIELDS = sorted(
    [
        "acks",
        "compression",
        "partitioner",
        "linger_messages",
        "max_retries",
        "idempotent",
        "client_id",
        "key_serde",
        "value_serde",
        "retry_backoff",
        "retry_backoff_max",
        "retry_jitter_seed",
    ]
)

EXPECTED_CONSUMER_CONFIG_FIELDS = sorted(
    [
        "group",
        "auto_offset_reset",
        "max_poll_messages",
        "isolation_level",
        "client_id",
        "key_serde",
        "value_serde",
        "prefetch",
    ]
)


class TestApiSnapshot:
    def test_all_matches_snapshot(self):
        assert sorted(api.__all__) == EXPECTED_API

    def test_every_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name, None) is not None, name

    def test_no_duplicates(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_star_import_exposes_only_the_snapshot(self):
        namespace: dict = {}
        exec("from repro.api import *", namespace)
        public = sorted(n for n in namespace if not n.startswith("__"))
        assert public == EXPECTED_API


class TestConfigSnapshots:
    def test_producer_config_fields(self):
        names = sorted(f.name for f in dataclasses.fields(ProducerConfig))
        assert names == EXPECTED_PRODUCER_CONFIG_FIELDS

    def test_consumer_config_fields(self):
        names = sorted(f.name for f in dataclasses.fields(ConsumerConfig))
        assert names == EXPECTED_CONSUMER_CONFIG_FIELDS

    def test_configs_are_frozen(self):
        config = ProducerConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.acks = "all"
        consumer = ConsumerConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            consumer.group = "g"


class TestErrorHierarchy:
    def test_every_exported_error_is_a_liquid_error(self):
        for name in api.__all__:
            obj = getattr(api, name)
            if inspect.isclass(obj) and issubclass(obj, Exception):
                assert issubclass(obj, LiquidError), name

    def test_all_repro_errors_share_the_root(self):
        import repro.common.errors as errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                inspect.isclass(obj)
                and issubclass(obj, Exception)
                and obj.__module__ == "repro.common.errors"
            ):
                assert issubclass(obj, LiquidError), name
