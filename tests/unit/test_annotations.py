"""Unit tests for the rewindability helpers (§3.1, §4.2)."""

from repro.common.clock import SimClock
from repro.common.records import TopicPartition
from repro.core.annotations import (
    annotate_positions,
    offsets_at_time,
    offsets_committed_before,
    offsets_for_version,
)
from repro.messaging.cluster import MessagingCluster


def make_cluster() -> tuple[SimClock, MessagingCluster]:
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=1, clock=clock)
    cluster.create_topic("t", num_partitions=2, replication_factor=1)
    for partition in range(2):
        for i in range(10):
            cluster.produce("t", partition, [(None, i, float(i), {})])
    return clock, cluster


class TestTimeRewind:
    def test_offsets_at_time(self):
        _clock, cluster = make_cluster()
        offsets = offsets_at_time(cluster, "t", 4.5)
        assert offsets == {
            TopicPartition("t", 0): 5,
            TopicPartition("t", 1): 5,
        }

    def test_future_time_maps_to_end(self):
        _clock, cluster = make_cluster()
        offsets = offsets_at_time(cluster, "t", 1e9)
        assert all(o == 10 for o in offsets.values())


class TestVersionRewind:
    def test_offsets_for_version(self):
        _clock, cluster = make_cluster()
        tp0 = TopicPartition("t", 0)
        cluster.offset_manager.commit("g", tp0, 4, {"software_version": "v1"})
        cluster.offset_manager.commit("g", tp0, 7, {"software_version": "v2"})
        offsets = offsets_for_version(cluster, "g", "t", "v1")
        assert offsets[tp0] == 4
        assert offsets[TopicPartition("t", 1)] is None


class TestCommitTimeRewind:
    def test_offsets_committed_before(self):
        clock, cluster = make_cluster()
        tp0 = TopicPartition("t", 0)
        cluster.offset_manager.commit("g", tp0, 2)
        clock.advance(10.0)
        cluster.offset_manager.commit("g", tp0, 8)
        offsets = offsets_committed_before(cluster, "g", "t", clock.now() - 5.0)
        assert offsets[tp0] == 2


class TestAnnotate:
    def test_annotate_positions_roundtrip(self):
        _clock, cluster = make_cluster()
        tp0, tp1 = TopicPartition("t", 0), TopicPartition("t", 1)
        annotate_positions(
            cluster, "g", {tp0: 3, tp1: 6}, {"software_version": "v5"}
        )
        offsets = offsets_for_version(cluster, "g", "t", "v5")
        assert offsets == {tp0: 3, tp1: 6}
