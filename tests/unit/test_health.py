"""Cluster health rollup: one status, machine-readable reasons."""

import pytest

from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.observability.health import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    evaluate_cluster_health,
)
from repro.tools.admin import AdminClient


def make_cluster(brokers=3, replication=3):
    cluster = MessagingCluster(num_brokers=brokers)
    cluster.create_topic(
        "events", num_partitions=2, replication_factor=replication
    )
    return cluster


class TestHealthyCluster:
    def test_idle_cluster_is_healthy(self):
        report = evaluate_cluster_health(make_cluster())
        assert report.status == HEALTHY
        assert report.healthy
        assert report.reasons == ()
        assert report.live_brokers == 3
        assert report.total_brokers == 3

    def test_as_dict_round_trip(self):
        report = evaluate_cluster_health(make_cluster())
        payload = report.as_dict()
        assert payload["status"] == HEALTHY
        assert payload["reasons"] == []
        assert payload["live_brokers"] == 3

    def test_admin_facade(self):
        cluster = make_cluster()
        report = AdminClient(cluster).cluster_health_report()
        assert report.status == HEALTHY


class TestDegradation:
    def test_dead_broker_degrades(self):
        cluster = make_cluster()
        cluster.kill_broker(1)
        report = evaluate_cluster_health(cluster)
        assert report.status == DEGRADED
        codes = report.reason_codes()
        assert "dead_brokers" in codes
        assert "under_replicated_partitions" in codes

    def test_all_brokers_down_is_unhealthy(self):
        cluster = make_cluster(brokers=1, replication=1)
        cluster.kill_broker(0)
        report = evaluate_cluster_health(cluster)
        assert report.status == UNHEALTHY
        assert "no_live_brokers" in report.reason_codes()
        assert "offline_partitions" in report.reason_codes()

    def test_worst_reason_wins(self):
        cluster = make_cluster(brokers=3, replication=1)
        # Kill whichever broker leads partition 0: its partition goes
        # offline (unhealthy) while the cluster also has a dead broker
        # (degraded) — the rollup must report unhealthy.
        leader = cluster.controller.partition_state(
            cluster.partitions_of("events")[0]
        ).leader
        cluster.kill_broker(leader)
        report = evaluate_cluster_health(cluster)
        assert report.status == UNHEALTHY

    def test_consumer_lag_degrades(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        for i in range(50):
            producer.send("events", {"i": i}, partition=0)
        producer.flush()
        cluster.run_until_replicated()
        cluster.offset_manager.commit("readers", TopicPartition("events", 0), 0)
        report = evaluate_cluster_health(cluster, max_group_lag=10)
        assert report.status == DEGRADED
        assert "consumer_lag" in report.reason_codes()
        assert report.max_group_lag == 50

    def test_system_groups_do_not_trip_lag(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        for i in range(50):
            producer.send("events", {"i": i}, partition=0)
        producer.flush()
        cluster.run_until_replicated()
        cluster.offset_manager.commit("__mirror", TopicPartition("events", 0), 0)
        report = evaluate_cluster_health(cluster, max_group_lag=10)
        assert report.status == HEALTHY

    def test_backpressure_valves_reported(self):
        class _FakeValve:
            def __init__(self, state):
                self.state = state

        cluster = make_cluster()
        report = evaluate_cluster_health(
            cluster,
            valves=[_FakeValve("closed"), _FakeValve("throttled"),
                    _FakeValve("open")],
        )
        assert report.status == DEGRADED
        assert report.closed_valves == 1
        assert report.throttled_valves == 1
        codes = report.reason_codes()
        assert "backpressure_closed" in codes
        assert "backpressure_throttled" in codes

    def test_standby_staleness_reported(self):
        from repro.messaging.cluster import MessagingCluster
        from repro.processing.job import JobConfig, JobRunner, StoreConfig

        class _Counting:
            def init(self, context):
                self.store = context.store("counts")

            def process(self, record, collector):
                self.store.put(record.key, (self.store.get(record.key) or 0) + 1)

        cluster = MessagingCluster(num_brokers=1)
        cluster.create_topic("in", num_partitions=1, replication_factor=1)
        producer = Producer(cluster)
        for i in range(30):
            producer.send("in", {"i": i}, key=f"k{i % 3}")
        runner = JobRunner(
            JobConfig(
                name="job",
                inputs=["in"],
                task_factory=_Counting,
                stores=[StoreConfig("counts")],
                num_standby_replicas=1,
                checkpoint_interval=1000,  # standbys never warm
            ),
            cluster,
        )
        runner.run_until_idle()
        report = evaluate_cluster_health(
            cluster, runners=[runner], max_standby_staleness=5
        )
        assert report.max_standby_staleness > 5
        assert "standby_staleness" in report.reason_codes()
        assert report.status == DEGRADED


class TestTransactions:
    def test_open_transaction_lso_lag_degrades(self):
        from repro.messaging.transactions import TransactionalProducer

        cluster = make_cluster(brokers=1, replication=1)
        producer = TransactionalProducer(cluster, "txn-1")
        producer.begin()
        for i in range(20):
            producer.send("events", {"i": i}, partition=0)
        # Never committed: records sit above the LSO.
        report = evaluate_cluster_health(cluster, max_lso_lag=5)
        assert report.open_transactions == 1
        assert report.lso_lag >= 20
        assert "transaction_lso_lag" in report.reason_codes()
        assert report.status == DEGRADED
