"""Unit tests for exactly-once jobs: the transactional read-process-write
loop wired through the job runner (§3.2 + §4.3)."""

import pytest

from repro.chaos.failpoints import registry
from repro.common.clock import SimClock
from repro.common.errors import JobConfigError, ProducerFencedError
from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.job import (
    AT_LEAST_ONCE,
    EXACTLY_ONCE,
    JobConfig,
    JobRunner,
    StoreConfig,
    transactional_id,
)


@pytest.fixture(autouse=True)
def _clean_failpoints():
    registry().disarm_all()
    yield
    registry().disarm_all()


class TagTask:
    """Emit each input back out on the same partition, tagged with the
    input offset — duplicates are then directly countable downstream."""

    def process(self, record, collector):
        collector.send(
            "out",
            {"offset": record.offset, "value": record.value},
            key=record.key,
            partition=record.partition,
        )


class CountingTask:
    def init(self, context):
        self.counts = context.store("counts")

    def process(self, record, collector):
        n = self.counts.get_or_default(record.key, 0) + 1
        self.counts.put(record.key, n)
        collector.send("out", {"k": record.key, "n": n},
                       partition=record.partition)


def make_env(partitions=2, n=20):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=1, clock=clock)
    cluster.create_topic("in", num_partitions=partitions, replication_factor=1)
    cluster.create_topic("out", num_partitions=partitions, replication_factor=1)
    producer = Producer(cluster)
    for i in range(n):
        producer.send("in", {"i": i}, key=f"k{i % 4}", partition=i % partitions)
    producer.flush()
    return clock, cluster, producer


def eo_config(**overrides):
    kwargs = dict(
        name="eo",
        inputs=["in"],
        task_factory=TagTask,
        checkpoint_interval=5,
        processing_guarantee=EXACTLY_ONCE,
    )
    kwargs.update(overrides)
    return JobConfig(**kwargs)


def committed_outputs(cluster, partitions=2):
    out = []
    for partition in range(partitions):
        result = cluster.fetch(
            "out", partition, 0, max_messages=100_000,
            isolation="read_committed",
        )
        out.extend((partition, r.value["offset"]) for r in result.records)
    return out


class TestConfig:
    def test_default_guarantee_is_at_least_once(self):
        config = JobConfig(name="j", inputs=["in"], task_factory=TagTask)
        assert config.processing_guarantee == AT_LEAST_ONCE

    def test_unknown_guarantee_rejected(self):
        with pytest.raises(JobConfigError):
            JobConfig(
                name="j",
                inputs=["in"],
                task_factory=TagTask,
                processing_guarantee="at_most_once",
            )

    def test_task_context_exposes_guarantee(self):
        _clock, cluster, _producer = make_env()
        runner = JobRunner(eo_config(), cluster)
        context = runner.task(0).context
        assert context.processing_guarantee == EXACTLY_ONCE
        assert context.exactly_once

    def test_transactional_id_is_job_and_task_derived(self):
        assert transactional_id("etl", 3) == "etl-3"


class TestTransactionBoundary:
    def test_outputs_invisible_until_checkpoint_commits(self):
        _clock, cluster, _producer = make_env(partitions=1, n=4)
        # Interval larger than the input: no checkpoint fires on its own.
        runner = JobRunner(eo_config(checkpoint_interval=100), cluster)
        runner.poll_once()
        assert runner.records_processed == 4
        assert committed_outputs(cluster, partitions=1) == []
        runner.checkpoint()
        assert committed_outputs(cluster, partitions=1) == [
            (0, 0), (0, 1), (0, 2), (0, 3)
        ]

    def test_offsets_commit_atomically_with_outputs(self):
        _clock, cluster, _producer = make_env(partitions=1, n=4)
        runner = JobRunner(eo_config(checkpoint_interval=100), cluster)
        runner.poll_once()
        tp = TopicPartition("in", 0)
        assert runner.checkpoints.fetch(tp) is None
        runner.checkpoint()
        commit = runner.checkpoints.fetch(tp)
        assert commit is not None and commit.offset == 4
        assert commit.metadata["software_version"] == "v1"

    def test_checkpoint_interval_commits_mid_stream(self):
        _clock, cluster, _producer = make_env(partitions=1, n=20)
        runner = JobRunner(eo_config(checkpoint_interval=5), cluster)
        runner.poll_once(max_messages=7)
        # 7 processed, interval 5: the boundary committed the whole pass.
        assert len(committed_outputs(cluster, partitions=1)) == 7

    def test_run_until_idle_commits_the_tail(self):
        _clock, cluster, _producer = make_env(partitions=2, n=19)
        runner = JobRunner(eo_config(checkpoint_interval=1000), cluster)
        runner.run_until_idle()
        assert len(committed_outputs(cluster)) == 19


class TestCrashRecovery:
    def test_crash_mid_transaction_leaves_no_duplicates(self):
        _clock, cluster, _producer = make_env(partitions=2, n=30)
        runner = JobRunner(eo_config(checkpoint_interval=8), cluster)
        runner.poll_once(max_messages=6)   # open transactions, no commit yet
        runner.crash()
        runner.recover()
        runner.run_until_idle()
        outputs = committed_outputs(cluster)
        assert len(outputs) == 30
        assert len(set(outputs)) == 30  # every input emitted exactly once

    def test_at_least_once_same_crash_duplicates(self):
        """The contrast case: identical crash schedule, default guarantee —
        replay from the last checkpoint re-emits what the crash lost."""
        _clock, cluster, _producer = make_env(partitions=2, n=30)
        runner = JobRunner(
            eo_config(
                checkpoint_interval=1000,
                processing_guarantee=AT_LEAST_ONCE,
            ),
            cluster,
        )
        runner.poll_once(max_messages=6)
        runner.crash()
        runner.recover()
        runner.run_until_idle()
        outputs = []
        for partition in range(2):
            result = cluster.fetch("out", partition, 0, max_messages=100_000)
            outputs.extend(
                (partition, r.value["offset"]) for r in result.records
            )
        assert len(outputs) == 42  # 30 + the 12 replayed after the crash
        assert len(set(outputs)) == 30

    def test_aborted_changelog_entries_not_restored(self):
        _clock, cluster, _producer = make_env(partitions=1, n=10)
        runner = JobRunner(
            eo_config(
                task_factory=CountingTask,
                stores=(StoreConfig("counts"),),
                checkpoint_interval=4,
            ),
            cluster,
        )
        runner.poll_once(max_messages=4)  # hits the boundary: commits
        runner.poll_once(max_messages=2)  # open transaction, never commits
        runner.crash()
        runner.recover()
        # Only the 4 committed updates survive into the rebuilt store.
        store = runner.task(0).stores["counts"]
        restored = sum(store.get_or_default(f"k{i}", 0) for i in range(4))
        assert restored == 4
        runner.run_until_idle()
        counts = {}
        result = cluster.fetch(
            "out", 0, 0, max_messages=100_000, isolation="read_committed"
        )
        for record in result.records:
            counts[(record.value["k"], record.value["n"])] = (
                counts.get((record.value["k"], record.value["n"]), 0) + 1
            )
        assert all(v == 1 for v in counts.values())
        assert len(counts) == 10

    def test_recovery_fences_zombie_incarnation(self):
        _clock, cluster, _producer = make_env(partitions=1, n=10)
        runner = JobRunner(eo_config(checkpoint_interval=100), cluster)
        runner.poll_once(max_messages=3)
        zombie = runner._txn_producers[0]
        runner.crash()
        runner.recover()
        with pytest.raises(ProducerFencedError):
            zombie.commit()
        with pytest.raises(ProducerFencedError):
            zombie.begin()

    def test_inputs_read_committed_under_exactly_once(self):
        """An upstream job's uncommitted outputs must not be processed."""
        from repro.messaging.transactions import TransactionalProducer

        clock = SimClock()
        cluster = MessagingCluster(num_brokers=1, clock=clock)
        cluster.create_topic("in", num_partitions=1, replication_factor=1)
        cluster.create_topic("out", num_partitions=1, replication_factor=1)
        upstream = TransactionalProducer(cluster, "upstream")
        upstream.begin()
        upstream.send("in", {"i": 0}, partition=0)
        runner = JobRunner(eo_config(), cluster)
        assert runner.run_until_idle() == 0  # pending input invisible
        upstream.commit()
        assert runner.run_until_idle() == 1


class TestMigration:
    def test_migrate_commits_open_transaction_first(self):
        _clock, cluster, _producer = make_env(partitions=2, n=20)
        runner = JobRunner(eo_config(checkpoint_interval=1000), cluster)
        runner.poll_once(max_messages=4)
        assert committed_outputs(cluster) == []
        runner.migrate_task(0)
        # Task 0's staged work committed at the migration boundary...
        outputs = committed_outputs(cluster)
        assert (0, 0) in outputs and (0, 3) in outputs
        # ...and task 1's transaction is still open, still invisible.
        assert all(partition == 0 for partition, _ in outputs)

    def test_migration_bumps_epoch_and_fences(self):
        _clock, cluster, _producer = make_env(partitions=2, n=20)
        runner = JobRunner(eo_config(), cluster)
        old_producer = runner._txn_producers[0]
        runner.migrate_task(0)
        assert runner._txn_producers[0].epoch > old_producer.epoch
        with pytest.raises(ProducerFencedError):
            old_producer.begin()

    def test_output_identical_with_and_without_migration(self):
        results = []
        for migrate in (False, True):
            _clock, cluster, _producer = make_env(partitions=2, n=24)
            runner = JobRunner(eo_config(checkpoint_interval=6), cluster)
            runner.poll_once(max_messages=5)
            if migrate:
                runner.migrate_task(0)
                runner.migrate_task(1)
            runner.run_until_idle()
            outputs = []
            for partition in range(2):
                fetched = cluster.fetch(
                    "out", partition, 0, max_messages=100_000,
                    isolation="read_committed",
                )
                outputs.append(
                    [(r.key, r.value["offset"], r.value["value"])
                     for r in fetched.records]
                )
            results.append(outputs)
        assert results[0] == results[1]
