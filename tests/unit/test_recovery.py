"""Unit tests for changelog-based state recovery (§3.2, E4 mechanics)."""

from repro.common.clock import SimClock
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobRunner, StoreConfig
from repro.processing.recovery import restore_job_state, restore_state
from repro.processing.state import KeyValueState, changelog_topic_name
from repro.processing.store import InMemoryStore


class UpsertTask:
    def init(self, context):
        self.store = context.store("table")

    def process(self, record, collector):
        self.store.put(record.key, record.value)


def make_env(updates=60, keys=5):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=1, clock=clock)
    cluster.create_topic("in", num_partitions=1, replication_factor=1)
    producer = Producer(cluster)
    for i in range(updates):
        producer.send("in", {"rev": i}, key=f"k{i % keys}")
    runner = JobRunner(
        JobConfig(
            name="j", inputs=["in"], task_factory=UpsertTask,
            stores=[StoreConfig("table")],
        ),
        cluster,
    )
    runner.run_until_idle()
    return clock, cluster, runner


class TestRestoreState:
    def test_restore_rebuilds_exact_state(self):
        _clock, cluster, runner = make_env()
        original = dict(runner.task(0).stores["table"].items())
        fresh = KeyValueState("table", InMemoryStore())
        report = restore_state(cluster, "j", "table", 0, fresh)
        assert dict(fresh.items()) == original
        assert report.records_replayed == 60
        assert report.simulated_seconds > 0

    def test_restore_after_compaction_replays_less(self):
        """The E4 effect: compaction shrinks what recovery must replay."""
        _clock, cluster, runner = make_env(updates=60, keys=5)
        original = dict(runner.task(0).stores["table"].items())
        # Force segment rolls then compaction on the changelog topic.
        topic = changelog_topic_name("j", "table")
        broker = cluster.broker(0)
        removed = broker.run_compaction()
        fresh = KeyValueState("table", InMemoryStore())
        report = restore_state(cluster, "j", "table", 0, fresh)
        assert dict(fresh.items()) == original  # same state...
        if removed:
            assert report.records_replayed < 60  # ...from fewer records

    def test_restore_clears_stale_state(self):
        _clock, cluster, _runner = make_env()
        fresh = KeyValueState("table", InMemoryStore())
        fresh.put("stale", "leftover")
        restore_state(cluster, "j", "table", 0, fresh)
        assert fresh.get("stale") is None

    def test_restore_with_tombstones(self):
        clock = SimClock()
        cluster = MessagingCluster(num_brokers=1, clock=clock)
        cluster.create_topic("in", num_partitions=1, replication_factor=1)

        class DeleteOddTask:
            def init(self, context):
                self.store = context.store("table")

            def process(self, record, collector):
                if record.value % 2:
                    self.store.delete(record.key)
                else:
                    self.store.put(record.key, record.value)

        producer = Producer(cluster)
        for i in range(10):
            producer.send("in", i, key=f"k{i % 3}")
        runner = JobRunner(
            JobConfig(
                name="d", inputs=["in"], task_factory=DeleteOddTask,
                stores=[StoreConfig("table")],
            ),
            cluster,
        )
        runner.run_until_idle()
        original = dict(runner.task(0).stores["table"].items())
        fresh = KeyValueState("table", InMemoryStore())
        restore_state(cluster, "d", "table", 0, fresh)
        assert dict(fresh.items()) == original


class TestRestoreJobState:
    def test_all_tasks_and_stores_restored(self):
        clock = SimClock()
        cluster = MessagingCluster(num_brokers=1, clock=clock)
        cluster.create_topic("in", num_partitions=3, replication_factor=1)
        producer = Producer(cluster)
        for i in range(30):
            producer.send("in", {"rev": i}, key=f"k{i}")
        runner = JobRunner(
            JobConfig(
                name="multi", inputs=["in"], task_factory=UpsertTask,
                stores=[StoreConfig("table")],
            ),
            cluster,
        )
        runner.run_until_idle()
        runner.checkpoint()
        snapshot = [
            dict(instance.stores["table"].items()) for instance in runner.tasks()
        ]
        runner.crash()
        runner.recover()
        restored = [
            dict(instance.stores["table"].items()) for instance in runner.tasks()
        ]
        assert restored == snapshot
        assert sum(len(s) for s in restored) == 30
