"""Unit tests for changelog-based state recovery (§3.2, E4 mechanics)."""

from repro.common.clock import SimClock
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobRunner, StoreConfig
from repro.processing.recovery import (
    SOURCE_CHANGELOG,
    SOURCE_STANDBY,
    RecoveryReport,
    RestoredStore,
    restore_job_state,
    restore_state,
)
from repro.processing.state import KeyValueState, changelog_topic_name
from repro.processing.store import InMemoryStore


class UpsertTask:
    def init(self, context):
        self.store = context.store("table")

    def process(self, record, collector):
        self.store.put(record.key, record.value)


def make_env(updates=60, keys=5):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=1, clock=clock)
    cluster.create_topic("in", num_partitions=1, replication_factor=1)
    producer = Producer(cluster)
    for i in range(updates):
        producer.send("in", {"rev": i}, key=f"k{i % keys}")
    runner = JobRunner(
        JobConfig(
            name="j", inputs=["in"], task_factory=UpsertTask,
            stores=[StoreConfig("table")],
        ),
        cluster,
    )
    runner.run_until_idle()
    return clock, cluster, runner


class TestRestoreState:
    def test_restore_rebuilds_exact_state(self):
        _clock, cluster, runner = make_env()
        original = dict(runner.task(0).stores["table"].items())
        fresh = KeyValueState("table", InMemoryStore())
        report = restore_state(cluster, "j", "table", 0, fresh)
        assert dict(fresh.items()) == original
        assert report.records_replayed == 60
        assert report.simulated_seconds > 0

    def test_restore_after_compaction_replays_less(self):
        """The E4 effect: compaction shrinks what recovery must replay."""
        _clock, cluster, runner = make_env(updates=60, keys=5)
        original = dict(runner.task(0).stores["table"].items())
        # Force segment rolls then compaction on the changelog topic.
        topic = changelog_topic_name("j", "table")
        broker = cluster.broker(0)
        removed = broker.run_compaction()
        fresh = KeyValueState("table", InMemoryStore())
        report = restore_state(cluster, "j", "table", 0, fresh)
        assert dict(fresh.items()) == original  # same state...
        if removed:
            assert report.records_replayed < 60  # ...from fewer records

    def test_restore_clears_stale_state(self):
        _clock, cluster, _runner = make_env()
        fresh = KeyValueState("table", InMemoryStore())
        fresh.put("stale", "leftover")
        restore_state(cluster, "j", "table", 0, fresh)
        assert fresh.get("stale") is None

    def test_restore_with_tombstones(self):
        clock = SimClock()
        cluster = MessagingCluster(num_brokers=1, clock=clock)
        cluster.create_topic("in", num_partitions=1, replication_factor=1)

        class DeleteOddTask:
            def init(self, context):
                self.store = context.store("table")

            def process(self, record, collector):
                if record.value % 2:
                    self.store.delete(record.key)
                else:
                    self.store.put(record.key, record.value)

        producer = Producer(cluster)
        for i in range(10):
            producer.send("in", i, key=f"k{i % 3}")
        runner = JobRunner(
            JobConfig(
                name="d", inputs=["in"], task_factory=DeleteOddTask,
                stores=[StoreConfig("table")],
            ),
            cluster,
        )
        runner.run_until_idle()
        original = dict(runner.task(0).stores["table"].items())
        fresh = KeyValueState("table", InMemoryStore())
        restore_state(cluster, "d", "table", 0, fresh)
        assert dict(fresh.items()) == original


class TestRestoreJobState:
    def test_all_tasks_and_stores_restored(self):
        clock = SimClock()
        cluster = MessagingCluster(num_brokers=1, clock=clock)
        cluster.create_topic("in", num_partitions=3, replication_factor=1)
        producer = Producer(cluster)
        for i in range(30):
            producer.send("in", {"rev": i}, key=f"k{i}")
        runner = JobRunner(
            JobConfig(
                name="multi", inputs=["in"], task_factory=UpsertTask,
                stores=[StoreConfig("table")],
            ),
            cluster,
        )
        runner.run_until_idle()
        runner.checkpoint()
        snapshot = [
            dict(instance.stores["table"].items()) for instance in runner.tasks()
        ]
        runner.crash()
        runner.recover()
        restored = [
            dict(instance.stores["table"].items()) for instance in runner.tasks()
        ]
        assert restored == snapshot
        assert sum(len(s) for s in restored) == 30


class TestRecoveryReportEntries:
    """The typed per-store entries a RecoveryReport carries."""

    def test_restore_state_records_one_entry(self):
        _clock, cluster, _runner = make_env()
        fresh = KeyValueState("table", InMemoryStore())
        report = restore_state(cluster, "j", "table", 0, fresh)
        assert len(report.entries) == 1
        entry = report.entries[0]
        assert entry.store == "table"
        assert entry.task_id == 0
        assert entry.source == SOURCE_CHANGELOG
        assert entry.records_replayed == report.records_replayed
        assert entry.label == "table[0]"
        # Back-compat dict view mirrors the typed entries.
        assert report.per_store == {"table[0]": report.records_replayed}

    def test_job_restore_reports_every_task(self):
        clock = SimClock()
        cluster = MessagingCluster(num_brokers=1, clock=clock)
        cluster.create_topic("in", num_partitions=2, replication_factor=1)
        producer = Producer(cluster)
        for i in range(20):
            producer.send("in", {"rev": i}, key=f"k{i}")
        runner = JobRunner(
            JobConfig(
                name="ent", inputs=["in"], task_factory=UpsertTask,
                stores=[StoreConfig("table")],
            ),
            cluster,
        )
        runner.run_until_idle()
        runner.checkpoint()
        report = restore_job_state(runner)
        assert {(e.store, e.task_id) for e in report.entries} == {
            ("table", 0), ("table", 1),
        }
        assert all(e.source == SOURCE_CHANGELOG for e in report.entries)
        assert report.standby_promotions() == 0
        assert report.stores_restored == 2

    def test_standby_recovery_marks_entries_promoted(self):
        clock = SimClock()
        cluster = MessagingCluster(num_brokers=1, clock=clock)
        cluster.create_topic("in", num_partitions=1, replication_factor=1)
        producer = Producer(cluster)
        for i in range(20):
            producer.send("in", {"rev": i}, key=f"k{i % 4}")
        runner = JobRunner(
            JobConfig(
                name="sb", inputs=["in"], task_factory=UpsertTask,
                stores=[StoreConfig("table")], num_standby_replicas=1,
            ),
            cluster,
        )
        runner.run_until_idle()
        runner.checkpoint()
        snapshot = dict(runner.task(0).stores["table"].items())
        runner.crash()
        report = runner.recover()
        assert dict(runner.task(0).stores["table"].items()) == snapshot
        assert [e.source for e in report.entries] == [SOURCE_STANDBY]
        assert report.standby_promotions() == 1
        # Standbys are caught up at the checkpoint, so the tail is empty.
        assert report.entries[0].records_replayed == 0

    def test_merge_accumulates_entries_and_totals(self):
        a = RecoveryReport()
        a.add(RestoredStore(
            store="s1", task_id=0, records_replayed=5, simulated_seconds=0.5,
        ))
        b = RecoveryReport()
        b.add(RestoredStore(
            store="s2", task_id=1, records_replayed=3, simulated_seconds=0.25,
            source=SOURCE_STANDBY, records_skipped=2,
        ))
        a.merge(b)
        assert a.records_replayed == 8
        assert a.simulated_seconds == 0.75
        assert a.stores_restored == 2
        assert a.standby_promotions() == 1
        assert a.per_store == {"s1[0]": 5, "s2[1]": 3}
