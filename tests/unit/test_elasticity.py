"""Unit tests for the elasticity layer: sensor, policy, controller, valve."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.common.records import TopicPartition
from repro.elasticity import (
    SCALE_IN,
    SCALE_NONE,
    SCALE_OUT,
    VALVE_CLOSED,
    VALVE_OPEN,
    VALVE_THROTTLED,
    BackpressureValve,
    ElasticJobController,
    Ewma,
    LagMonitor,
    LagSample,
    ScalingPolicy,
)
from repro.messaging.cluster import MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobRunner


class PassThrough:
    def process(self, record, collector):
        collector.send("out", record.value, key=record.key,
                       partition=record.partition, timestamp=record.timestamp)


def make_cluster(partitions=4, brokers=3):
    cluster = MessagingCluster(num_brokers=brokers, clock=SimClock())
    cluster.create_topic("in", num_partitions=partitions,
                         replication_factor=min(3, brokers))
    cluster.create_topic("out", num_partitions=partitions,
                         replication_factor=min(3, brokers))
    return cluster


def produce(cluster, n, partitions=4):
    producer = Producer(cluster)
    for i in range(n):
        producer.send("in", f"v{i}", partition=i % partitions)
    producer.flush()


def make_runner(cluster, cpu_cost=0.005, name="elastic"):
    return JobRunner(
        JobConfig(name=name, inputs=["in"], task_factory=PassThrough,
                  cpu_cost_per_message=cpu_cost),
        cluster,
    )


def sample(at, lag, rate=0.0):
    return LagSample(at=at, lag_by_partition={TopicPartition("in", 0): lag},
                     rate=rate)


class TestEwma:
    def test_first_update_seeds(self):
        ewma = Ewma(0.5)
        assert not ewma.primed
        assert ewma.value == 0.0
        assert ewma.update(10.0) == 10.0
        assert ewma.primed

    def test_smooths_towards_samples(self):
        ewma = Ewma(0.5)
        ewma.update(0.0)
        ewma.update(10.0)
        assert ewma.value == 5.0
        ewma.update(10.0)
        assert ewma.value == 7.5

    def test_alpha_validated(self):
        with pytest.raises(ConfigError):
            Ewma(0.0)
        with pytest.raises(ConfigError):
            Ewma(1.5)


class TestLagMonitor:
    def test_unconsumed_backlog_is_all_lag(self):
        cluster = make_cluster()
        produce(cluster, 40)
        monitor = LagMonitor(cluster, "g", ["in"])
        observed = monitor.observe()
        assert observed.total_lag == 40
        assert observed.max_partition_lag == 10

    def test_commits_shrink_lag(self):
        cluster = make_cluster()
        produce(cluster, 40)
        monitor = LagMonitor(cluster, "g", ["in"])
        monitor.observe()
        for tp in cluster.partitions_of("in"):
            cluster.offset_manager.commit("g", tp, 10)
        assert monitor.observe().total_lag == 0

    def test_rate_ewma_tracks_progress(self):
        cluster = make_cluster()
        produce(cluster, 40)
        monitor = LagMonitor(cluster, "g", ["in"], alpha=1.0)
        monitor.observe()
        for tp in cluster.partitions_of("in"):
            cluster.offset_manager.commit("g", tp, 5)
        cluster.clock.advance(2.0)
        observed = monitor.observe()
        assert observed.rate == pytest.approx(10.0)  # 20 records / 2 s

    def test_same_instant_sample_feeds_no_rate(self):
        cluster = make_cluster()
        produce(cluster, 8)
        monitor = LagMonitor(cluster, "g", ["in"])
        monitor.observe()
        monitor.observe()
        assert not monitor.rate_ewma.primed

    def test_offline_partition_holds_last_lag(self):
        cluster = make_cluster(partitions=1)
        produce(cluster, 30, partitions=1)
        monitor = LagMonitor(cluster, "g", ["in"])
        before = monitor.observe()
        assert before.total_lag == 30
        tp = TopicPartition("in", 0)
        state = cluster.controller.partition_state(tp)
        for broker_id in list(state.replicas):
            cluster.kill_broker(broker_id)
        held = monitor.observe()
        assert held.lag_by_partition[tp] == 30

    def test_monitor_needs_topics(self):
        cluster = make_cluster()
        with pytest.raises(ConfigError):
            LagMonitor(cluster, "g", [])

    def test_for_job_reads_live_positions(self):
        cluster = make_cluster()
        produce(cluster, 40)
        runner = make_runner(cluster)
        monitor = LagMonitor.for_job(runner)
        assert monitor.observe().total_lag == 40
        runner.poll_once(max_messages=5)  # per-task budget: 4 tasks x 5
        after = monitor.observe()
        assert after.total_lag == 20


class TestScalingPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ScalingPolicy(min_containers=0)
        with pytest.raises(ConfigError):
            ScalingPolicy(min_containers=4, max_containers=2)
        with pytest.raises(ConfigError):
            ScalingPolicy(scale_out_lag=10.0, scale_in_lag=10.0)
        with pytest.raises(ConfigError):
            ScalingPolicy(breach_observations=0)
        with pytest.raises(ConfigError):
            ScalingPolicy(cooldown=-1.0)
        with pytest.raises(ConfigError):
            ScalingPolicy(step=0)

    def test_single_breach_does_not_scale(self):
        policy = ScalingPolicy(breach_observations=2)
        assert policy.decide(1, sample(0.0, 1000)).action == SCALE_NONE

    def test_persistent_breach_scales_out(self):
        policy = ScalingPolicy(breach_observations=2)
        policy.decide(1, sample(0.0, 1000))
        decision = policy.decide(1, sample(1.0, 1000))
        assert decision.action == SCALE_OUT
        assert decision.to_containers == 2

    def test_cooldown_blocks_consecutive_scales(self):
        policy = ScalingPolicy(breach_observations=1, cooldown=5.0)
        assert policy.decide(1, sample(0.0, 1000)).action == SCALE_OUT
        blocked = policy.decide(2, sample(1.0, 1000))
        assert blocked.action == SCALE_NONE
        assert blocked.reason == "cooldown"
        assert policy.decide(2, sample(6.0, 1000)).action == SCALE_OUT

    def test_bounded_by_max_containers(self):
        policy = ScalingPolicy(max_containers=2, breach_observations=1,
                               cooldown=0.0)
        policy.decide(1, sample(0.0, 1000))
        decision = policy.decide(2, sample(1.0, 1000))
        assert decision.action == SCALE_NONE
        assert decision.reason == "at max_containers"

    def test_low_lag_scales_in_to_min(self):
        policy = ScalingPolicy(breach_observations=1, cooldown=0.0)
        decision = policy.decide(3, sample(0.0, 0))
        assert decision.action == SCALE_IN
        assert decision.to_containers == 2
        assert policy.decide(1, sample(1.0, 0)).action == SCALE_NONE

    def test_shrink_that_would_rebreach_is_held(self):
        """A scale-in that would immediately re-cross the out threshold is vetoed."""
        policy = ScalingPolicy(min_containers=1, max_containers=8,
                               scale_out_lag=100.0, scale_in_lag=20.0,
                               breach_observations=1, cooldown=0.0, step=7)
        # 150 lag / 8 containers = 18.75 < 20: scale-in band.  But the
        # step-7 shrink would land at 1 container with 150 > 100 lag.
        decision = policy.decide(8, sample(0.0, 150))
        assert decision.action == SCALE_NONE
        assert decision.reason == "shrink would re-breach"

    def test_safe_shrink_proceeds(self):
        policy = ScalingPolicy(min_containers=1, max_containers=8,
                               scale_out_lag=100.0, scale_in_lag=20.0,
                               breach_observations=1, cooldown=0.0)
        decision = policy.decide(8, sample(0.0, 150))
        assert decision.action == SCALE_IN
        assert decision.to_containers == 7

    def test_replayable_decision_sequence(self):
        """Identical observation sequences yield identical decisions."""
        observations = [sample(float(i), lag)
                        for i, lag in enumerate([500, 500, 50, 10, 10, 800, 800])]

        def run():
            policy = ScalingPolicy(breach_observations=2, cooldown=0.0)
            containers = 1
            out = []
            for observed in observations:
                decision = policy.decide(containers, observed)
                containers = decision.to_containers
                out.append((decision.action, decision.to_containers))
            return out

        assert run() == run()


class TestElasticController:
    def test_scales_out_under_backlog_and_back_when_drained(self):
        cluster = make_cluster()
        produce(cluster, 2000)
        runner = make_runner(cluster)
        controller = ElasticJobController(
            runner,
            ScalingPolicy(max_containers=4, scale_out_lag=100.0,
                          scale_in_lag=10.0, cooldown=1.0),
            quantum=0.25,
        )
        controller.run_until_drained()
        actions = [event.action for event in controller.events]
        assert SCALE_OUT in actions
        assert SCALE_IN in actions
        assert runner.backlog() == 0
        assert max(e.to_containers for e in controller.events) > 1

    def test_sticky_placement_moves_minimum(self):
        cluster = make_cluster()
        produce(cluster, 2000)
        runner = make_runner(cluster)
        controller = ElasticJobController(runner, quantum=0.25)
        before = controller.assignment()
        moved = controller._rebalance_containers(2)
        controller.containers = 2
        after = controller.assignment()
        assert sorted(moved) == moved
        # Tasks not moved stayed on container 0.
        for task_id in before[0]:
            if task_id not in moved:
                assert task_id in after[0]
        assert len(moved) == 2  # 4 tasks, 1 -> 2 containers: exactly half move

    def test_migration_preserves_output_bytes(self):
        """Elastic run output equals a plain static run, byte for byte."""
        def run_elastic():
            cluster = make_cluster()
            produce(cluster, 1200)
            runner = make_runner(cluster)
            controller = ElasticJobController(
                runner,
                ScalingPolicy(max_containers=4, scale_out_lag=50.0,
                              scale_in_lag=5.0, cooldown=0.5),
                quantum=0.25,
            )
            controller.run_until_drained()
            assert controller.events, "expected at least one scale event"
            return cluster

        def run_static():
            cluster = make_cluster()
            produce(cluster, 1200)
            runner = make_runner(cluster)
            runner.run_until_idle()
            return cluster

        def dump(cluster):
            out = []
            for partition in range(4):
                result = cluster.fetch("out", partition, 0, 10_000)
                out.append([
                    (r.offset, r.key, r.value, r.timestamp)
                    for r in result.records
                ])
            return out

        assert dump(run_elastic()) == dump(run_static())

    def test_no_commit_regression_across_scale_events(self):
        cluster = make_cluster()
        produce(cluster, 1500)
        runner = make_runner(cluster)
        controller = ElasticJobController(
            runner,
            ScalingPolicy(max_containers=4, scale_out_lag=50.0,
                          scale_in_lag=5.0, cooldown=0.5),
            quantum=0.25,
        )
        group = runner.checkpoints.group
        highest: dict = {}
        for _ in range(200):
            controller.step()
            for tp, commit in cluster.offset_manager.fetch_group(group).items():
                assert commit.offset >= highest.get(tp, 0), tp
                highest[tp] = commit.offset
            if runner.backlog() == 0:
                break
        assert controller.events

    def test_quantum_validated(self):
        cluster = make_cluster()
        produce(cluster, 10)
        runner = make_runner(cluster)
        with pytest.raises(ConfigError):
            ElasticJobController(runner, quantum=0.0)

    def test_metrics_registered(self):
        cluster = make_cluster()
        produce(cluster, 10)
        runner = make_runner(cluster)
        ElasticJobController(runner)
        names = cluster.metrics.names()
        assert "elasticity.controller.elastic.containers" in names


class TestBackpressureValve:
    def _consumer_with_backlog(self, n=200):
        cluster = make_cluster(partitions=2)
        producer = Producer(cluster)
        for i in range(n):
            producer.send("in", f"v{i}", partition=i % 2)
        producer.flush()
        cluster.run_until_replicated()
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_of("in"))
        return cluster, consumer

    def test_needs_a_signal(self):
        _cluster, consumer = self._consumer_with_backlog()
        with pytest.raises(ConfigError):
            BackpressureValve(consumer)

    def test_watermark_hysteresis_validated(self):
        _cluster, consumer = self._consumer_with_backlog()
        with pytest.raises(ConfigError):
            BackpressureValve(consumer, memory=lambda: 0.0,
                              memory_low=0.9, memory_high=0.9)
        with pytest.raises(ConfigError):
            BackpressureValve(consumer, memory=lambda: 0.0,
                              throttle_fraction=0.0)

    def test_memory_pressure_closes_then_reopens(self):
        _cluster, consumer = self._consumer_with_backlog()
        pressure = {"ratio": 0.2}
        valve = BackpressureValve(consumer, memory=lambda: pressure["ratio"],
                                  memory_high=0.9, memory_low=0.7)
        assert valve.check() == VALVE_OPEN
        assert valve.fetch_budget(100) == 100

        pressure["ratio"] = 0.95
        assert valve.check() == VALVE_CLOSED
        assert valve.fetch_budget(100) == 0
        assert consumer.paused() == set(consumer.assignment())
        assert consumer.poll(100) == []

        pressure["ratio"] = 0.8  # below high, above low: throttled
        assert valve.check() == VALVE_THROTTLED
        assert consumer.paused() == set()
        assert valve.fetch_budget(100) == 25

        pressure["ratio"] = 0.1
        assert valve.check() == VALVE_OPEN
        assert valve.fetch_budget(100) == 100

    def test_downstream_lag_throttles_intake(self):
        cluster, consumer = self._consumer_with_backlog()
        downstream = LagMonitor(cluster, "sink", ["in"])
        valve = BackpressureValve(consumer, downstream=downstream,
                                  lag_high=100.0, lag_low=10.0)
        assert valve.check() == VALVE_CLOSED  # 200 unconsumed >= 100
        for tp in cluster.partitions_of("in"):
            cluster.offset_manager.commit("sink", tp, 100)
        assert valve.check() == VALVE_OPEN

    def test_valve_poll_respects_budget(self):
        _cluster, consumer = self._consumer_with_backlog()
        pressure = {"ratio": 0.8}
        valve = BackpressureValve(consumer, memory=lambda: pressure["ratio"],
                                  memory_high=0.9, memory_low=0.7,
                                  throttle_fraction=0.1)
        batch = valve.poll(100)
        assert len(batch) == 10  # throttled to 10% of the request
