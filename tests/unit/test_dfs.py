"""Unit tests for the simulated DFS baseline."""

import pytest

from repro.common.clock import SimClock
from repro.common.costmodel import CostModel
from repro.common.errors import (
    ConfigError,
    FileExistsInDfsError,
    FileNotFoundInDfsError,
)
from repro.baselines.dfs import SimulatedDFS


def make_dfs(**kwargs) -> SimulatedDFS:
    return SimulatedDFS(SimClock(), **kwargs)


class TestWriteRead:
    def test_roundtrip(self):
        dfs = make_dfs()
        records = [{"i": i} for i in range(10)]
        dfs.write_file("/data/part-0", records)
        result = dfs.read_file("/data/part-0")
        assert result.records == records
        assert result.latency > 0

    def test_files_immutable(self):
        dfs = make_dfs()
        dfs.write_file("/f", [1])
        with pytest.raises(FileExistsInDfsError):
            dfs.write_file("/f", [2])

    def test_overwrite_replaces(self):
        dfs = make_dfs()
        dfs.write_file("/f", [1])
        dfs.overwrite_file("/f", [2, 3])
        assert dfs.read_file("/f").records == [2, 3]

    def test_missing_file_rejected(self):
        with pytest.raises(FileNotFoundInDfsError):
            make_dfs().read_file("/nope")

    def test_read_returns_copy(self):
        dfs = make_dfs()
        dfs.write_file("/f", [{"a": 1}])
        result = dfs.read_file("/f")
        result.records.append("junk")
        assert len(dfs.read_file("/f").records) == 1

    def test_invalid_path_rejected(self):
        dfs = make_dfs()
        with pytest.raises(ConfigError):
            dfs.write_file("no-slash", [])
        with pytest.raises(ConfigError):
            dfs.write_file("/trailing/", [])


class TestNamespace:
    def test_list_dir_sorted_prefix(self):
        dfs = make_dfs()
        dfs.write_file("/logs/part-00001", [1])
        dfs.write_file("/logs/part-00000", [0])
        dfs.write_file("/other/part-00000", [9])
        assert dfs.list_dir("/logs") == ["/logs/part-00000", "/logs/part-00001"]

    def test_list_dir_exact_prefix_boundary(self):
        dfs = make_dfs()
        dfs.write_file("/logs-other/x", [1])
        assert dfs.list_dir("/logs") == []

    def test_delete(self):
        dfs = make_dfs()
        dfs.write_file("/f", [1])
        dfs.delete("/f")
        assert not dfs.exists("/f")
        with pytest.raises(FileNotFoundInDfsError):
            dfs.delete("/f")

    def test_read_dir_concatenates(self):
        dfs = make_dfs()
        dfs.write_file("/d/part-00000", [1, 2])
        dfs.write_file("/d/part-00001", [3])
        result = dfs.read_dir("/d")
        assert result.records == [1, 2, 3]


class TestCosts:
    def test_write_cost_includes_replication_transfer(self):
        records = [{"x": "y" * 100} for _ in range(100)]
        single = make_dfs(replication=1)
        triple = make_dfs(replication=3)
        assert (
            triple.write_file("/f", records).latency
            > single.write_file("/f", records).latency
        )

    def test_stored_bytes_count_replicas(self):
        dfs = make_dfs(replication=3)
        dfs.write_file("/f", [{"x": 1}])
        assert dfs.total_stored_bytes() == 3 * dfs.file_size("/f")

    def test_block_count_scales_with_size(self):
        model = CostModel(dfs_block_size=1024)
        dfs = SimulatedDFS(SimClock(), cost_model=model)
        dfs.write_file("/big", [{"payload": "x" * 100} for _ in range(100)])
        assert dfs._files["/big"].num_blocks > 1

    def test_every_open_pays_namenode_overhead(self):
        dfs = make_dfs()
        dfs.write_file("/f", [1])
        latency = dfs.read_file("/f").latency
        assert latency >= dfs.cost_model.dfs_open_overhead

    def test_replication_validated(self):
        with pytest.raises(ConfigError):
            make_dfs(replication=0)
