"""Unit tests for task-local KV stores (InMemory + LSM)."""

import pytest

from repro.common.errors import ConfigError, StateStoreError
from repro.processing.store import InMemoryStore, LsmStore, make_store


@pytest.fixture(params=["memory", "lsm"])
def store(request):
    if request.param == "memory":
        return InMemoryStore()
    return LsmStore(memtable_max_entries=4, max_runs=2)


class TestCommonBehaviour:
    def test_get_missing_returns_none(self, store):
        assert store.get("nope") is None

    def test_put_get(self, store):
        store.put("k", {"v": 1})
        assert store.get("k") == {"v": 1}

    def test_overwrite(self, store):
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2

    def test_delete(self, store):
        store.put("k", 1)
        store.delete("k")
        assert store.get("k") is None
        assert "k" not in store

    def test_delete_missing_ok(self, store):
        store.delete("ghost")

    def test_contains(self, store):
        store.put("k", 1)
        assert "k" in store
        assert "other" not in store

    def test_items_sorted_and_live_only(self, store):
        store.put("b", 2)
        store.put("a", 1)
        store.put("c", 3)
        store.delete("b")
        assert list(store.items()) == [("a", 1), ("c", 3)]

    def test_len(self, store):
        for i in range(5):
            store.put(f"k{i}", i)
        store.delete("k0")
        assert len(store) == 4

    def test_clear(self, store):
        store.put("k", 1)
        store.clear()
        assert len(store) == 0
        assert store.get("k") is None

    def test_size_grows_with_entries(self, store):
        empty = store.approximate_size_bytes()
        store.put("key", "value" * 10)
        assert store.approximate_size_bytes() > empty

    def test_non_string_keys(self, store):
        store.put(("composite", 1), "a")
        store.put(42, "b")
        assert store.get(("composite", 1)) == "a"
        assert store.get(42) == "b"


class TestLsmSpecifics:
    def test_flush_on_memtable_full(self):
        store = LsmStore(memtable_max_entries=3)
        for i in range(3):
            store.put(f"k{i}", i)
        assert store.flushes == 1
        assert store.get("k0") == 0  # served from the run

    def test_newer_run_shadows_older(self):
        store = LsmStore(memtable_max_entries=2)
        store.put("k", "old")
        store.put("pad1", 1)  # flush 1
        store.put("k", "new")
        store.put("pad2", 2)  # flush 2
        assert store.get("k") == "new"

    def test_tombstone_survives_flush(self):
        store = LsmStore(memtable_max_entries=2)
        store.put("k", "v")
        store.put("pad", 1)  # flush: k lives in a run
        store.delete("k")
        store.put("pad2", 2)  # flush: tombstone in newer run
        assert store.get("k") is None
        assert "k" not in store

    def test_compaction_merges_runs_and_drops_tombstones(self):
        store = LsmStore(memtable_max_entries=2, max_runs=10)
        store.put("a", 1)
        store.put("b", 2)  # flush
        store.delete("a")
        store.put("c", 3)  # flush
        store.compact()
        assert list(store.items()) == [("b", 2), ("c", 3)]
        assert store.compactions == 1

    def test_auto_compaction_bounds_runs(self):
        store = LsmStore(memtable_max_entries=1, max_runs=2)
        for i in range(10):
            store.put(f"k{i}", i)
        assert len(store._runs) <= 3

    def test_run_probe_costs_accumulate(self):
        store = LsmStore(memtable_max_entries=1, max_runs=10)
        store.put("deep", 1)
        for i in range(5):
            store.put(f"pad{i}", i)
        store.get("deep")
        deep_cost = store.last_op_cost
        store.put("shallow", 2)
        store.get("shallow")
        shallow_cost = store.last_op_cost
        assert deep_cost > shallow_cost

    def test_none_value_rejected(self):
        with pytest.raises(StateStoreError):
            LsmStore().put("k", None)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            LsmStore(memtable_max_entries=0)
        with pytest.raises(ConfigError):
            LsmStore(max_runs=0)


class TestFactory:
    def test_make_known_types(self):
        assert isinstance(make_store("memory"), InMemoryStore)
        assert isinstance(make_store("lsm"), LsmStore)

    def test_kwargs_forwarded(self):
        store = make_store("lsm", memtable_max_entries=7)
        assert store.memtable_max_entries == 7

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigError):
            make_store("rocksdb")
