"""Unit tests for the Liquid facade (§3)."""

import pytest

from repro.common.errors import FeedNotFoundError
from repro.common.records import TopicPartition
from repro.core.liquid import Liquid
from repro.processing.job import JobConfig, StoreConfig
from repro.processing.containers import ResourceQuota
from repro.core.etl import GroupCountTask, MapTask


def make_liquid(**kwargs) -> Liquid:
    return Liquid(num_brokers=3, **kwargs)


class TestFeeds:
    def test_create_feed_registers_topic_and_feed(self):
        liquid = make_liquid()
        feed = liquid.create_feed("raw", partitions=2)
        assert feed.is_source_of_truth
        assert "raw" in liquid.cluster.topics()
        assert len(liquid.cluster.partitions_of("raw")) == 2

    def test_default_replication_capped_by_brokers(self):
        liquid = Liquid(num_brokers=2)
        liquid.create_feed("raw")
        assert liquid.cluster.topic_config("raw").replication_factor == 2

    def test_feed_lookup(self):
        liquid = make_liquid()
        liquid.create_feed("raw")
        assert liquid.feed("raw").name == "raw"
        with pytest.raises(FeedNotFoundError):
            liquid.feed("ghost")


class TestJobSubmission:
    def test_submit_creates_derived_feeds_with_lineage(self):
        liquid = make_liquid()
        liquid.create_feed("raw", partitions=2)
        liquid.submit_job(
            JobConfig(name="j", inputs=["raw"],
                      task_factory=lambda: MapTask("out"), version="v2"),
            outputs=["out"],
            description="identity",
        )
        feed = liquid.feed("out")
        assert feed.lineage.produced_by == "j"
        assert feed.lineage.software_version == "v2"
        assert len(liquid.cluster.partitions_of("out")) == 2

    def test_unregistered_input_rejected(self):
        liquid = make_liquid()
        liquid.cluster.create_topic("bare-topic")  # topic without feed
        with pytest.raises(FeedNotFoundError):
            liquid.submit_job(
                JobConfig(name="j", inputs=["bare-topic"],
                          task_factory=lambda: MapTask("out"))
            )

    def test_quota_registers_with_host(self):
        liquid = make_liquid()
        liquid.create_feed("raw")
        liquid.submit_job(
            JobConfig(name="j", inputs=["raw"],
                      task_factory=lambda: MapTask("out")),
            outputs=["out"],
            quota=ResourceQuota(cpu_cores=1.0),
        )
        assert liquid.host.jobs() == ["j"]

    def test_end_to_end_processing(self):
        liquid = make_liquid()
        liquid.create_feed("raw", partitions=2)
        liquid.submit_job(
            JobConfig(
                name="count", inputs=["raw"],
                task_factory=lambda: GroupCountTask("counts", lambda v: v["g"]),
                stores=[StoreConfig("counts")],
            ),
            outputs=["counts"],
        )
        producer = liquid.producer()
        for i in range(20):
            producer.send("raw", {"g": f"g{i % 2}"}, key=f"g{i % 2}")
        assert liquid.process_available() == 20
        liquid.tick(0.1)
        consumer = liquid.consumer(group="backend")
        consumer.subscribe(["counts"])
        got = []
        while True:
            batch = consumer.poll(100)
            if not batch:
                break
            got.extend(batch)
        assert len(got) == 20


class TestRewind:
    def _loaded(self) -> Liquid:
        liquid = make_liquid()
        liquid.create_feed("raw", partitions=1)
        producer = liquid.producer()
        for i in range(10):
            producer.send("raw", i, timestamp=float(i))
        liquid.tick(0.0)
        return liquid

    def test_rewind_to_time(self):
        liquid = self._loaded()
        offsets = liquid.rewind_to_time("raw", 5.0)
        assert offsets[TopicPartition("raw", 0)] == 5

    def test_rewind_to_version(self):
        liquid = self._loaded()
        tp = TopicPartition("raw", 0)
        liquid.cluster.offset_manager.commit(
            "g", tp, 7, {"software_version": "v1"}
        )
        offsets = liquid.rewind_to_version("raw", "g", "v1")
        assert offsets[tp] == 7

    def test_rewind_to_commit_time(self):
        liquid = self._loaded()
        tp = TopicPartition("raw", 0)
        liquid.cluster.offset_manager.commit("g", tp, 3)
        liquid.tick(10.0)
        liquid.cluster.offset_manager.commit("g", tp, 9)
        offsets = liquid.rewind_to_commit_time("raw", "g", 5.0)
        assert offsets[tp] == 3

    def test_rewind_unknown_feed_rejected(self):
        liquid = make_liquid()
        with pytest.raises(FeedNotFoundError):
            liquid.rewind_to_time("ghost", 0.0)


class TestIncrementalHelper:
    def test_incremental_fold_over_feed(self):
        liquid = make_liquid()
        liquid.create_feed("raw", partitions=1)
        producer = liquid.producer()
        for i in range(10):
            producer.send("raw", i)
        liquid.tick(0.0)
        fold = liquid.incremental_fold(
            "raw", "stats", init=lambda: 0, fold=lambda s, r: s + r.value
        )
        report = fold.update()
        assert report.records_read == 10
        assert fold.state == sum(range(10))


class TestOperations:
    def test_broker_lifecycle_via_facade(self):
        liquid = make_liquid()
        liquid.create_feed("raw")
        liquid.kill_broker(2)
        assert 2 not in liquid.cluster.controller.live_brokers()
        liquid.restart_broker(2)
        assert 2 in liquid.cluster.controller.live_brokers()

    def test_stats_include_processing_shape(self):
        liquid = make_liquid()
        liquid.create_feed("raw", partitions=2)
        liquid.submit_job(
            JobConfig(name="j", inputs=["raw"],
                      task_factory=lambda: MapTask("out")),
            outputs=["out"],
        )
        stats = liquid.stats()
        assert stats["feeds"] == 2
        assert stats["source_feeds"] == 1
        assert stats["derived_feeds"] == 1
        assert stats["jobs"] == 1
        assert stats["processing_tasks"] == 2
