"""Unit tests for the group coordinator (§3.1 consumer groups)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError, UnknownMemberError
from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.consumer_group import (
    ASSIGN_COOPERATIVE_STICKY,
    ASSIGN_RANGE,
    ASSIGN_ROUND_ROBIN,
    GroupCoordinator,
)


def make_coordinator(strategy="range", partitions=6):
    cluster = MessagingCluster(num_brokers=1, clock=SimClock())
    cluster.create_topic("t", num_partitions=partitions, replication_factor=1)
    cluster.create_topic("u", num_partitions=2, replication_factor=1)
    return GroupCoordinator(cluster, strategy=strategy)


class TestMembership:
    def test_join_returns_generation(self):
        gc = make_coordinator()
        assert gc.join("g", "m1", {"t"}) == 1
        assert gc.join("g", "m2", {"t"}) == 2

    def test_leave_unknown_member_rejected(self):
        gc = make_coordinator()
        gc.join("g", "m1", {"t"})
        with pytest.raises(UnknownMemberError):
            gc.leave("g", "ghost")

    def test_unknown_group_rejected(self):
        gc = make_coordinator()
        with pytest.raises(UnknownMemberError):
            gc.generation("nope")

    def test_members_listed(self):
        gc = make_coordinator()
        gc.join("g", "b", {"t"})
        gc.join("g", "a", {"t"})
        assert gc.members("g") == ["a", "b"]

    def test_invalid_strategy_rejected(self):
        cluster = MessagingCluster(num_brokers=1, clock=SimClock())
        with pytest.raises(ConfigError):
            GroupCoordinator(cluster, strategy="sticky")


class TestRangeAssignment:
    def test_single_member_gets_everything(self):
        gc = make_coordinator()
        gc.join("g", "m1", {"t"})
        assert len(gc.assignment_for("g", "m1")) == 6

    def test_assignment_is_disjoint_partition_of_topic(self):
        gc = make_coordinator()
        gc.join("g", "m1", {"t"})
        gc.join("g", "m2", {"t"})
        a1 = set(gc.assignment_for("g", "m1"))
        a2 = set(gc.assignment_for("g", "m2"))
        assert a1.isdisjoint(a2)
        assert a1 | a2 == set(
            TopicPartition("t", p) for p in range(6)
        )

    def test_uneven_split_gives_extra_to_first(self):
        gc = make_coordinator(partitions=5)
        gc.join("g", "m1", {"t"})
        gc.join("g", "m2", {"t"})
        assert len(gc.assignment_for("g", "m1")) == 3
        assert len(gc.assignment_for("g", "m2")) == 2

    def test_range_is_contiguous(self):
        gc = make_coordinator()
        gc.join("g", "m1", {"t"})
        gc.join("g", "m2", {"t"})
        partitions = sorted(p.partition for p in gc.assignment_for("g", "m1"))
        assert partitions == list(range(partitions[0], partitions[-1] + 1))

    def test_more_members_than_partitions_leaves_idle(self):
        gc = make_coordinator(partitions=2)
        for i in range(4):
            gc.join("g", f"m{i}", {"t"})
        sizes = sorted(
            len(gc.assignment_for("g", f"m{i}")) for i in range(4)
        )
        assert sizes == [0, 0, 1, 1]

    def test_subscription_respected(self):
        gc = make_coordinator()
        gc.join("g", "m1", {"t"})
        gc.join("g", "m2", {"u"})
        assert all(tp.topic == "t" for tp in gc.assignment_for("g", "m1"))
        assert all(tp.topic == "u" for tp in gc.assignment_for("g", "m2"))


class TestRoundRobinAssignment:
    def test_deals_alternately(self):
        gc = make_coordinator(strategy=ASSIGN_ROUND_ROBIN)
        gc.join("g", "m1", {"t"})
        gc.join("g", "m2", {"t"})
        a1 = [tp.partition for tp in gc.assignment_for("g", "m1")]
        a2 = [tp.partition for tp in gc.assignment_for("g", "m2")]
        assert a1 == [0, 2, 4]
        assert a2 == [1, 3, 5]

    def test_multi_topic_coverage(self):
        gc = make_coordinator(strategy=ASSIGN_ROUND_ROBIN)
        gc.join("g", "m1", {"t", "u"})
        gc.join("g", "m2", {"t", "u"})
        combined = set(gc.assignment_for("g", "m1")) | set(
            gc.assignment_for("g", "m2")
        )
        assert len(combined) == 8


class TestRebalance:
    def test_leave_redistributes(self):
        gc = make_coordinator()
        gc.join("g", "m1", {"t"})
        gc.join("g", "m2", {"t"})
        gc.leave("g", "m2")
        assert len(gc.assignment_for("g", "m1")) == 6

    def test_generation_bumps_on_every_change(self):
        gc = make_coordinator()
        g1 = gc.join("g", "m1", {"t"})
        g2 = gc.join("g", "m2", {"t"})
        gc.leave("g", "m2")
        assert gc.generation("g") == g2 + 1 > g1

    def test_rebalance_count(self):
        gc = make_coordinator()
        gc.join("g", "m1", {"t"})
        gc.join("g", "m2", {"t"})
        gc.leave("g", "m1")
        assert gc.rebalance_count("g") == 3

    def test_groups_are_independent(self):
        gc = make_coordinator()
        gc.join("g1", "m1", {"t"})
        gc.join("g2", "m1", {"t"})
        assert len(gc.assignment_for("g1", "m1")) == 6
        assert len(gc.assignment_for("g2", "m1")) == 6
        assert gc.groups() == ["g1", "g2"]


class TestCooperativeSticky:
    def _assignments(self, gc, group, members):
        return {m: set(gc.assignment_for(group, m)) for m in members}

    def test_initial_assignment_is_balanced_and_complete(self):
        gc = make_coordinator(strategy=ASSIGN_COOPERATIVE_STICKY)
        gc.join("g", "m1", {"t"})
        gc.join("g", "m2", {"t"})
        a = self._assignments(gc, "g", ["m1", "m2"])
        assert a["m1"].isdisjoint(a["m2"])
        assert a["m1"] | a["m2"] == {TopicPartition("t", p) for p in range(6)}
        assert abs(len(a["m1"]) - len(a["m2"])) <= 1

    def test_join_moves_only_the_minimum(self):
        """A new member takes only its fair share; nothing else shuffles."""
        gc = make_coordinator(strategy=ASSIGN_COOPERATIVE_STICKY)
        gc.join("g", "m1", {"t"})
        gc.join("g", "m2", {"t"})
        before = self._assignments(gc, "g", ["m1", "m2"])
        gc.join("g", "m3", {"t"})
        after = self._assignments(gc, "g", ["m1", "m2", "m3"])
        # Survivors only shed partitions (down to the new target), never swap.
        assert after["m1"] <= before["m1"]
        assert after["m2"] <= before["m2"]
        moved = (before["m1"] - after["m1"]) | (before["m2"] - after["m2"])
        assert moved == after["m3"]
        assert len(after["m3"]) == 2  # exactly the new member's share

    def test_leave_moves_only_the_leavers_partitions(self):
        gc = make_coordinator(strategy=ASSIGN_COOPERATIVE_STICKY)
        for m in ("m1", "m2", "m3"):
            gc.join("g", m, {"t"})
        before = self._assignments(gc, "g", ["m1", "m2", "m3"])
        gc.leave("g", "m2")
        after = self._assignments(gc, "g", ["m1", "m3"])
        # Survivors keep everything they had; only m2's partitions move.
        assert before["m1"] <= after["m1"]
        assert before["m3"] <= after["m3"]
        gained = (after["m1"] - before["m1"]) | (after["m3"] - before["m3"])
        assert gained == before["m2"]

    def test_eager_strategies_reshuffle_where_sticky_does_not(self):
        """The satellite's regression: range moves partitions a sticky
        rebalance leaves in place, on the same join sequence."""

        def churn(strategy):
            gc = make_coordinator(strategy=strategy, partitions=6)
            gc.join("g", "b", {"t"})
            gc.join("g", "c", {"t"})
            before = {
                m: set(gc.assignment_for("g", m)) for m in ("b", "c")
            }
            gc.join("g", "a", {"t"})  # sorts first: shifts range splits
            after = {
                m: set(gc.assignment_for("g", m)) for m in ("b", "c")
            }
            return sum(len(before[m] - after[m]) for m in ("b", "c"))

        sticky_moves = churn(ASSIGN_COOPERATIVE_STICKY)
        range_moves = churn(ASSIGN_RANGE)
        assert sticky_moves == 2   # only the new member's fair share
        assert range_moves > sticky_moves

    def test_multi_topic_balance_per_topic(self):
        gc = make_coordinator(strategy=ASSIGN_COOPERATIVE_STICKY)
        gc.join("g", "m1", {"t", "u"})
        gc.join("g", "m2", {"t", "u"})
        for topic, total in (("t", 6), ("u", 2)):
            counts = [
                sum(1 for tp in gc.assignment_for("g", m) if tp.topic == topic)
                for m in ("m1", "m2")
            ]
            assert sum(counts) == total
            assert abs(counts[0] - counts[1]) <= 1

    def test_generation_still_bumps_per_rebalance(self):
        gc = make_coordinator(strategy=ASSIGN_COOPERATIVE_STICKY)
        assert gc.join("g", "m1", {"t"}) == 1
        assert gc.join("g", "m2", {"t"}) == 2
        gc.leave("g", "m1")
        assert gc.generation("g") == 3
