"""Unit tests for exactly-once transactions (§4.3's "ongoing effort")."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError, ProducerFencedError, TransactionError
from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.producer import Producer
from repro.messaging.transactions import (
    TransactionalProducer,
    get_transaction_coordinator,
)

TP = TopicPartition("t", 0)


def make_cluster(partitions=1) -> MessagingCluster:
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("t", num_partitions=partitions, replication_factor=3)
    return cluster


def committed_values(cluster, partition=0):
    result = cluster.fetch(
        "t", partition, 0, max_messages=10_000, isolation="read_committed"
    )
    return [r.value for r in result.records]


def uncommitted_values(cluster, partition=0):
    result = cluster.fetch("t", partition, 0, max_messages=10_000)
    return [r.value for r in result.records]


class TestLifecycle:
    def test_empty_transactional_id_rejected(self):
        with pytest.raises(ConfigError):
            TransactionalProducer(make_cluster(), "")

    def test_send_outside_transaction_rejected(self):
        producer = TransactionalProducer(make_cluster(), "tx")
        with pytest.raises(TransactionError):
            producer.send("t", "v")

    def test_double_begin_rejected(self):
        producer = TransactionalProducer(make_cluster(), "tx")
        producer.begin()
        with pytest.raises(TransactionError):
            producer.begin()

    def test_commit_without_begin_rejected(self):
        producer = TransactionalProducer(make_cluster(), "tx")
        with pytest.raises(TransactionError):
            producer.commit()


class TestAtomicity:
    def test_open_transaction_invisible_to_read_committed(self):
        cluster = make_cluster()
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "pending-1")
        producer.send("t", "pending-2")
        assert committed_values(cluster) == []
        producer.commit()
        assert committed_values(cluster) == ["pending-1", "pending-2"]

    def test_aborted_records_never_visible(self):
        cluster = make_cluster()
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "doomed")
        producer.abort()
        producer.begin()
        producer.send("t", "kept")
        producer.commit()
        assert committed_values(cluster) == ["kept"]

    def test_read_uncommitted_sees_everything_but_markers(self):
        cluster = make_cluster()
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "pending")
        values = uncommitted_values(cluster)
        assert values == ["pending"]
        producer.abort()
        values = uncommitted_values(cluster)
        assert values == ["pending"]  # aborted but read_uncommitted shows it
        assert committed_values(cluster) == []

    def test_open_transaction_blocks_later_records(self):
        """LSO semantics: nothing after the first open txn is delivered,
        even non-transactional records, preserving order."""
        cluster = make_cluster()
        txn = TransactionalProducer(cluster, "tx")
        plain = Producer(cluster)
        txn.begin()
        txn.send("t", "txn-pending")
        plain.send("t", "plain-after", partition=0)
        cluster.tick(0.0)
        assert committed_values(cluster) == []
        txn.commit()
        cluster.tick(0.0)
        assert committed_values(cluster) == ["txn-pending", "plain-after"]

    def test_multi_partition_transaction_commits_atomically(self):
        cluster = make_cluster(partitions=2)
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "p0", partition=0)
        producer.send("t", "p1", partition=1)
        assert committed_values(cluster, 0) == []
        assert committed_values(cluster, 1) == []
        producer.commit()
        assert committed_values(cluster, 0) == ["p0"]
        assert committed_values(cluster, 1) == ["p1"]

    def test_interleaved_transactions_resolve_independently(self):
        cluster = make_cluster()
        tx_a = TransactionalProducer(cluster, "a")
        tx_b = TransactionalProducer(cluster, "b")
        tx_a.begin()
        tx_b.begin()
        tx_a.send("t", "from-a")
        tx_b.send("t", "from-b")
        tx_b.commit()
        # a is still open and started first: LSO holds everything back.
        assert committed_values(cluster) == []
        tx_a.abort()
        assert committed_values(cluster) == ["from-b"]


class TestFencing:
    def test_new_incarnation_fences_old(self):
        cluster = make_cluster()
        old = TransactionalProducer(cluster, "etl-7")
        new = TransactionalProducer(cluster, "etl-7")
        with pytest.raises(ProducerFencedError):
            old.begin()
        new.begin()
        new.send("t", "from-new")
        new.commit()
        assert committed_values(cluster) == ["from-new"]

    def test_fencing_aborts_in_flight_transaction(self):
        cluster = make_cluster()
        old = TransactionalProducer(cluster, "etl-7")
        old.begin()
        old.send("t", "zombie-write")
        coordinator = get_transaction_coordinator(cluster)
        TransactionalProducer(cluster, "etl-7")  # fences; aborts old txn
        assert coordinator.fencings == 1
        assert committed_values(cluster) == []
        with pytest.raises(ProducerFencedError):
            old.commit()


class TestTransactionalOffsets:
    def test_offsets_commit_with_transaction(self):
        cluster = make_cluster()
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "out")
        producer.send_offsets_to_transaction(
            "job-x", {TopicPartition("t", 0): 42}, {"software_version": "v1"}
        )
        assert cluster.offset_manager.fetch("job-x", TP) is None
        producer.commit()
        commit = cluster.offset_manager.fetch("job-x", TP)
        assert commit.offset == 42
        assert commit.metadata["software_version"] == "v1"

    def test_offsets_discarded_on_abort(self):
        cluster = make_cluster()
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "out")
        producer.send_offsets_to_transaction("job-x", {TP: 42})
        producer.abort()
        assert cluster.offset_manager.fetch("job-x", TP) is None


class TestConsumerIntegration:
    def test_read_committed_consumer_end_to_end(self):
        cluster = make_cluster()
        consumer = Consumer(cluster, isolation_level="read_committed")
        consumer.assign([TP])
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "a")
        producer.send("t", "b")
        assert consumer.poll(10) == []
        producer.commit()
        cluster.tick(0.0)
        values = [r.value for r in consumer.poll(10)]
        assert values == ["a", "b"]
        # Position skipped past the marker without delivering it.
        assert consumer.position(TP) == cluster.end_offset(TP)

    def test_invalid_isolation_level_rejected(self):
        with pytest.raises(ConfigError):
            Consumer(make_cluster(), isolation_level="serializable")

    def test_transaction_state_survives_failover(self):
        cluster = make_cluster()
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "committed-later")
        producer.commit()
        producer.begin()
        producer.send("t", "aborted-later")
        producer.abort()
        cluster.run_until_replicated()
        cluster.kill_broker(cluster.leader_of("t", 0))
        assert committed_values(cluster) == ["committed-later"]
