"""Unit tests for exactly-once transactions (§4.3's "ongoing effort")."""

import pytest

from repro.chaos.failpoints import raising, registry
from repro.common.clock import SimClock
from repro.common.errors import ConfigError, ProducerFencedError, TransactionError
from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.producer import Producer
from repro.messaging.transactions import (
    TransactionalProducer,
    get_transaction_coordinator,
)


@pytest.fixture(autouse=True)
def _clean_failpoints():
    registry().disarm_all()
    yield
    registry().disarm_all()

TP = TopicPartition("t", 0)


def make_cluster(partitions=1) -> MessagingCluster:
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("t", num_partitions=partitions, replication_factor=3)
    return cluster


def committed_values(cluster, partition=0):
    result = cluster.fetch(
        "t", partition, 0, max_messages=10_000, isolation="read_committed"
    )
    return [r.value for r in result.records]


def uncommitted_values(cluster, partition=0):
    result = cluster.fetch("t", partition, 0, max_messages=10_000)
    return [r.value for r in result.records]


class TestLifecycle:
    def test_empty_transactional_id_rejected(self):
        with pytest.raises(ConfigError):
            TransactionalProducer(make_cluster(), "")

    def test_send_outside_transaction_rejected(self):
        producer = TransactionalProducer(make_cluster(), "tx")
        with pytest.raises(TransactionError):
            producer.send("t", "v")

    def test_double_begin_rejected(self):
        producer = TransactionalProducer(make_cluster(), "tx")
        producer.begin()
        with pytest.raises(TransactionError):
            producer.begin()

    def test_commit_without_begin_rejected(self):
        producer = TransactionalProducer(make_cluster(), "tx")
        with pytest.raises(TransactionError):
            producer.commit()


class TestAtomicity:
    def test_open_transaction_invisible_to_read_committed(self):
        cluster = make_cluster()
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "pending-1")
        producer.send("t", "pending-2")
        assert committed_values(cluster) == []
        producer.commit()
        assert committed_values(cluster) == ["pending-1", "pending-2"]

    def test_aborted_records_never_visible(self):
        cluster = make_cluster()
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "doomed")
        producer.abort()
        producer.begin()
        producer.send("t", "kept")
        producer.commit()
        assert committed_values(cluster) == ["kept"]

    def test_read_uncommitted_sees_everything_but_markers(self):
        cluster = make_cluster()
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "pending")
        values = uncommitted_values(cluster)
        assert values == ["pending"]
        producer.abort()
        values = uncommitted_values(cluster)
        assert values == ["pending"]  # aborted but read_uncommitted shows it
        assert committed_values(cluster) == []

    def test_open_transaction_blocks_later_records(self):
        """LSO semantics: nothing after the first open txn is delivered,
        even non-transactional records, preserving order."""
        cluster = make_cluster()
        txn = TransactionalProducer(cluster, "tx")
        plain = Producer(cluster)
        txn.begin()
        txn.send("t", "txn-pending")
        plain.send("t", "plain-after", partition=0)
        cluster.tick(0.0)
        assert committed_values(cluster) == []
        txn.commit()
        cluster.tick(0.0)
        assert committed_values(cluster) == ["txn-pending", "plain-after"]

    def test_multi_partition_transaction_commits_atomically(self):
        cluster = make_cluster(partitions=2)
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "p0", partition=0)
        producer.send("t", "p1", partition=1)
        assert committed_values(cluster, 0) == []
        assert committed_values(cluster, 1) == []
        producer.commit()
        assert committed_values(cluster, 0) == ["p0"]
        assert committed_values(cluster, 1) == ["p1"]

    def test_interleaved_transactions_resolve_independently(self):
        cluster = make_cluster()
        tx_a = TransactionalProducer(cluster, "a")
        tx_b = TransactionalProducer(cluster, "b")
        tx_a.begin()
        tx_b.begin()
        tx_a.send("t", "from-a")
        tx_b.send("t", "from-b")
        tx_b.commit()
        # a is still open and started first: LSO holds everything back.
        assert committed_values(cluster) == []
        tx_a.abort()
        assert committed_values(cluster) == ["from-b"]


class TestFencing:
    def test_new_incarnation_fences_old(self):
        cluster = make_cluster()
        old = TransactionalProducer(cluster, "etl-7")
        new = TransactionalProducer(cluster, "etl-7")
        with pytest.raises(ProducerFencedError):
            old.begin()
        new.begin()
        new.send("t", "from-new")
        new.commit()
        assert committed_values(cluster) == ["from-new"]

    def test_fencing_aborts_in_flight_transaction(self):
        cluster = make_cluster()
        old = TransactionalProducer(cluster, "etl-7")
        old.begin()
        old.send("t", "zombie-write")
        coordinator = get_transaction_coordinator(cluster)
        TransactionalProducer(cluster, "etl-7")  # fences; aborts old txn
        assert coordinator.fencings == 1
        assert committed_values(cluster) == []
        with pytest.raises(ProducerFencedError):
            old.commit()


class TestTransactionalOffsets:
    def test_offsets_commit_with_transaction(self):
        cluster = make_cluster()
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "out")
        producer.send_offsets_to_transaction(
            "job-x", {TopicPartition("t", 0): 42}, {"software_version": "v1"}
        )
        assert cluster.offset_manager.fetch("job-x", TP) is None
        producer.commit()
        commit = cluster.offset_manager.fetch("job-x", TP)
        assert commit.offset == 42
        assert commit.metadata["software_version"] == "v1"

    def test_offsets_discarded_on_abort(self):
        cluster = make_cluster()
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "out")
        producer.send_offsets_to_transaction("job-x", {TP: 42})
        producer.abort()
        assert cluster.offset_manager.fetch("job-x", TP) is None


class TestConsumerIntegration:
    def test_read_committed_consumer_end_to_end(self):
        cluster = make_cluster()
        consumer = Consumer(cluster, isolation_level="read_committed")
        consumer.assign([TP])
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "a")
        producer.send("t", "b")
        assert consumer.poll(10) == []
        producer.commit()
        cluster.tick(0.0)
        values = [r.value for r in consumer.poll(10)]
        assert values == ["a", "b"]
        # Position skipped past the marker without delivering it.
        assert consumer.position(TP) == cluster.end_offset(TP)

    def test_invalid_isolation_level_rejected(self):
        with pytest.raises(ConfigError):
            Consumer(make_cluster(), isolation_level="serializable")

    def test_marker_order_is_deterministic_across_insertion_orders(self):
        """Regression: ``_write_markers`` used to iterate the ``in_flight``
        *set*, so marker write order depended on PYTHONHASHSEED — silently
        breaking byte-for-byte replay of any transactional run.  Markers
        must now go out in sorted partition order, however the transaction
        touched them."""
        orders = []
        for touch_order in ([3, 0, 2, 1], [1, 2, 0, 3]):
            cluster = make_cluster(partitions=4)
            producer = TransactionalProducer(cluster, "tx")
            producer.begin()
            for partition in touch_order:
                producer.send("t", f"p{partition}", partition=partition)
            written: list[tuple[str, int]] = []

            def record(partition=None, **_ctx):
                if partition.topic == "t":
                    written.append((partition.topic, partition.partition))

            with registry().scoped("cluster.produce", record):
                producer.commit()
            orders.append(written)
        assert orders[0] == orders[1]
        assert orders[0] == [("t", 0), ("t", 1), ("t", 2), ("t", 3)]

    def test_transaction_state_survives_failover(self):
        cluster = make_cluster()
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "committed-later")
        producer.commit()
        producer.begin()
        producer.send("t", "aborted-later")
        producer.abort()
        cluster.run_until_replicated()
        cluster.kill_broker(cluster.leader_of("t", 0))
        assert committed_values(cluster) == ["committed-later"]


class TestCrashAtomicCommit:
    """The commit protocol behind chaos failpoints: markers and offset
    commits must never be observable half-done."""

    def staged_transaction(self, partitions=2):
        cluster = make_cluster(partitions=partitions)
        producer = TransactionalProducer(cluster, "etl")
        producer.begin()
        for partition in range(partitions):
            producer.send("t", f"out-{partition}", partition=partition)
        producer.send_offsets_to_transaction(
            "job-etl", {TopicPartition("in", 0): 7}, {"task_id": 0}
        )
        return cluster, producer

    def test_crash_before_decision_aborts_on_restart(self):
        cluster, producer = self.staged_transaction()
        registry().arm("txn.commit", raising(lambda: RuntimeError("crash")))
        with pytest.raises(RuntimeError):
            producer.commit()
        TransactionalProducer(cluster, "etl")  # restart: fences + aborts
        assert committed_values(cluster, 0) == []
        assert committed_values(cluster, 1) == []
        assert cluster.offset_manager.fetch("job-etl", TopicPartition("in", 0)) is None

    def test_crash_between_markers_and_offsets_rolls_forward(self):
        """Satellite regression: a crash after ``_write_markers`` but before
        the offset-manager commit used to leak committed outputs with
        uncommitted offsets — a restart would replay inputs and emit
        duplicates.  The decided commit now completes on restart."""
        cluster, producer = self.staged_transaction()
        registry().arm(
            "txn.commit.offsets", raising(lambda: RuntimeError("crash"))
        )
        with pytest.raises(RuntimeError):
            producer.commit()
        registry().disarm_all()
        # The dangerous window: outputs are already visible...
        assert committed_values(cluster, 0) == ["out-0"]
        # ...so restart must NOT abort — it completes the decided commit.
        TransactionalProducer(cluster, "etl")
        commit = cluster.offset_manager.fetch("job-etl", TopicPartition("in", 0))
        assert commit is not None and commit.offset == 7
        assert commit.metadata["task_id"] == 0
        assert committed_values(cluster, 0) == ["out-0"]
        assert committed_values(cluster, 1) == ["out-1"]

    def test_crash_mid_markers_completes_remaining_markers_once(self):
        cluster, producer = self.staged_transaction()
        fired = {"n": 0}

        def second_marker_crashes(**_ctx):
            fired["n"] += 1
            if fired["n"] == 2:
                raise RuntimeError("crash")

        registry().arm("txn.commit.marker", second_marker_crashes)
        with pytest.raises(RuntimeError):
            producer.commit()
        registry().disarm_all()
        TransactionalProducer(cluster, "etl")
        assert committed_values(cluster, 0) == ["out-0"]
        assert committed_values(cluster, 1) == ["out-1"]
        # Exactly one record + one marker per partition — the marker that
        # was already written is not re-written on roll-forward.
        for partition in range(2):
            assert cluster.log_end_offset(TopicPartition("t", partition)) == 2
        commit = cluster.offset_manager.fetch("job-etl", TopicPartition("in", 0))
        assert commit is not None and commit.offset == 7

    def test_commit_retry_resumes_decided_transaction(self):
        """``commit()`` called again after a mid-commit crash finishes the
        apply phase instead of raising 'no open transaction'."""
        cluster, producer = self.staged_transaction()
        registry().arm(
            "txn.commit.offsets", raising(lambda: RuntimeError("crash"))
        )
        with pytest.raises(RuntimeError):
            producer.commit()
        registry().disarm_all()
        producer.commit()  # same incarnation retries
        commit = cluster.offset_manager.fetch("job-etl", TopicPartition("in", 0))
        assert commit is not None and commit.offset == 7

    def test_abort_of_decided_transaction_rejected(self):
        cluster, producer = self.staged_transaction()
        registry().arm(
            "txn.commit.offsets", raising(lambda: RuntimeError("crash"))
        )
        with pytest.raises(RuntimeError):
            producer.commit()
        registry().disarm_all()
        with pytest.raises(TransactionError):
            producer.abort()


class TestIdempotentSequences:
    """Satellite regression: transactional sends used to increment a local
    counter without attaching it, bypassing broker-side dedup entirely."""

    def test_sequences_attached_per_partition(self):
        cluster = make_cluster(partitions=2)
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        producer.send("t", "a", partition=0)
        producer.send("t", "b", partition=0)
        producer.send("t", "c", partition=1)
        producer.commit()
        p0 = uncommitted_values(cluster, 0)
        assert p0 == ["a", "b"]
        records = cluster.fetch("t", 0, 0, max_messages=100).records
        assert [r.headers["__seq"] for r in records] == [0, 1]
        records = cluster.fetch("t", 1, 0, max_messages=100).records
        assert [r.headers["__seq"] for r in records] == [0]

    def test_sequences_continue_across_incarnations(self):
        """A restarted incarnation shares the producer id, so its sequences
        must continue the numbering — restarting at 0 would be wrongly
        deduplicated against the previous incarnation's appends."""
        cluster = make_cluster()
        first = TransactionalProducer(cluster, "tx")
        first.begin()
        first.send("t", "one")
        first.send("t", "two")
        first.commit()
        second = TransactionalProducer(cluster, "tx")
        assert second.producer_id == first.producer_id
        second.begin()
        ack = second.send("t", "three")
        assert not ack.duplicate
        second.commit()
        assert committed_values(cluster) == ["one", "two", "three"]

    def test_retry_inside_transaction_dedupes(self):
        """acks=all failed after the leader append stood: the transactional
        send retries under its original sequence and the broker dedupes —
        the record lands exactly once inside the transaction."""
        cluster = MessagingCluster(num_brokers=3, clock=SimClock())
        cluster.create_topic(
            "t", num_partitions=1, replication_factor=3, min_insync_replicas=2
        )
        producer = TransactionalProducer(cluster, "tx")
        producer.begin()
        leader = cluster.leader_of("t", 0)
        followers = [b for b in range(3) if b != leader]
        for follower in followers:
            cluster.broker(follower).shutdown()  # sessions still alive
        attempts = {"n": 0}

        def heal_on_retry(**_ctx):
            attempts["n"] += 1
            if attempts["n"] == 2:
                for follower in followers:
                    cluster.controller.broker_failed(follower)
                    cluster.restart_broker(follower)
                cluster.run_until_replicated()

        with registry().scoped("cluster.produce", heal_on_retry):
            ack = producer.send("t", "exactly-once")
        assert attempts["n"] >= 2  # first attempt failed, retry went through
        assert ack.duplicate  # broker recognized the replayed sequence
        assert producer.retries >= 1
        producer.commit()
        assert committed_values(cluster) == ["exactly-once"]
