"""Unit tests for the offset manager (§3.1, §4.2)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.common.records import TopicPartition
from repro.messaging.offset_manager import OffsetManager

TP = TopicPartition("t", 0)
TP2 = TopicPartition("t", 1)


def make_manager(**kwargs) -> tuple[SimClock, OffsetManager]:
    clock = SimClock()
    return clock, OffsetManager(clock, **kwargs)


class TestCommitFetch:
    def test_fetch_latest(self):
        _clock, manager = make_manager()
        manager.commit("g", TP, 5)
        manager.commit("g", TP, 9)
        commit = manager.fetch("g", TP)
        assert commit is not None and commit.offset == 9

    def test_unknown_returns_none(self):
        _clock, manager = make_manager()
        assert manager.fetch("g", TP) is None

    def test_groups_isolated(self):
        _clock, manager = make_manager()
        manager.commit("g1", TP, 5)
        manager.commit("g2", TP, 7)
        assert manager.fetch("g1", TP).offset == 5
        assert manager.fetch("g2", TP).offset == 7
        assert manager.groups() == {"g1", "g2"}

    def test_partitions_isolated(self):
        _clock, manager = make_manager()
        manager.commit("g", TP, 5)
        manager.commit("g", TP2, 6)
        group = manager.fetch_group("g")
        assert group[TP].offset == 5
        assert group[TP2].offset == 6

    def test_negative_offset_rejected(self):
        _clock, manager = make_manager()
        with pytest.raises(ConfigError):
            manager.commit("g", TP, -1)

    def test_commit_timestamps_from_clock(self):
        clock, manager = make_manager()
        clock.advance(42.0)
        commit = manager.commit("g", TP, 1)
        assert commit.committed_at == 42.0

    def test_metadata_copied(self):
        _clock, manager = make_manager()
        metadata = {"v": 1}
        manager.commit("g", TP, 1, metadata)
        metadata["v"] = 2
        assert manager.fetch("g", TP).metadata == {"v": 1}


class TestAnnotationQueries:
    def test_offset_at_time(self):
        clock, manager = make_manager()
        manager.commit("g", TP, 1)
        clock.advance(10.0)
        manager.commit("g", TP, 5)
        clock.advance(10.0)
        manager.commit("g", TP, 9)
        found = manager.offset_at_time("g", TP, 15.0)
        assert found.offset == 5
        assert manager.offset_at_time("g", TP, 100.0).offset == 9

    def test_offset_at_time_before_first_commit(self):
        clock, manager = make_manager()
        clock.advance(5.0)
        manager.commit("g", TP, 1)
        assert manager.offset_at_time("g", TP, 1.0) is None

    def test_offset_for_annotation(self):
        _clock, manager = make_manager()
        manager.commit("g", TP, 3, {"software_version": "v1"})
        manager.commit("g", TP, 7, {"software_version": "v1"})
        manager.commit("g", TP, 12, {"software_version": "v2"})
        v1 = manager.offset_for_annotation("g", TP, "software_version", "v1")
        assert v1.offset == 7  # LAST v1 commit
        v2 = manager.offset_for_annotation("g", TP, "software_version", "v2")
        assert v2.offset == 12
        assert manager.offset_for_annotation("g", TP, "software_version", "v3") is None

    def test_find_predicate(self):
        _clock, manager = make_manager()
        manager.commit("g", TP, 3, {"run": 1})
        manager.commit("g", TP, 9, {"run": 2})
        found = manager.find("g", TP, lambda c: c.metadata.get("run") == 1)
        assert found.offset == 3

    def test_history_order_and_bound(self):
        _clock, manager = make_manager(history_limit=3)
        for offset in range(6):
            manager.commit("g", TP, offset)
        history = manager.history("g", TP)
        assert [c.offset for c in history] == [3, 4, 5]


class TestDurability:
    def test_durable_append_called_per_commit(self):
        written = []
        _clock, manager = make_manager(
            durable_append=lambda key, value: written.append((key, value))
        )
        manager.commit("grp", TP, 4, {"a": 1})
        assert len(written) == 1
        key, value = written[0]
        assert key == "grp:t-0"
        assert value["offset"] == 4
        assert value["metadata"] == {"a": 1}

    def test_recovery_rebuilds_latest(self):
        _clock, manager = make_manager()
        records = [
            {"group": "g", "topic": "t", "partition": 0, "offset": 5,
             "committed_at": 1.0, "metadata": {"v": "v1"}},
            {"group": "g", "topic": "t", "partition": 1, "offset": 9,
             "committed_at": 2.0, "metadata": {}},
        ]
        assert manager.recover_from_records(records) == 2
        assert manager.fetch("g", TP).offset == 5
        assert manager.fetch("g", TP2).offset == 9

    def test_recovery_clears_previous_state(self):
        _clock, manager = make_manager()
        manager.commit("old", TP, 1)
        manager.recover_from_records([])
        assert manager.fetch("old", TP) is None

    def test_invalid_history_limit_rejected(self):
        with pytest.raises(ConfigError):
            make_manager(history_limit=0)
