"""Unit tests for the job runner (§3.2)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import JobConfigError, TaskFailedError
from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobRunner, StoreConfig
from repro.processing.state import changelog_topic_name


class EchoTask:
    def process(self, record, collector):
        collector.send("out", record.value, key=record.key)


class CountTask:
    def init(self, context):
        self.counts = context.store("counts")

    def process(self, record, collector):
        n = self.counts.get_or_default(record.key, 0) + 1
        self.counts.put(record.key, n)


class FailingTask:
    def process(self, record, collector):
        raise RuntimeError("boom")


class WindowedTask:
    def __init__(self):
        self.windows_fired = 0

    def process(self, record, collector):
        pass

    def window(self, collector):
        self.windows_fired += 1
        collector.send("out", {"window": self.windows_fired})


def make_env(partitions=2, n=20):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=1, clock=clock)
    cluster.create_topic("in", num_partitions=partitions, replication_factor=1)
    cluster.create_topic("out", num_partitions=partitions, replication_factor=1)
    producer = Producer(cluster)
    for i in range(n):
        producer.send("in", {"i": i}, key=f"k{i % 4}")
    return clock, cluster, producer


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": "", "inputs": ["a"], "task_factory": EchoTask},
            {"name": "j", "inputs": [], "task_factory": EchoTask},
            {"name": "j", "inputs": ["a"], "task_factory": EchoTask,
             "checkpoint_interval": 0},
            {"name": "j", "inputs": ["a"], "task_factory": EchoTask,
             "window_interval": 0},
            {"name": "j", "inputs": ["a"], "task_factory": EchoTask,
             "stores": [StoreConfig("s"), StoreConfig("s")]},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(JobConfigError):
            JobConfig(**kwargs)


class TestParallelism:
    def test_one_task_per_partition(self):
        _clock, cluster, _producer = make_env(partitions=3)
        runner = JobRunner(
            JobConfig(name="j", inputs=["in"], task_factory=EchoTask), cluster
        )
        assert runner.num_tasks == 3
        assert len(runner.tasks()) == 3

    def test_task_owns_matching_partition_of_each_input(self):
        clock = SimClock()
        cluster = MessagingCluster(num_brokers=1, clock=clock)
        cluster.create_topic("a", num_partitions=3, replication_factor=1)
        cluster.create_topic("b", num_partitions=2, replication_factor=1)
        runner = JobRunner(
            JobConfig(name="j", inputs=["a", "b"], task_factory=EchoTask), cluster
        )
        assert runner.num_tasks == 3
        assert runner.task(1).partitions == [
            TopicPartition("a", 1),
            TopicPartition("b", 1),
        ]
        assert runner.task(2).partitions == [TopicPartition("a", 2)]


class TestProcessing:
    def test_drains_input_and_emits(self):
        _clock, cluster, _producer = make_env(n=20)
        runner = JobRunner(
            JobConfig(name="j", inputs=["in"], task_factory=EchoTask), cluster
        )
        total = runner.run_until_idle()
        assert total == 20
        assert runner.records_emitted == 20
        tp_counts = sum(
            cluster.end_offset(tp) for tp in cluster.partitions_of("out")
        )
        assert tp_counts == 20

    def test_poll_respects_budget(self):
        _clock, cluster, _producer = make_env(n=20, partitions=1)
        runner = JobRunner(
            JobConfig(name="j", inputs=["in"], task_factory=EchoTask), cluster
        )
        result = runner.poll_once(max_messages=5)
        assert result.records_processed == 5

    def test_task_exception_wrapped(self):
        _clock, cluster, _producer = make_env()
        runner = JobRunner(
            JobConfig(name="j", inputs=["in"], task_factory=FailingTask), cluster
        )
        with pytest.raises(TaskFailedError, match="boom"):
            runner.poll_once()

    def test_auto_advance_moves_clock(self):
        clock, cluster, _producer = make_env()
        runner = JobRunner(
            JobConfig(name="j", inputs=["in"], task_factory=EchoTask), cluster
        )
        before = clock.now()
        runner.run_until_idle()
        assert clock.now() > before

    def test_backlog_counts_unprocessed(self):
        _clock, cluster, _producer = make_env(n=20)
        runner = JobRunner(
            JobConfig(name="j", inputs=["in"], task_factory=EchoTask), cluster
        )
        assert runner.backlog() == 20
        runner.run_until_idle()
        assert runner.backlog() == 0


class TestCheckpointing:
    def test_resume_from_checkpoint(self):
        _clock, cluster, producer = make_env(partitions=1, n=10)
        config = JobConfig(
            name="j", inputs=["in"], task_factory=EchoTask, checkpoint_interval=5
        )
        runner = JobRunner(config, cluster)
        runner.run_until_idle()
        runner.checkpoint()
        # A fresh runner (same name) resumes where the first left off.
        for i in range(3):
            producer.send("in", {"late": i}, key="k")
        fresh = JobRunner(config, cluster)
        total = fresh.run_until_idle()
        assert total == 3

    def test_checkpoint_metadata_has_version(self):
        _clock, cluster, _producer = make_env(partitions=1)
        config = JobConfig(
            name="j", inputs=["in"], task_factory=EchoTask, version="v9"
        )
        runner = JobRunner(config, cluster)
        runner.run_until_idle()
        runner.checkpoint()
        commit = cluster.offset_manager.fetch("job-j", TopicPartition("in", 0))
        assert commit.metadata["software_version"] == "v9"

    def test_auto_checkpoint_by_interval(self):
        _clock, cluster, _producer = make_env(partitions=1, n=20)
        runner = JobRunner(
            JobConfig(
                name="j", inputs=["in"], task_factory=EchoTask,
                checkpoint_interval=5,
            ),
            cluster,
        )
        runner.run_until_idle()
        commit = cluster.offset_manager.fetch("job-j", TopicPartition("in", 0))
        assert commit is not None and commit.offset >= 5


class TestStateAndRecovery:
    def test_changelog_topic_created(self):
        _clock, cluster, _producer = make_env()
        JobRunner(
            JobConfig(
                name="j", inputs=["in"], task_factory=CountTask,
                stores=[StoreConfig("counts")],
            ),
            cluster,
        )
        assert changelog_topic_name("j", "counts") in cluster.topics()
        assert cluster.topic_config(changelog_topic_name("j", "counts")).compacted

    def test_crash_recover_restores_state(self):
        _clock, cluster, _producer = make_env(partitions=2, n=20)
        config = JobConfig(
            name="j", inputs=["in"], task_factory=CountTask,
            stores=[StoreConfig("counts")],
        )
        runner = JobRunner(config, cluster)
        runner.run_until_idle()
        runner.checkpoint()
        before = {
            k: v
            for instance in runner.tasks()
            for k, v in instance.stores["counts"].items()
        }
        runner.crash()
        with pytest.raises(JobConfigError):
            runner.poll_once()
        report = runner.recover()
        assert report.records_replayed == 20
        after = {
            k: v
            for instance in runner.tasks()
            for k, v in instance.stores["counts"].items()
        }
        assert after == before

    def test_recovery_does_not_reprocess_checkpointed_input(self):
        _clock, cluster, _producer = make_env(partitions=1, n=10)
        config = JobConfig(
            name="j", inputs=["in"], task_factory=CountTask,
            stores=[StoreConfig("counts")],
        )
        runner = JobRunner(config, cluster)
        runner.run_until_idle()
        runner.checkpoint()
        runner.crash()
        runner.recover()
        assert runner.run_until_idle() == 0  # nothing re-processed
        counts = dict(runner.task(0).stores["counts"].items())
        assert sum(counts.values()) == 10  # not doubled

    def test_transient_store_lost_on_crash(self):
        _clock, cluster, _producer = make_env(partitions=1, n=10)
        config = JobConfig(
            name="j", inputs=["in"], task_factory=CountTask,
            stores=[StoreConfig("counts", changelog=False)],
        )
        runner = JobRunner(config, cluster)
        runner.run_until_idle()
        runner.checkpoint()
        runner.crash()
        report = runner.recover()
        assert report.records_replayed == 0
        assert len(runner.task(0).stores["counts"]) == 0


class TestWindowing:
    def test_window_fires_on_interval(self):
        clock, cluster, _producer = make_env(partitions=1)
        runner = JobRunner(
            JobConfig(
                name="j", inputs=["in"], task_factory=WindowedTask,
                window_interval=5.0,
            ),
            cluster,
        )
        runner.run_until_idle()
        emitted_before = runner.records_emitted
        clock.advance(6.0)
        runner.poll_once()
        assert runner.records_emitted == emitted_before + 1
