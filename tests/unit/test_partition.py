"""Unit tests for partition replicas (roles, HW, epochs, idempotence)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    ConfigError,
    NotLeaderForPartitionError,
    StaleEpochError,
)
from repro.common.records import StoredMessage, TopicPartition
from repro.messaging.partition import PartitionReplica
from repro.storage.log import LogConfig, PartitionLog

TP = TopicPartition("t", 0)


def make_replica(broker_id=0) -> PartitionReplica:
    log = PartitionLog(f"b{broker_id}/t-0", LogConfig(), clock=SimClock())
    return PartitionReplica(TP, broker_id, log)


def leader(broker_id=0, isr=None) -> PartitionReplica:
    replica = make_replica(broker_id)
    replica.become_leader(1, isr if isr is not None else [broker_id])
    return replica


def entries(n, start=0):
    return [(f"k{i}", {"i": i}, 0.0, {}) for i in range(start, start + n)]


class TestRoles:
    def test_starts_as_follower(self):
        assert make_replica().role == "follower"

    def test_become_leader_sets_epoch(self):
        replica = leader()
        assert replica.role == "leader"
        assert replica.leader_epoch == 1

    def test_follower_rejects_appends(self):
        replica = make_replica()
        with pytest.raises(NotLeaderForPartitionError):
            replica.append_batch(entries(1))

    def test_stale_epoch_produce_rejected(self):
        replica = leader()
        with pytest.raises(StaleEpochError):
            replica.append_batch(entries(1), epoch=0)

    def test_re_promotion_with_same_epoch_rejected(self):
        replica = leader()
        with pytest.raises(StaleEpochError):
            replica.become_leader(1, [0])

    def test_demotion_clears_leader_state(self):
        replica = leader(isr=[0, 1])
        replica.record_follower_position(1, 0)
        replica.become_follower(2)
        assert replica.role == "follower"
        with pytest.raises(NotLeaderForPartitionError):
            replica.follower_lag(1)


class TestHighWatermark:
    def test_sole_isr_member_commits_immediately(self):
        replica = leader(isr=[0])
        replica.append_batch(entries(3))
        assert replica.high_watermark == 3

    def test_hw_waits_for_isr_followers(self):
        replica = leader(isr=[0, 1])
        replica.append_batch(entries(3))
        assert replica.high_watermark == 0
        replica.record_follower_position(1, 3)
        assert replica.high_watermark == 3

    def test_hw_is_min_over_isr(self):
        replica = leader(isr=[0, 1, 2])
        replica.append_batch(entries(5))
        replica.record_follower_position(1, 5)
        replica.record_follower_position(2, 2)
        assert replica.high_watermark == 2

    def test_non_isr_followers_do_not_hold_back_hw(self):
        replica = leader(isr=[0, 1])
        replica.append_batch(entries(5))
        replica.record_follower_position(1, 5)
        replica.record_follower_position(2, 0)  # not in ISR
        assert replica.high_watermark == 5

    def test_isr_shrink_advances_hw(self):
        replica = leader(isr=[0, 1])
        replica.append_batch(entries(4))
        assert replica.high_watermark == 0
        replica.set_isr([0])
        assert replica.high_watermark == 4

    def test_hw_never_regresses(self):
        replica = leader(isr=[0, 1])
        replica.append_batch(entries(4))
        replica.record_follower_position(1, 4)
        assert replica.high_watermark == 4
        replica.set_isr([0, 1, 2])  # new member at LEO 0
        assert replica.high_watermark == 4

    def test_follower_hw_capped_by_own_leo(self):
        replica = make_replica(1)
        replica.replicate_batch(
            [StoredMessage("k", "v", 0.0, offset=0)]
        )
        replica.update_high_watermark(100)
        assert replica.high_watermark == 1


class TestFetch:
    def test_committed_only_hides_uncommitted_tail(self):
        replica = leader(isr=[0, 1])
        replica.append_batch(entries(5))
        replica.record_follower_position(1, 2)
        visible = replica.fetch(0, committed_only=True).messages
        assert [m.offset for m in visible] == [0, 1]
        everything = replica.fetch(0, committed_only=False).messages
        assert len(everything) == 5


class TestReplicateBatch:
    def test_copies_preserve_offsets_and_sizes(self):
        source = leader()
        source.append_batch(entries(3))
        follower = make_replica(1)
        follower.replicate_batch(source.log.all_messages())
        assert [m.offset for m in follower.log.all_messages()] == [0, 1, 2]
        assert follower.log.all_messages()[0].size == source.log.all_messages()[0].size

    def test_leader_cannot_replicate(self):
        replica = leader()
        with pytest.raises(ConfigError):
            replica.replicate_batch([])

    def test_copies_are_independent(self):
        source = leader()
        source.append_batch([("k", {"mutable": []}, 0.0, {})])
        follower = make_replica(1)
        follower.replicate_batch(source.log.all_messages())
        source.log.all_messages()[0].headers["x"] = 1
        assert "x" not in follower.log.all_messages()[0].headers


class TestIdempotentProduce:
    def test_duplicate_sequence_returns_original_offsets(self):
        replica = leader()
        first = replica.append_batch(entries(2), producer_id=9, producer_seq=0)
        dup = replica.append_batch(entries(2), producer_id=9, producer_seq=0)
        assert dup.duplicate
        assert dup.base_offset == first.base_offset
        assert replica.log_end_offset == 2

    def test_new_sequence_appends(self):
        replica = leader()
        replica.append_batch(entries(2), producer_id=9, producer_seq=0)
        second = replica.append_batch(entries(2, start=2), producer_id=9, producer_seq=1)
        assert not second.duplicate
        assert replica.log_end_offset == 4

    def test_independent_producers_do_not_collide(self):
        replica = leader()
        replica.append_batch(entries(1), producer_id=1, producer_seq=0)
        second = replica.append_batch(entries(1, start=1), producer_id=2, producer_seq=0)
        assert not second.duplicate

    def test_empty_batch_rejected(self):
        replica = leader()
        with pytest.raises(ConfigError):
            replica.append_batch([])


class TestTruncate:
    def test_truncate_caps_hw(self):
        replica = leader(isr=[0])
        replica.append_batch(entries(5))
        replica.become_follower(2)
        replica.truncate_to(2)
        assert replica.log_end_offset == 2
        assert replica.high_watermark == 2

    def test_follower_lag(self):
        replica = leader(isr=[0, 1])
        replica.append_batch(entries(5))
        replica.record_follower_position(1, 3)
        assert replica.follower_lag(1) == 2
