"""Unit tests for the anti-caching page cache (§4.1)."""

import pytest

from repro.common.clock import SimClock
from repro.common.costmodel import CostModel
from repro.common.errors import ConfigError
from repro.storage.pagecache import PageCache

PAGE = 64 * 1024


def make_cache(**kwargs) -> tuple[SimClock, PageCache]:
    clock = SimClock()
    defaults = dict(clock=clock, capacity_bytes=16 * PAGE, flush_timeout=5.0)
    defaults.update(kwargs)
    return clock, PageCache(**defaults)


class TestWrite:
    def test_write_returns_ram_latency(self):
        _clock, cache = make_cache()
        latency = cache.write("f", 0, PAGE)
        assert latency == pytest.approx(cache.cost_model.ram_write(PAGE))

    def test_written_pages_are_resident_and_dirty(self):
        _clock, cache = make_cache()
        cache.write("f", 0, 2 * PAGE)
        assert cache.is_resident("f", 0, 2 * PAGE)
        assert cache.dirty_pages() == 2

    def test_flush_timer_cleans_pages(self):
        clock, cache = make_cache(flush_timeout=5.0)
        cache.write("f", 0, PAGE)
        clock.advance(4.9)
        assert cache.dirty_pages() == 1
        clock.advance(0.2)
        assert cache.dirty_pages() == 0
        assert cache.is_resident("f", 0, PAGE)  # flushed but still cached

    def test_zero_timeout_flushes_immediately(self):
        _clock, cache = make_cache(flush_timeout=0.0)
        cache.write("f", 0, PAGE)
        assert cache.dirty_pages() == 0

    def test_zero_bytes_noop(self):
        _clock, cache = make_cache()
        assert cache.write("f", 0, 0) == 0.0

    def test_flush_all(self):
        _clock, cache = make_cache()
        cache.write("f", 0, 3 * PAGE)
        assert cache.flush_all() == 3
        assert cache.dirty_pages() == 0


class TestRead:
    def test_hit_is_ram_speed(self):
        _clock, cache = make_cache()
        cache.write("f", 0, PAGE)
        latency = cache.read("f", 0, PAGE)
        assert latency == pytest.approx(cache.cost_model.ram_read(PAGE))

    def test_cold_read_pays_seek(self):
        _clock, cache = make_cache(prefetch_pages=0)
        latency = cache.read("f", 0, PAGE)
        expected = cache.cost_model.disk_seek_time + (
            cache.cost_model.disk_sequential_read(PAGE)
        )
        assert latency == pytest.approx(expected)

    def test_sequential_cold_read_skips_seek(self):
        _clock, cache = make_cache(prefetch_pages=0, capacity_bytes=4 * PAGE)
        cache.read("f", 0, PAGE)            # cold: seek
        latency = cache.read("f", PAGE, PAGE)  # continues sequentially: no seek
        assert latency == pytest.approx(cache.cost_model.disk_sequential_read(PAGE))

    def test_random_cold_read_pays_seek_each_time(self):
        _clock, cache = make_cache(prefetch_pages=0)
        cache.read("f", 0, PAGE)
        latency = cache.read("f", 10 * PAGE, PAGE)  # jump: seek again
        assert latency >= cache.cost_model.disk_seek_time

    def test_prefetch_makes_subsequent_reads_hits(self):
        _clock, cache = make_cache(prefetch_pages=4)
        cache.read("f", 0, PAGE)  # miss; prefetches pages 1-4
        latency = cache.read("f", PAGE, PAGE)
        assert latency == pytest.approx(cache.cost_model.ram_read(PAGE))
        assert cache.metrics.counter("storage.pagecache.bytes_prefetched").value == 4 * PAGE

    def test_hit_miss_counters(self):
        _clock, cache = make_cache(prefetch_pages=0)
        cache.write("f", 0, PAGE)
        cache.read("f", 0, 2 * PAGE)
        assert cache.metrics.counter("storage.pagecache.hits").value == 1
        assert cache.metrics.counter("storage.pagecache.misses").value == 1


class TestEviction:
    def test_capacity_respected(self):
        _clock, cache = make_cache(capacity_bytes=4 * PAGE, flush_timeout=0.0)
        cache.write("f", 0, 10 * PAGE)
        assert cache.resident_bytes() <= 4 * PAGE

    def test_append_order_keeps_newest(self):
        """Anti-caching: the head (newest) of the log stays in RAM."""
        _clock, cache = make_cache(capacity_bytes=4 * PAGE, flush_timeout=0.0)
        for page_no in range(10):
            cache.write("f", page_no * PAGE, PAGE)
        # Newest 4 pages resident; oldest evicted.
        assert cache.is_resident("f", 6 * PAGE, 4 * PAGE)
        assert not cache.is_resident("f", 0, PAGE)

    def test_lru_keeps_recently_read(self):
        _clock, cache = make_cache(
            capacity_bytes=4 * PAGE, flush_timeout=0.0, eviction="lru",
            prefetch_pages=0,
        )
        for page_no in range(4):
            cache.write("f", page_no * PAGE, PAGE)
        cache.read("f", 0, PAGE)  # touch oldest: now most-recently-used
        cache.write("f", 4 * PAGE, PAGE)  # forces one eviction
        assert cache.is_resident("f", 0, PAGE)       # survived (recently read)
        assert not cache.is_resident("f", PAGE, PAGE)  # LRU victim

    def test_dirty_pages_force_flushed_not_lost(self):
        _clock, cache = make_cache(capacity_bytes=2 * PAGE, flush_timeout=100.0)
        cache.write("f", 0, 5 * PAGE)  # all dirty, over capacity
        assert cache.resident_bytes() <= 2 * PAGE
        assert cache.metrics.counter("storage.pagecache.forced_flushes").value > 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            make_cache(eviction="mru")


class TestMaintenance:
    def test_forget_file(self):
        _clock, cache = make_cache()
        cache.write("a", 0, 2 * PAGE)
        cache.write("b", 0, PAGE)
        assert cache.forget_file("a") == 2
        assert not cache.is_resident("a", 0, PAGE)
        assert cache.is_resident("b", 0, PAGE)

    def test_resident_pages_of(self):
        _clock, cache = make_cache()
        cache.write("a", 0, 3 * PAGE)
        assert cache.resident_pages_of("a") == 3

    def test_negative_start_rejected(self):
        _clock, cache = make_cache()
        with pytest.raises(ConfigError):
            cache.read("f", -1, PAGE)

    @pytest.mark.parametrize(
        "kwargs", [
            {"capacity_bytes": 0},
            {"flush_timeout": -1},
            {"prefetch_pages": -1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            make_cache(**kwargs)


class TestAntiCachingSemantics:
    """Regression guard for the E6 fix: anti-caching evicts by LOG POSITION,
    not by cache-insertion time."""

    def test_scanned_old_pages_evicted_before_newer_data(self):
        _clock, cache = make_cache(
            capacity_bytes=4 * PAGE, flush_timeout=0.0, prefetch_pages=0
        )
        # Newest data: pages 10-12 written (and flushed clean).
        cache.write("f", 10 * PAGE, 3 * PAGE)
        # A scan drags OLD pages 0-1 into the cache afterwards.
        cache.read("f", 0, 2 * PAGE)
        # Capacity is 4 pages; the insertions above total 5: someone was
        # evicted.  Under anti-caching it must be an old page, never the
        # head-of-log pages.
        assert cache.is_resident("f", 10 * PAGE, 3 * PAGE)
        assert cache.resident_pages_of("f") <= 4

    def test_lru_sacrifices_the_head_instead(self):
        _clock, cache = make_cache(
            capacity_bytes=4 * PAGE, flush_timeout=0.0, prefetch_pages=0,
            eviction="lru",
        )
        cache.write("f", 10 * PAGE, 3 * PAGE)
        cache.read("f", 0, 2 * PAGE)
        # LRU evicts the least-recently-touched page, which is one of the
        # (untouched since write) head pages.
        head_resident = sum(
            1 for p in range(10, 13) if cache.is_resident("f", p * PAGE, PAGE)
        )
        assert head_resident < 3

    def test_dirty_head_survives_even_under_pressure(self):
        _clock, cache = make_cache(
            capacity_bytes=2 * PAGE, flush_timeout=100.0, prefetch_pages=0
        )
        cache.write("f", 5 * PAGE, PAGE)   # dirty head page
        cache.read("f", 0, PAGE)           # old page scanned in
        cache.read("f", 1 * PAGE, PAGE)    # another: forces eviction
        assert cache.is_resident("f", 5 * PAGE, PAGE)
