"""The self-hosted telemetry exporter: deltas in, feeds out, no feedback.

Covers the tentpole guarantees: reserved-feed provisioning, counter
high-water-mark deltas, histogram delta windows, span drain, the
feedback-loop guard (telemetry never re-exports telemetry traffic), the
sim-clock cadence, and the facade wiring (``Liquid.enable_telemetry``).
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.metrics import metric_name
from repro.core.liquid import Liquid
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.observability.telemetry import (
    TELEMETRY_ALERTS_FEED,
    TELEMETRY_FEEDS,
    TELEMETRY_METRICS_FEED,
    TELEMETRY_SPANS_FEED,
    TelemetryExporter,
    is_telemetry_feed,
)
from repro.observability.trace import Tracer, install_tracer, uninstall_tracer


def drain(cluster, topic):
    records = []
    for tp in cluster.partitions_of(topic):
        offset = 0
        while True:
            result = cluster.fetch(topic, tp.partition, offset, 10_000)
            if not result.records:
                break
            records.extend(result.records)
            offset = result.next_offset
    return records


def metric_values(cluster, topic=TELEMETRY_METRICS_FEED):
    return [r.value for r in drain(cluster, topic)]


class TestFeedNaming:
    def test_reserved_names(self):
        assert is_telemetry_feed(TELEMETRY_METRICS_FEED)
        assert is_telemetry_feed(TELEMETRY_SPANS_FEED)
        assert is_telemetry_feed(TELEMETRY_ALERTS_FEED)
        assert not is_telemetry_feed("orders")
        assert not is_telemetry_feed("__liquid_offsets")

    def test_exporter_creates_the_feeds(self):
        cluster = MessagingCluster(num_brokers=3)
        TelemetryExporter(cluster)
        for feed in TELEMETRY_FEEDS:
            assert feed in cluster.topics()

    def test_exporter_reuses_existing_feeds(self):
        cluster = MessagingCluster(num_brokers=3)
        TelemetryExporter(cluster)
        TelemetryExporter(cluster)  # no TopicAlreadyExistsError

    def test_liquid_refuses_user_feeds_in_system_namespace(self):
        liquid = Liquid(num_brokers=1)
        with pytest.raises(ConfigError):
            liquid.create_feed("__telemetry.rogue")
        with pytest.raises(ConfigError):
            liquid.create_feed("__mine")

    def test_interval_must_be_positive(self):
        cluster = MessagingCluster(num_brokers=1)
        with pytest.raises(ConfigError):
            TelemetryExporter(cluster, interval=0.0)


class TestMetricDeltas:
    def test_counter_deltas_are_high_water_marks(self):
        cluster = MessagingCluster(num_brokers=1)
        exporter = TelemetryExporter(cluster)
        counter = cluster.metrics.counter(metric_name("core", "demo", "events"))
        counter.increment(5)
        exporter.publish_once()
        counter.increment(2)
        exporter.publish_once()
        deltas = [
            (r["delta"], r["value"])
            for r in metric_values(cluster)
            if r["metric"] == "core.demo.events"
        ]
        assert deltas == [(5.0, 5.0), (2.0, 7.0)]

    def test_unchanged_instruments_are_not_re_exported(self):
        cluster = MessagingCluster(num_brokers=1)
        exporter = TelemetryExporter(cluster)
        counter = cluster.metrics.counter(metric_name("core", "demo", "events"))
        gauge = cluster.metrics.gauge(metric_name("core", "demo", "level"))
        counter.increment(1)
        gauge.set(4.0)
        exporter.publish_once()
        exporter.publish_once()  # nothing moved in between
        records = [
            r for r in metric_values(cluster)
            if r["metric"].startswith("core.demo.")
        ]
        assert len(records) == 2  # one per instrument, not per cycle

    def test_histogram_windows_are_fresh_per_cycle(self):
        cluster = MessagingCluster(num_brokers=1)
        exporter = TelemetryExporter(cluster)
        histogram = cluster.metrics.histogram(
            metric_name("core", "demo", "latency")
        )
        histogram.observe_many([1.0, 2.0, 3.0])
        exporter.publish_once()
        histogram.observe_many([10.0])
        exporter.publish_once()
        windows = [
            (r["count"], r["max"])
            for r in metric_values(cluster)
            if r["metric"] == "core.demo.latency"
        ]
        assert windows == [(3.0, 3.0), (1.0, 10.0)]

    def test_gauge_exported_on_change_only(self):
        cluster = MessagingCluster(num_brokers=1)
        exporter = TelemetryExporter(cluster)
        gauge = cluster.metrics.gauge(metric_name("core", "demo", "level"))
        gauge.set(1.0)
        exporter.publish_once()
        gauge.set(1.0)  # same value
        exporter.publish_once()
        gauge.set(2.0)
        exporter.publish_once()
        values = [
            r["value"]
            for r in metric_values(cluster)
            if r["metric"] == "core.demo.level"
        ]
        assert values == [1.0, 2.0]


class TestNoFeedbackLoop:
    def test_own_instruments_never_exported(self):
        cluster = MessagingCluster(num_brokers=1)
        exporter = TelemetryExporter(cluster)
        cluster.metrics.counter(metric_name("core", "demo", "events")).increment()
        for _ in range(3):
            exporter.publish_once()
        exported = {r["metric"] for r in metric_values(cluster)}
        assert not any(m.startswith("observability.telemetry.") for m in exported)

    def test_telemetry_traffic_is_absorbed_not_amplified(self):
        """With no external activity, the metric feed goes quiet even though
        each export cycle itself produces records (which move messaging
        counters).  Without the absorb step every cycle would re-export the
        previous cycle's own produce counters, forever."""
        cluster = MessagingCluster(num_brokers=1)
        exporter = TelemetryExporter(cluster)
        cluster.metrics.counter(metric_name("core", "demo", "events")).increment()
        counts = [exporter.publish_once()["metrics"] for _ in range(4)]
        assert counts[0] > 0
        assert counts[1:] == [0, 0, 0]

    def test_spans_about_telemetry_feeds_never_ship(self):
        cluster = MessagingCluster(num_brokers=1)
        exporter = TelemetryExporter(cluster)
        tracer = install_tracer(Tracer())
        try:
            producer = Producer(cluster)
            cluster.create_topic("orders", num_partitions=1, replication_factor=1)
            producer.send("orders", {"i": 1})
            exporter.publish_once()
            exporter.publish_once()
            shipped = drain(cluster, TELEMETRY_SPANS_FEED)
            topics = {r.value.get("attrs", {}).get("topic") for r in shipped}
            assert not any(
                t and is_telemetry_feed(t) for t in topics
            )
            assert len(tracer.spans()) == 0  # drained, and sends made no spans
        finally:
            uninstall_tracer()


class TestSpanExport:
    def test_spans_drained_exactly_once(self):
        cluster = MessagingCluster(num_brokers=1)
        cluster.create_topic("orders", num_partitions=1, replication_factor=1)
        exporter = TelemetryExporter(cluster)
        tracer = install_tracer(Tracer())
        try:
            Producer(cluster).send("orders", {"i": 1})
            first = exporter.publish_once()["spans"]
            second = exporter.publish_once()["spans"]
            assert first > 0
            assert second == 0
            shipped = drain(cluster, TELEMETRY_SPANS_FEED)
            assert len(shipped) == first
            record = shipped[0].value
            assert set(record) >= {
                "trace_id", "span_id", "parent_id", "name",
                "start", "end", "duration", "attrs",
            }
        finally:
            uninstall_tracer()


class TestCadence:
    def test_exports_on_the_sim_clock(self):
        cluster = MessagingCluster(num_brokers=1)
        exporter = TelemetryExporter(cluster, interval=5.0)
        counter = cluster.metrics.counter(metric_name("core", "demo", "events"))
        exporter.start()
        counter.increment()
        cluster.tick(4.9)  # not due yet
        assert exporter.cycles == 0
        cluster.tick(0.2)
        assert exporter.cycles == 1
        cluster.tick(10.0)
        assert exporter.cycles == 3
        exporter.stop()
        cluster.tick(20.0)
        assert exporter.cycles == 3

    def test_publish_timestamps_are_deterministic(self):
        def run():
            cluster = MessagingCluster(num_brokers=1)
            exporter = TelemetryExporter(cluster, interval=1.0)
            exporter.start()
            counter = cluster.metrics.counter(
                metric_name("core", "demo", "events")
            )
            for _ in range(3):
                counter.increment()
                cluster.tick(1.0)
            return [
                (r.offset, r.key, r.value, r.timestamp)
                for r in drain(cluster, TELEMETRY_METRICS_FEED)
            ]

        assert run() == run()


class TestLiquidFacade:
    def test_enable_telemetry_registers_feeds(self):
        liquid = Liquid(num_brokers=3)
        exporter = liquid.enable_telemetry(interval=1.0)
        assert liquid.telemetry is exporter
        for feed in TELEMETRY_FEEDS:
            assert feed in liquid.feeds
            assert liquid.feed(feed).is_source_of_truth

    def test_monitoring_job_can_consume_telemetry(self):
        """The monitor is just another job: __telemetry.metrics is a legal
        job input once telemetry is enabled."""
        from repro.processing.job import JobConfig

        class _CountMetrics:
            def process(self, record, collector):
                collector.send("rollups", 1, key=record.value["metric"])

        liquid = Liquid(num_brokers=1)
        liquid.enable_telemetry(interval=1.0)
        liquid.create_feed("source", partitions=1)
        producer = liquid.producer()
        for i in range(5):
            producer.send("source", {"i": i})
        producer.flush()
        liquid.tick(1.5)  # one export cycle
        runner = liquid.submit_job(
            JobConfig(
                name="monitor",
                inputs=[TELEMETRY_METRICS_FEED],
                task_factory=_CountMetrics,
            ),
            outputs=["rollups"],
        )
        runner.run_until_idle()
        assert runner.records_processed > 0
        assert drain(liquid.cluster, "rollups")
