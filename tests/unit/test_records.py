"""Unit tests for message record types and size estimation."""

from repro.common.records import (
    ConsumerRecord,
    ProducerRecord,
    StoredMessage,
    TopicPartition,
    estimate_size,
)


class TestEstimateSize:
    def test_none_is_zero(self):
        assert estimate_size(None) == 0

    def test_bytes_exact(self):
        assert estimate_size(b"abcd") == 4

    def test_str_utf8(self):
        assert estimate_size("abc") == 3
        assert estimate_size("é") == 2

    def test_scalars_fixed(self):
        assert estimate_size(42) == 8
        assert estimate_size(3.14) == 8
        assert estimate_size(True) == 1

    def test_dict_recurses(self):
        assert estimate_size({"ab": "cd"}) == 2 + 2 + 2

    def test_list_recurses(self):
        assert estimate_size(["ab", "cd"]) == (2 + 1) * 2

    def test_nested(self):
        value = {"k": [1, 2]}
        assert estimate_size(value) == 1 + (8 + 1) * 2 + 2

    def test_unknown_object_nonzero(self):
        class Thing:
            pass

        assert estimate_size(Thing()) > 0


class TestProducerRecord:
    def test_defaults(self):
        record = ProducerRecord(topic="t", value={"a": 1})
        assert record.key is None
        assert record.partition is None
        assert record.headers == {}

    def test_size_counts_key_value_headers(self):
        record = ProducerRecord(
            topic="t", value="vvvv", key="kk", headers={"h": "x"}
        )
        assert record.size_bytes() == 4 + 2 + (1 + 1 + 2)


class TestStoredMessage:
    def test_size_includes_framing(self):
        message = StoredMessage(key="kk", value="vvvv", timestamp=0.0, offset=0)
        assert message.size == 2 + 4 + 24

    def test_explicit_size_preserved(self):
        message = StoredMessage(key=None, value="x", timestamp=0.0, offset=0, size=77)
        assert message.size == 77


class TestConsumerRecord:
    def test_frozen(self):
        record = ConsumerRecord("t", 0, 5, "k", "v", 1.0)
        try:
            record.offset = 6
            raised = False
        except AttributeError:
            raised = True
        assert raised

    def test_size(self):
        record = ConsumerRecord("t", 0, 5, "kk", "vvvv", 1.0)
        assert record.size == 6


class TestTopicPartition:
    def test_hashable_dict_key(self):
        d = {TopicPartition("t", 0): 1}
        assert d[TopicPartition("t", 0)] == 1

    def test_equality(self):
        assert TopicPartition("t", 1) == TopicPartition("t", 1)
        assert TopicPartition("t", 1) != TopicPartition("t", 2)
        assert TopicPartition("a", 1) != TopicPartition("b", 1)

    def test_str(self):
        assert str(TopicPartition("events", 3)) == "events-3"
