"""Unit tests for the feed registry and lineage (§3)."""

import pytest

from repro.common.errors import (
    FeedAlreadyExistsError,
    FeedNotFoundError,
    LineageError,
)
from repro.core.feeds import DERIVED, SOURCE_OF_TRUTH, FeedRegistry


def registry_with_chain() -> FeedRegistry:
    registry = FeedRegistry()
    registry.register_source("raw")
    registry.register_derived("clean", "cleaner", ["raw"], "v1")
    registry.register_derived("stats", "aggregator", ["clean"], "v1")
    return registry


class TestRegistration:
    def test_source_has_no_lineage(self):
        registry = FeedRegistry()
        feed = registry.register_source("raw")
        assert feed.kind == SOURCE_OF_TRUTH
        assert feed.lineage is None
        assert feed.is_source_of_truth

    def test_derived_records_lineage(self):
        registry = registry_with_chain()
        feed = registry.get("clean")
        assert feed.kind == DERIVED
        assert feed.lineage.produced_by == "cleaner"
        assert feed.lineage.inputs == ("raw",)

    def test_duplicate_rejected(self):
        registry = FeedRegistry()
        registry.register_source("raw")
        with pytest.raises(FeedAlreadyExistsError):
            registry.register_source("raw")
        with pytest.raises(FeedAlreadyExistsError):
            registry.register_derived("raw", "j", ["raw"])

    def test_unknown_parent_rejected(self):
        registry = FeedRegistry()
        with pytest.raises(LineageError):
            registry.register_derived("d", "j", ["ghost"])

    def test_self_derivation_rejected(self):
        registry = FeedRegistry()
        registry.register_source("raw")
        with pytest.raises(LineageError):
            registry.register_derived("d", "j", ["d"])

    def test_empty_inputs_rejected(self):
        registry = FeedRegistry()
        with pytest.raises(LineageError):
            registry.register_derived("d", "j", [])

    def test_empty_name_rejected(self):
        with pytest.raises(LineageError):
            FeedRegistry().register_source("")

    def test_unknown_feed_rejected(self):
        with pytest.raises(FeedNotFoundError):
            FeedRegistry().get("nope")


class TestQueries:
    def test_contains_and_len(self):
        registry = registry_with_chain()
        assert "raw" in registry
        assert "ghost" not in registry
        assert len(registry) == 3

    def test_sources_and_derived_split(self):
        registry = registry_with_chain()
        assert [f.name for f in registry.sources()] == ["raw"]
        assert sorted(f.name for f in registry.derived()) == ["clean", "stats"]

    def test_ancestors_ordered_sources_first(self):
        registry = registry_with_chain()
        assert registry.ancestors("stats") == ["raw", "clean"]
        assert registry.ancestors("raw") == []

    def test_provenance_chain(self):
        registry = registry_with_chain()
        chain = registry.provenance("stats")
        assert [l.produced_by for l in chain] == ["cleaner", "aggregator"]

    def test_consumers_of(self):
        registry = registry_with_chain()
        assert registry.consumers_of("raw") == ["clean"]
        assert registry.consumers_of("stats") == []

    def test_diamond_lineage(self):
        registry = FeedRegistry()
        registry.register_source("raw")
        registry.register_derived("left", "l", ["raw"])
        registry.register_derived("right", "r", ["raw"])
        registry.register_derived("joined", "j", ["left", "right"])
        ancestors = registry.ancestors("joined")
        assert ancestors[0] == "raw"
        assert set(ancestors) == {"raw", "left", "right"}

    def test_graph_structure(self):
        registry = registry_with_chain()
        graph = registry.graph()
        assert set(graph.edges()) == {("raw", "clean"), ("clean", "stats")}
        assert graph.edges[("raw", "clean")]["job"] == "cleaner"
