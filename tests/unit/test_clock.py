"""Unit tests for the simulated clock and timer queue."""

import pytest

from repro.common.clock import SimClock


class TestNow:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(start=100.0).now() == 100.0

    def test_advance_moves_time(self):
        clock = SimClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.advance(0.5)
        assert clock.now() == 1.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_backwards_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)


class TestTimers:
    def test_timer_fires_at_deadline(self):
        clock = SimClock()
        fired = []
        clock.schedule(5.0, fired.append, "a")
        clock.advance(4.9)
        assert fired == []
        clock.advance(0.2)
        assert fired == ["a"]

    def test_timer_observes_its_own_instant(self):
        clock = SimClock()
        seen = []
        clock.schedule(3.0, lambda: seen.append(clock.now()))
        clock.advance(10.0)
        assert seen == [3.0]
        assert clock.now() == 10.0

    def test_timers_fire_in_time_order(self):
        clock = SimClock()
        order = []
        clock.schedule(2.0, order.append, 2)
        clock.schedule(1.0, order.append, 1)
        clock.schedule(3.0, order.append, 3)
        clock.advance(5.0)
        assert order == [1, 2, 3]

    def test_same_instant_fires_in_schedule_order(self):
        clock = SimClock()
        order = []
        clock.schedule(1.0, order.append, "first")
        clock.schedule(1.0, order.append, "second")
        clock.advance(1.0)
        assert order == ["first", "second"]

    def test_cancelled_timer_does_not_fire(self):
        clock = SimClock()
        fired = []
        handle = clock.schedule(1.0, fired.append, "x")
        handle.cancel()
        clock.advance(2.0)
        assert fired == []

    def test_cancel_is_idempotent(self):
        clock = SimClock()
        handle = clock.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()

    def test_callback_may_schedule_more_timers(self):
        clock = SimClock()
        fired = []

        def chain():
            fired.append("a")
            clock.schedule(1.0, fired.append, "b")

        clock.schedule(1.0, chain)
        clock.advance(3.0)
        assert fired == ["a", "b"]

    def test_chained_timer_beyond_window_waits(self):
        clock = SimClock()
        fired = []
        clock.schedule(1.0, lambda: clock.schedule(5.0, fired.append, "late"))
        clock.advance(2.0)
        assert fired == []
        clock.advance(4.0)
        assert fired == ["late"]

    def test_zero_delay_fires_on_run_pending(self):
        clock = SimClock()
        fired = []
        clock.schedule(0.0, fired.append, "now")
        clock.run_pending()
        assert fired == ["now"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimClock().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute(self):
        clock = SimClock(start=10.0)
        fired = []
        clock.schedule_at(12.0, fired.append, "abs")
        clock.advance(1.0)
        assert fired == []
        clock.advance(1.0)
        assert fired == ["abs"]

    def test_schedule_at_past_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ValueError):
            clock.schedule_at(9.0, lambda: None)

    def test_advance_returns_fired_count(self):
        clock = SimClock()
        clock.schedule(1.0, lambda: None)
        clock.schedule(2.0, lambda: None)
        assert clock.advance(5.0) == 2

    def test_next_deadline(self):
        clock = SimClock()
        assert clock.next_deadline() is None
        clock.schedule(3.0, lambda: None)
        handle = clock.schedule(1.0, lambda: None)
        assert clock.next_deadline() == 1.0
        handle.cancel()
        assert clock.next_deadline() == 3.0

    def test_pending_timers_excludes_cancelled(self):
        clock = SimClock()
        clock.schedule(1.0, lambda: None)
        handle = clock.schedule(2.0, lambda: None)
        handle.cancel()
        assert clock.pending_timers() == 1

    def test_timer_args_passed_through(self):
        clock = SimClock()
        got = []
        clock.schedule(1.0, lambda a, b: got.append((a, b)), 1, "two")
        clock.advance(1.0)
        assert got == [(1, "two")]
