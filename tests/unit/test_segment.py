"""Unit tests for log segments."""

import pytest

from repro.common.errors import ConfigError
from repro.common.records import StoredMessage
from repro.storage.segment import LogSegment


def msg(offset: int, key="k", value="v", timestamp=None) -> StoredMessage:
    return StoredMessage(
        key=key,
        value=value,
        timestamp=timestamp if timestamp is not None else float(offset),
        offset=offset,
    )


class TestAppend:
    def test_append_returns_byte_positions(self):
        segment = LogSegment(0, created_at=0.0)
        p0 = segment.append(msg(0), now=0.0)
        p1 = segment.append(msg(1), now=0.0)
        assert p0 == 0
        assert p1 == msg(0).size

    def test_size_accumulates(self):
        segment = LogSegment(0, created_at=0.0)
        segment.append(msg(0), now=0.0)
        segment.append(msg(1), now=0.0)
        assert segment.size_bytes == msg(0).size + msg(1).size

    def test_sealed_rejects_append(self):
        segment = LogSegment(0, created_at=0.0)
        segment.seal()
        with pytest.raises(ConfigError):
            segment.append(msg(0), now=0.0)

    def test_non_monotonic_offset_rejected(self):
        segment = LogSegment(0, created_at=0.0)
        segment.append(msg(5), now=0.0)
        with pytest.raises(ConfigError):
            segment.append(msg(5), now=0.0)
        with pytest.raises(ConfigError):
            segment.append(msg(3), now=0.0)

    def test_gaps_allowed(self):
        # Compacted upstream segments replicate with offset gaps.
        segment = LogSegment(0, created_at=0.0)
        segment.append(msg(0), now=0.0)
        segment.append(msg(7), now=0.0)
        assert [m.offset for m in segment.messages()] == [0, 7]

    def test_negative_base_offset_rejected(self):
        with pytest.raises(ConfigError):
            LogSegment(-1, created_at=0.0)

    def test_last_append_at_tracked(self):
        segment = LogSegment(0, created_at=0.0)
        segment.append(msg(0), now=4.2)
        assert segment.last_append_at == 4.2


class TestRead:
    def test_read_from_start(self):
        segment = LogSegment(0, created_at=0.0)
        for i in range(5):
            segment.append(msg(i), now=0.0)
        got = segment.read_from(0, max_messages=3)
        assert [m.offset for m in got] == [0, 1, 2]

    def test_read_from_middle(self):
        segment = LogSegment(0, created_at=0.0)
        for i in range(5):
            segment.append(msg(i), now=0.0)
        got = segment.read_from(3, max_messages=10)
        assert [m.offset for m in got] == [3, 4]

    def test_read_skips_compacted_hole(self):
        segment = LogSegment(0, created_at=0.0)
        segment.append(msg(0), now=0.0)
        segment.append(msg(4), now=0.0)
        got = segment.read_from(2, max_messages=10)
        assert [m.offset for m in got] == [4]

    def test_read_past_end_empty(self):
        segment = LogSegment(0, created_at=0.0)
        segment.append(msg(0), now=0.0)
        assert segment.read_from(1, max_messages=10) == []

    def test_position_of(self):
        segment = LogSegment(0, created_at=0.0)
        segment.append(msg(0), now=0.0)
        segment.append(msg(1), now=0.0)
        assert segment.position_of(1) == msg(0).size
        assert segment.position_of(99) == segment.size_bytes


class TestTimestampLookup:
    def test_offset_for_timestamp(self):
        segment = LogSegment(0, created_at=0.0)
        for i in range(5):
            segment.append(msg(i, timestamp=float(i) * 10), now=0.0)
        assert segment.offset_for_timestamp(0.0) == 0
        assert segment.offset_for_timestamp(15.0) == 2
        assert segment.offset_for_timestamp(40.0) == 4

    def test_offset_for_timestamp_beyond_end(self):
        segment = LogSegment(0, created_at=0.0)
        segment.append(msg(0, timestamp=1.0), now=0.0)
        assert segment.offset_for_timestamp(2.0) is None


class TestRewrite:
    def _sealed_segment(self) -> LogSegment:
        segment = LogSegment(0, created_at=0.0)
        for i in range(4):
            segment.append(msg(i, key=f"k{i % 2}"), now=0.0)
        segment.seal()
        return segment

    def test_replace_reclaims_bytes(self):
        segment = self._sealed_segment()
        removed_bytes = sum(m.size for m in segment.messages() if m.offset < 2)
        survivors = [m for m in segment.messages() if m.offset >= 2]
        reclaimed = segment.replace_messages(survivors)
        assert reclaimed == removed_bytes
        assert [m.offset for m in segment.messages()] == [2, 3]

    def test_replace_recomputes_positions(self):
        segment = self._sealed_segment()
        survivors = list(segment.messages())[2:]
        segment.replace_messages(survivors)
        assert segment.position_of(2) == 0

    def test_replace_requires_sealed(self):
        segment = LogSegment(0, created_at=0.0)
        segment.append(msg(0), now=0.0)
        with pytest.raises(ConfigError):
            segment.replace_messages([])

    def test_replace_requires_ordered(self):
        segment = self._sealed_segment()
        messages = list(segment.messages())
        with pytest.raises(ConfigError):
            segment.replace_messages([messages[1], messages[0]])

    def test_replace_to_empty(self):
        segment = self._sealed_segment()
        segment.replace_messages([])
        assert segment.is_empty
        assert segment.size_bytes == 0
        assert segment.first_offset is None


class TestIntrospection:
    def test_keys(self):
        segment = LogSegment(0, created_at=0.0)
        segment.append(msg(0, key="a"), now=0.0)
        segment.append(msg(1, key="b"), now=0.0)
        segment.append(msg(2, key="a"), now=0.0)
        assert segment.keys() == {"a", "b"}

    def test_len(self):
        segment = LogSegment(0, created_at=0.0)
        segment.append(msg(0), now=0.0)
        assert len(segment) == 1

    def test_first_last_offsets(self):
        segment = LogSegment(10, created_at=0.0)
        segment.append(msg(10), now=0.0)
        segment.append(msg(12), now=0.0)
        assert segment.first_offset == 10
        assert segment.last_offset == 12
