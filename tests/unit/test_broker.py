"""Unit tests for brokers."""

import pytest

from repro.common.clock import SimClock
from repro.common.costmodel import DEFAULT_COST_MODEL
from repro.common.errors import (
    BrokerUnavailableError,
    ConfigError,
    PartitionNotFoundError,
)
from repro.common.records import TopicPartition
from repro.messaging.broker import Broker
from repro.messaging.topic import TopicConfig
from repro.storage.log import LogConfig
from repro.storage.retention import RetentionConfig

TP = TopicPartition("t", 0)


def make_broker(**kwargs) -> tuple[SimClock, Broker]:
    clock = SimClock()
    return clock, Broker(0, clock, DEFAULT_COST_MODEL, **kwargs)


def leader_broker(config: TopicConfig | None = None) -> tuple[SimClock, Broker]:
    clock, broker = make_broker()
    cfg = config if config is not None else TopicConfig(name="t")
    replica = broker.host_partition(TP, cfg)
    replica.become_leader(1, [0])
    return clock, broker


def entries(n):
    return [(f"k{i % 3}", {"i": i}, 0.0, {}) for i in range(n)]


class TestHosting:
    def test_host_and_lookup(self):
        _clock, broker = leader_broker()
        assert broker.hosts(TP)
        assert broker.replica(TP).partition == TP

    def test_duplicate_hosting_rejected(self):
        _clock, broker = leader_broker()
        with pytest.raises(ConfigError):
            broker.host_partition(TP, TopicConfig(name="t"))

    def test_unknown_partition_rejected(self):
        _clock, broker = make_broker()
        with pytest.raises(PartitionNotFoundError):
            broker.replica(TP)

    def test_led_partitions(self):
        _clock, broker = leader_broker()
        other = TopicPartition("t", 1)
        broker.host_partition(other, TopicConfig(name="t2"))
        assert broker.led_partitions() == [TP]


class TestRequestPaths:
    def test_produce_then_fetch_roundtrip(self):
        _clock, broker = leader_broker()
        result, latency = broker.produce(TP, entries(3))
        assert result.base_offset == 0
        assert result.last_offset == 2
        assert latency > 0
        read, fetch_latency = broker.fetch(TP, 0, max_messages=10)
        assert [m.offset for m in read.messages] == [0, 1, 2]
        assert fetch_latency > 0

    def test_offline_broker_rejects_requests(self):
        _clock, broker = leader_broker()
        broker.shutdown()
        with pytest.raises(BrokerUnavailableError):
            broker.produce(TP, entries(1))
        with pytest.raises(BrokerUnavailableError):
            broker.fetch(TP, 0)

    def test_replica_fetch_reports_position(self):
        _clock, broker = leader_broker()
        broker.produce(TP, entries(3))
        messages, leo, hw, frames = broker.replica_fetch(TP, 0, follower_id=1)
        assert len(messages) == 3
        assert leo == 3
        assert frames == []  # uncompressed produce registers no frames

    def test_metrics_recorded(self):
        _clock, broker = leader_broker()
        broker.produce(TP, entries(5))
        broker.fetch(TP, 0)
        assert broker.metrics.counter("messaging.broker.messages_in").value == 5
        assert broker.metrics.counter("messaging.broker.messages_out").value == 5


class TestMaintenance:
    def test_retention_runs_for_delete_topics(self):
        clock, broker = make_broker()
        config = TopicConfig(
            name="t",
            retention=RetentionConfig(retention_seconds=1.0),
            log=LogConfig(segment_max_messages=2),
        )
        replica = broker.host_partition(TP, config)
        replica.become_leader(1, [0])
        broker.produce(TP, entries(10))
        clock.advance(100.0)
        deleted = broker.run_retention()
        assert deleted > 0

    def test_compaction_runs_for_compact_topics(self):
        _clock, broker = make_broker()
        config = TopicConfig(
            name="t",
            cleanup_policy="compact",
            log=LogConfig(segment_max_messages=2),
        )
        replica = broker.host_partition(TP, config)
        replica.become_leader(1, [0])
        broker.produce(TP, entries(10))  # keys cycle over 3 values
        removed = broker.run_compaction()
        assert removed > 0

    def test_retention_skips_compact_topics(self):
        clock, broker = make_broker()
        config = TopicConfig(
            name="t",
            cleanup_policy="compact",
            retention=RetentionConfig(retention_seconds=1.0),
            log=LogConfig(segment_max_messages=2),
        )
        replica = broker.host_partition(TP, config)
        replica.become_leader(1, [0])
        broker.produce(TP, entries(10))
        clock.advance(100.0)
        assert broker.run_retention() == 0


class TestLifecycle:
    def test_shutdown_marks_replicas_offline(self):
        _clock, broker = leader_broker()
        broker.shutdown()
        assert broker.replica(TP).role == "offline"

    def test_restart_preserves_log_but_cools_cache(self):
        _clock, broker = leader_broker()
        broker.produce(TP, entries(5))
        assert broker.page_cache.resident_bytes() > 0
        broker.shutdown()
        assert broker.page_cache.resident_pages_of(
            broker.replica(TP).log._file_id(broker.replica(TP).log.active_segment())
        ) == 0
        broker.startup()
        assert broker.replica(TP).log_end_offset == 5  # durable log survived
        assert broker.replica(TP).role == "follower"  # must re-sync
