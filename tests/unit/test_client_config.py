"""Client construction: config objects, legacy keywords, and rejection.

The redesigned constructors accept either a frozen config dataclass or the
legacy loose keywords; both paths funnel through ``from_kwargs`` so typos
raise :class:`~repro.common.errors.ConfigError` instead of silently
configuring nothing.
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.records import TopicPartition
from repro.core.liquid import Liquid
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.config import (
    PARTITIONER_ROUND_ROBIN,
    ConsumerConfig,
    ProducerConfig,
)
from repro.messaging.consumer import Consumer
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobConfigError, StoreConfig


@pytest.fixture
def cluster():
    c = MessagingCluster(num_brokers=3)
    c.create_topic("t", num_partitions=2, replication_factor=3)
    return c


class TestProducerConfig:
    def test_defaults(self):
        config = ProducerConfig()
        assert config.acks == "leader"
        assert config.linger_messages == 1
        assert config.idempotent is False

    def test_unknown_kwarg_rejected_with_supported_list(self):
        with pytest.raises(ConfigError) as exc:
            ProducerConfig.from_kwargs(ack="all")
        assert "ack" in str(exc.value)
        assert "acks" in str(exc.value)  # the supported list names the fix

    def test_validation(self):
        with pytest.raises(ConfigError):
            ProducerConfig(linger_messages=0)
        with pytest.raises(ConfigError):
            ProducerConfig(max_retries=-1)
        with pytest.raises(ConfigError):
            ProducerConfig(retry_backoff=2.0, retry_backoff_max=1.0)
        with pytest.raises(ConfigError):
            ProducerConfig(partitioner="modulo")

    def test_callable_partitioner_allowed(self):
        config = ProducerConfig(partitioner=lambda key, n: 0)
        assert callable(config.partitioner)


class TestConsumerConfig:
    def test_defaults(self):
        config = ConsumerConfig()
        assert config.group is None
        assert config.auto_offset_reset == "earliest"
        assert config.isolation_level == "read_uncommitted"

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(ConfigError):
            ConsumerConfig.from_kwargs(offset_reset="latest")

    def test_validation(self):
        with pytest.raises(ConfigError):
            ConsumerConfig(auto_offset_reset="middle")
        with pytest.raises(ConfigError):
            ConsumerConfig(isolation_level="serializable")
        with pytest.raises(ConfigError):
            ConsumerConfig(max_poll_messages=0)


class TestProducerConstruction:
    def test_config_object(self, cluster):
        config = ProducerConfig(
            acks=ACKS_ALL, linger_messages=5, idempotent=True, client_id="c1"
        )
        producer = Producer(cluster, config=config)
        assert producer.config is config
        assert producer.acks == ACKS_ALL
        assert producer.linger_messages == 5
        assert producer.idempotent is True
        assert producer.client_id == "c1"

    def test_legacy_kwargs_equivalent(self, cluster):
        legacy = Producer(cluster, acks=ACKS_ALL, linger_messages=5)
        typed = Producer(
            cluster, config=ProducerConfig(acks=ACKS_ALL, linger_messages=5)
        )
        assert legacy.config == typed.config

    def test_unknown_kwarg_raises(self, cluster):
        with pytest.raises(ConfigError):
            Producer(cluster, lingering_messages=5)

    def test_config_xor_kwargs(self, cluster):
        with pytest.raises(ConfigError):
            Producer(cluster, config=ProducerConfig(), acks=ACKS_ALL)

    def test_shared_config_between_clients(self, cluster):
        config = ProducerConfig(partitioner=PARTITIONER_ROUND_ROBIN)
        a = Producer(cluster, config=config)
        b = Producer(cluster, config=config)
        assert a.config is b.config
        assert a.producer_id != b.producer_id  # identity stays per-client

    def test_configured_producer_sends(self, cluster):
        producer = Producer(cluster, config=ProducerConfig(acks=ACKS_ALL))
        ack = producer.send("t", {"x": 1}, key="k")
        assert ack is not None and ack.base_offset == 0


class TestConsumerConstruction:
    def test_config_object(self, cluster):
        config = ConsumerConfig(max_poll_messages=7, auto_offset_reset="latest")
        consumer = Consumer(cluster, config=config)
        assert consumer.config is config
        assert consumer.max_poll_messages == 7
        assert consumer.auto_offset_reset == "latest"

    def test_unknown_kwarg_raises(self, cluster):
        with pytest.raises(ConfigError):
            Consumer(cluster, max_poll=7)

    def test_config_xor_kwargs(self, cluster):
        with pytest.raises(ConfigError):
            Consumer(cluster, config=ConsumerConfig(), max_poll_messages=7)

    def test_group_config_requires_coordinator(self, cluster):
        with pytest.raises(ConfigError):
            Consumer(cluster, config=ConsumerConfig(group="g"))

    def test_configured_consumer_polls(self, cluster):
        Producer(cluster).send("t", "v", partition=0)
        cluster.run_until_replicated()
        consumer = Consumer(cluster, config=ConsumerConfig(max_poll_messages=10))
        consumer.assign([TopicPartition("t", 0)])
        assert [r.value for r in consumer.poll()] == ["v"]


class TestLiquidFactories:
    def test_producer_accepts_config(self):
        liquid = Liquid(num_brokers=1)
        liquid.create_feed("f", partitions=1)
        producer = liquid.producer(config=ProducerConfig(client_id="team-a"))
        assert producer.client_id == "team-a"

    def test_consumer_accepts_config_and_group_argument_wins(self):
        liquid = Liquid(num_brokers=1)
        liquid.create_feed("f", partitions=1)
        consumer = liquid.consumer(
            group="readers", config=ConsumerConfig(max_poll_messages=3)
        )
        assert consumer.group == "readers"
        assert consumer.max_poll_messages == 3
        assert consumer.group_coordinator is liquid.group_coordinator

    def test_consumer_group_from_config_alone(self):
        liquid = Liquid(num_brokers=1)
        liquid.create_feed("f", partitions=1)
        consumer = liquid.consumer(config=ConsumerConfig(group="readers"))
        assert consumer.group == "readers"
        assert consumer.group_coordinator is liquid.group_coordinator

    def test_legacy_kwargs_still_work(self):
        liquid = Liquid(num_brokers=1)
        liquid.create_feed("f", partitions=1)
        producer = liquid.producer(linger_messages=4)
        assert producer.linger_messages == 4
        with pytest.raises(ConfigError):
            liquid.producer(linger=4)

    def test_legacy_kwargs_warn_once_per_factory(self, monkeypatch):
        import repro.core.liquid as liquid_module

        monkeypatch.setattr(liquid_module, "_LEGACY_KWARGS_WARNED", set())
        liquid = Liquid(num_brokers=1)
        liquid.create_feed("f", partitions=1)
        with pytest.warns(DeprecationWarning, match="ProducerConfig"):
            liquid.producer(linger_messages=4)
        with pytest.warns(DeprecationWarning, match="ConsumerConfig"):
            liquid.consumer(max_poll_messages=3)
        # The notice is one-shot: a second legacy call stays silent.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            liquid.producer(linger_messages=2)
            liquid.consumer(max_poll_messages=5)

    def test_config_objects_do_not_warn(self, monkeypatch):
        import repro.core.liquid as liquid_module
        import warnings as warnings_module

        monkeypatch.setattr(liquid_module, "_LEGACY_KWARGS_WARNED", set())
        liquid = Liquid(num_brokers=1)
        liquid.create_feed("f", partitions=1)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            liquid.producer(config=ProducerConfig(linger_messages=4))
            liquid.consumer(config=ConsumerConfig(max_poll_messages=3))


class TestJobConfigParity:
    """Job-layer configs reject unknown keywords like the client configs."""

    def test_job_config_from_kwargs_unknown_rejected(self):
        with pytest.raises(ConfigError) as exc:
            JobConfig.from_kwargs(
                name="j", inputs=["in"], task_factory=object, standby_replicas=2
            )
        assert "standby_replicas" in str(exc.value)
        assert "num_standby_replicas" in str(exc.value)  # names the fix

    def test_job_config_from_kwargs_roundtrip(self):
        config = JobConfig.from_kwargs(
            name="j", inputs=["in"], task_factory=object, num_standby_replicas=2
        )
        assert config.num_standby_replicas == 2

    def test_store_config_from_kwargs_unknown_rejected(self):
        with pytest.raises(ConfigError) as exc:
            StoreConfig.from_kwargs(name="table", kind="lsm")
        assert "kind" in str(exc.value)
        assert "store_type" in str(exc.value)

    def test_store_config_validation(self):
        with pytest.raises(JobConfigError):
            StoreConfig(name="")
        with pytest.raises(JobConfigError):
            StoreConfig(name="table", store_type="rocksdb")
        assert StoreConfig.from_kwargs(name="t", store_type="lsm").store_type == "lsm"

    def test_negative_standby_replicas_rejected(self):
        with pytest.raises(JobConfigError):
            JobConfig(
                name="j", inputs=["in"], task_factory=object,
                num_standby_replicas=-1,
            )
