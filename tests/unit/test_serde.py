"""Unit tests for serializers."""

import pytest

from repro.common.errors import SerdeError
from repro.common.serde import (
    BytesSerde,
    IntSerde,
    JsonSerde,
    NoopSerde,
    StringSerde,
    serde_by_name,
)


class TestBytesSerde:
    def test_roundtrip(self):
        serde = BytesSerde()
        assert serde.deserialize(serde.serialize(b"xyz")) == b"xyz"

    def test_bytearray_accepted(self):
        assert BytesSerde().serialize(bytearray(b"ab")) == b"ab"

    def test_wrong_type_rejected(self):
        with pytest.raises(SerdeError):
            BytesSerde().serialize("not bytes")


class TestStringSerde:
    def test_roundtrip(self):
        serde = StringSerde()
        assert serde.deserialize(serde.serialize("héllo")) == "héllo"

    def test_wrong_type_rejected(self):
        with pytest.raises(SerdeError):
            StringSerde().serialize(123)

    def test_invalid_utf8_rejected(self):
        with pytest.raises(SerdeError):
            StringSerde().deserialize(b"\xff\xfe")


class TestIntSerde:
    @pytest.mark.parametrize("value", [0, 1, -1, 2**62, -(2**62)])
    def test_roundtrip(self, value):
        serde = IntSerde()
        assert serde.deserialize(serde.serialize(value)) == value

    def test_fixed_width(self):
        assert len(IntSerde().serialize(5)) == 8

    def test_bool_rejected(self):
        with pytest.raises(SerdeError):
            IntSerde().serialize(True)

    def test_overflow_rejected(self):
        with pytest.raises(SerdeError):
            IntSerde().serialize(2**64)

    def test_wrong_length_rejected(self):
        with pytest.raises(SerdeError):
            IntSerde().deserialize(b"abc")


class TestJsonSerde:
    def test_roundtrip_dict(self):
        serde = JsonSerde()
        value = {"b": [1, 2], "a": {"nested": True}}
        assert serde.deserialize(serde.serialize(value)) == value

    def test_deterministic_key_order(self):
        serde = JsonSerde()
        assert serde.serialize({"b": 1, "a": 2}) == serde.serialize({"a": 2, "b": 1})

    def test_unserializable_rejected(self):
        with pytest.raises(SerdeError):
            JsonSerde().serialize(object())

    def test_invalid_json_rejected(self):
        with pytest.raises(SerdeError):
            JsonSerde().deserialize(b"{nope")


class TestNoopSerde:
    def test_identity(self):
        serde = NoopSerde()
        thing = object()
        assert serde.serialize(thing) is thing
        assert serde.deserialize(thing) is thing


class TestLookup:
    @pytest.mark.parametrize("name", ["bytes", "string", "int", "json", "noop"])
    def test_known_names(self, name):
        assert serde_by_name(name) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(SerdeError):
            serde_by_name("protobuf")
