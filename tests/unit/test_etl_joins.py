"""Unit tests for the dedup and join ETL tasks."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.common.records import ConsumerRecord
from repro.core.etl import (
    DeduplicateTask,
    StreamTableJoinTask,
    WindowedStreamJoinTask,
)
from repro.processing.state import KeyValueState
from repro.processing.store import InMemoryStore
from repro.processing.task import MessageCollector, TaskContext


def make_context(store_names):
    stores = {name: KeyValueState(name, InMemoryStore()) for name in store_names}
    return TaskContext("test", 0, SimClock(), stores), stores


def record(topic, value, key="k", timestamp=1.0, offset=0):
    return ConsumerRecord(topic, 0, offset, key, value, timestamp)


class TestDeduplicateTask:
    def _task(self, **kwargs):
        task = DeduplicateTask("out", **kwargs)
        context, _stores = make_context(["seen"])
        task.init(context)
        return task

    def test_first_occurrence_forwarded(self):
        task = self._task()
        collector = MessageCollector()
        task.process(record("in", {"v": 1}, key="a"), collector)
        assert len(collector.drain()) == 1

    def test_duplicate_key_dropped(self):
        task = self._task()
        collector = MessageCollector()
        task.process(record("in", {"v": 1}, key="a", timestamp=1.0), collector)
        task.process(record("in", {"v": 1}, key="a", timestamp=2.0), collector)
        assert len(collector.drain()) == 1
        assert task.duplicates_dropped == 1

    def test_custom_id_function(self):
        task = self._task(id_fn=lambda v: v["request_id"])
        collector = MessageCollector()
        task.process(record("in", {"request_id": "r1"}, key="a"), collector)
        task.process(record("in", {"request_id": "r1"}, key="b"), collector)
        task.process(record("in", {"request_id": "r2"}, key="a"), collector)
        assert len(collector.drain()) == 2

    def test_expired_id_passes_again(self):
        task = self._task(ttl_seconds=10.0)
        collector = MessageCollector()
        task.process(record("in", 1, key="a", timestamp=0.0), collector)
        task.process(record("in", 1, key="a", timestamp=11.0), collector)
        assert len(collector.drain()) == 2

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ConfigError):
            DeduplicateTask("out", ttl_seconds=0)

    def test_at_least_once_stream_deduplicated(self):
        """The paper's §4.3 story: keyed idempotent consumption makes
        at-least-once delivery exact."""
        task = self._task(id_fn=lambda v: v["seq"])
        collector = MessageCollector()
        delivered = [0, 1, 2, 2, 3, 1, 4, 4, 4, 5]  # retries duplicated
        for i, seq in enumerate(delivered):
            task.process(
                record("in", {"seq": seq}, key=f"k{seq}", timestamp=float(i)),
                collector,
            )
        values = [e.value["seq"] for e in collector.drain()]
        assert values == [0, 1, 2, 3, 4, 5]


class TestStreamTableJoinTask:
    def _task(self, **kwargs):
        defaults = dict(
            output="out",
            table_topic="table",
            join_key=lambda v: v["ref"],
            merge=lambda stream, table: {**stream, **table},
        )
        defaults.update(kwargs)
        task = StreamTableJoinTask(**defaults)
        context, stores = make_context(["table"])
        task.init(context)
        return task, stores

    def test_table_records_populate_state(self):
        task, stores = self._task()
        collector = MessageCollector()
        task.process(record("table", {"region": "eu"}, key="r1"), collector)
        assert collector.drain() == []
        assert stores["table"].get("r1") == {"region": "eu"}

    def test_stream_records_join(self):
        task, _stores = self._task()
        collector = MessageCollector()
        task.process(record("table", {"region": "eu"}, key="r1"), collector)
        task.process(record("stream", {"ref": "r1", "x": 1}, key="k"), collector)
        emits = collector.drain()
        assert emits[0].value == {"ref": "r1", "x": 1, "region": "eu"}

    def test_unmatched_dropped_by_default(self):
        task, _stores = self._task()
        collector = MessageCollector()
        task.process(record("stream", {"ref": "ghost"}, key="k"), collector)
        assert collector.drain() == []
        assert task.unmatched == 1

    def test_unmatched_forwarded_when_asked(self):
        task, _stores = self._task(emit_unmatched=True)
        collector = MessageCollector()
        task.process(record("stream", {"ref": "ghost"}, key="k"), collector)
        assert len(collector.drain()) == 1

    def test_tombstone_deletes_table_row(self):
        task, stores = self._task()
        collector = MessageCollector()
        task.process(record("table", {"region": "eu"}, key="r1"), collector)
        task.process(record("table", None, key="r1"), collector)
        assert stores["table"].get("r1") is None
        task.process(record("stream", {"ref": "r1"}, key="k"), collector)
        assert collector.drain() == []

    def test_table_update_changes_subsequent_joins(self):
        task, _stores = self._task()
        collector = MessageCollector()
        task.process(record("table", {"region": "eu"}, key="r1"), collector)
        task.process(record("stream", {"ref": "r1"}, key="k"), collector)
        task.process(record("table", {"region": "us"}, key="r1"), collector)
        task.process(record("stream", {"ref": "r1"}, key="k"), collector)
        regions = [e.value["region"] for e in collector.drain()]
        assert regions == ["eu", "us"]


class TestWindowedStreamJoinTask:
    def _task(self, window=10.0):
        task = WindowedStreamJoinTask(
            output="out",
            left_topic="clicks",
            right_topic="views",
            merge=lambda left, right: {"click": left, "view": right},
            window_seconds=window,
        )
        context, _stores = make_context(["buffers"])
        task.init(context)
        return task

    def test_pair_within_window_joins(self):
        task = self._task()
        collector = MessageCollector()
        task.process(record("views", {"page": "p"}, key="u1", timestamp=1.0), collector)
        task.process(record("clicks", {"btn": "b"}, key="u1", timestamp=5.0), collector)
        emits = collector.drain()
        assert len(emits) == 1
        assert emits[0].value == {"click": {"btn": "b"}, "view": {"page": "p"}}

    def test_sides_are_order_independent(self):
        task = self._task()
        collector = MessageCollector()
        task.process(record("clicks", "c", key="u1", timestamp=1.0), collector)
        task.process(record("views", "v", key="u1", timestamp=2.0), collector)
        emits = collector.drain()
        assert emits[0].value == {"click": "c", "view": "v"}

    def test_outside_window_no_join(self):
        task = self._task(window=10.0)
        collector = MessageCollector()
        task.process(record("views", "v", key="u1", timestamp=1.0), collector)
        task.process(record("clicks", "c", key="u1", timestamp=20.0), collector)
        assert collector.drain() == []

    def test_keys_do_not_cross_join(self):
        task = self._task()
        collector = MessageCollector()
        task.process(record("views", "v", key="u1", timestamp=1.0), collector)
        task.process(record("clicks", "c", key="u2", timestamp=2.0), collector)
        assert collector.drain() == []

    def test_multiple_matches_all_emitted(self):
        task = self._task()
        collector = MessageCollector()
        task.process(record("views", "v1", key="u1", timestamp=1.0), collector)
        task.process(record("views", "v2", key="u1", timestamp=2.0), collector)
        task.process(record("clicks", "c", key="u1", timestamp=3.0), collector)
        emits = collector.drain()
        assert {e.value["view"] for e in emits} == {"v1", "v2"}

    def test_old_buffers_garbage_collected(self):
        task = self._task(window=5.0)
        collector = MessageCollector()
        for i in range(20):
            task.process(
                record("views", f"v{i}", key="u1", timestamp=float(i)), collector
            )
        task.process(record("clicks", "c", key="u1", timestamp=20.0), collector)
        emits = collector.drain()
        # Only views within [15, 20] survive the GC to join.
        assert {e.value["view"] for e in emits} == {"v15", "v16", "v17", "v18", "v19"}

    def test_unexpected_topic_rejected(self):
        task = self._task()
        with pytest.raises(ConfigError):
            task.process(record("other", "x", key="u1"), MessageCollector())

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigError):
            WindowedStreamJoinTask(
                "out", "l", "r", merge=lambda a, b: None, window_seconds=0
            )
