"""Unit tests for the self-monitoring metrics publisher."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.tools.metrics_feed import METRICS_FEED, MetricsPublisher


def make_cluster() -> MessagingCluster:
    cluster = MessagingCluster(num_brokers=2, clock=SimClock())
    cluster.create_topic("app-events", replication_factor=2)
    producer = Producer(cluster)
    for i in range(20):
        producer.send("app-events", {"i": i})
    cluster.tick(0.0)
    return cluster


class TestSnapshot:
    def test_snapshot_covers_cluster_and_broker_metrics(self):
        cluster = make_cluster()
        publisher = MetricsPublisher(cluster)
        records = publisher.snapshot()
        names = {r["metric"] for r in records}
        assert "cluster.brokers" in names
        assert any(name.startswith("messaging.broker.") for name in names)
        assert all("value" in r and "timestamp" in r for r in records)

    def test_group_lag_included(self):
        cluster = make_cluster()
        cluster.offset_manager.commit(
            "dash", TopicPartition("app-events", 0), 5
        )
        publisher = MetricsPublisher(cluster)
        names = {r["metric"] for r in publisher.snapshot()}
        assert "group_lag.dash" in names


class TestPublishing:
    def test_publish_once_writes_to_the_feed(self):
        cluster = make_cluster()
        publisher = MetricsPublisher(cluster)
        count = publisher.publish_once()
        cluster.tick(0.0)
        result = cluster.fetch(METRICS_FEED, 0, 0, max_messages=10_000)
        assert len(result.records) == count
        assert publisher.snapshots_published == 1

    def test_metrics_feed_created_on_demand(self):
        cluster = make_cluster()
        MetricsPublisher(cluster, feed="ops-metrics-feed")
        assert "ops-metrics-feed" in cluster.topics()

    def test_scheduled_publication_follows_the_clock(self):
        cluster = make_cluster()
        publisher = MetricsPublisher(cluster, interval=10.0)
        publisher.start()
        cluster.clock.advance(35.0)
        assert publisher.snapshots_published == 3
        publisher.stop()
        cluster.clock.advance(50.0)
        assert publisher.snapshots_published == 3

    def test_metrics_are_consumable_like_any_feed(self):
        """The §5.1 point: a new metric is just another produced record."""
        cluster = make_cluster()
        publisher = MetricsPublisher(cluster)
        publisher.publish_once()
        cluster.tick(0.0)
        result = cluster.fetch(METRICS_FEED, 0, 0, max_messages=10_000)
        in_rates = [
            r.value for r in result.records
            if r.value["metric"] == "messaging.cluster.messages_in"
        ]
        assert in_rates and in_rates[0]["value"] >= 20

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigError):
            MetricsPublisher(make_cluster(), interval=0)
