"""Unit tests for tiered log storage (archive-before-delete, §2.2/§4.1)."""

import pytest

from repro.common.clock import SimClock
from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import (
    ConfigError,
    ObjectNotFoundError,
    OffsetOutOfRangeError,
)
from repro.common.records import TopicPartition
from repro.baselines.dfs import SimulatedDFS
from repro.messaging.cluster import MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.topic import CLEANUP_COMPACT, TopicConfig
from repro.storage.log import LogConfig, PartitionLog
from repro.storage.pagecache import PageCache
from repro.storage.retention import RetentionConfig, RetentionEnforcer
from repro.storage.tiered import (
    COLD_FILE_PREFIX,
    ArchivedSegment,
    ColdReader,
    ColdTier,
    DfsObjectStore,
    InMemoryObjectStore,
    SegmentArchiver,
    TierManifest,
    TieredConfig,
)
from repro.tools.admin import AdminClient


def entry(first, last, key=None, ts0=0.0, ts1=None, size=100):
    return ArchivedSegment(
        base_offset=first,
        first_offset=first,
        last_offset=last,
        message_count=last - first + 1,
        size_bytes=size,
        object_key=key if key is not None else f"t/0/{first:020d}",
        first_timestamp=ts0,
        last_timestamp=ts1 if ts1 is not None else float(last),
        archived_at=100.0,
    )


def filled_log(clock, n=20, per_segment=5, page_cache=None):
    log = PartitionLog(
        "t-0",
        LogConfig(segment_max_messages=per_segment),
        clock=clock,
        page_cache=page_cache,
    )
    for i in range(n):
        log.append(f"k{i}", f"v{i}", timestamp=clock.now())
        clock.advance(1.0)
    return log


def tiered_fixture(clock=None, n=20, per_segment=5, **tier_kwargs):
    """A log whose sealed segments were archived then retention-deleted."""
    clock = clock if clock is not None else SimClock()
    log = filled_log(clock, n=n, per_segment=per_segment)
    store = InMemoryObjectStore()
    tier = ColdTier(log, store, namespace="t/0", config=TieredConfig(**tier_kwargs))
    enforcer = RetentionEnforcer(
        RetentionConfig(retention_seconds=1.0), clock, archiver=tier.archiver
    )
    result = enforcer.enforce(log)
    return log, store, tier, result


class TestConfig:
    def test_defaults(self):
        assert TieredConfig().hydration_cache_bytes > 0

    def test_invalid_cache_size_rejected(self):
        with pytest.raises(ConfigError):
            TieredConfig(hydration_cache_bytes=0)

    def test_tiered_compacted_topic_rejected(self):
        with pytest.raises(ConfigError):
            TopicConfig(
                name="t",
                cleanup_policy=CLEANUP_COMPACT,
                tiered=TieredConfig(),
            )


class TestManifest:
    def test_add_and_lookup(self):
        m = TierManifest()
        m.add(entry(0, 4))
        m.add(entry(5, 9))
        assert m.entry_for(0).first_offset == 0
        assert m.entry_for(3).first_offset == 0
        assert m.entry_for(5).first_offset == 5
        assert m.entry_for(9).first_offset == 5
        assert m.entry_for(10) is None

    def test_lookup_in_hole_returns_next_forward(self):
        m = TierManifest()
        m.add(entry(0, 4))
        m.add(entry(8, 12))  # compaction punched offsets 5..7
        assert m.entry_for(6).first_offset == 8

    def test_lookup_before_start_returns_first(self):
        m = TierManifest()
        m.add(entry(10, 14))
        assert m.entry_for(3).first_offset == 10

    def test_rejects_out_of_order_ranges(self):
        m = TierManifest()
        m.add(entry(5, 9))
        with pytest.raises(ConfigError):
            m.add(entry(0, 4))
        with pytest.raises(ConfigError):
            m.add(entry(9, 12))  # overlaps

    def test_rejects_duplicate_object_key(self):
        m = TierManifest()
        m.add(entry(0, 4, key="dup"))
        with pytest.raises(ConfigError):
            m.add(entry(5, 9, key="dup"))

    def test_totals(self):
        m = TierManifest()
        assert m.is_empty
        assert m.start_offset is None and m.end_offset is None
        m.add(entry(0, 4, size=10))
        m.add(entry(5, 9, size=20))
        assert (m.start_offset, m.end_offset) == (0, 10)
        assert m.segment_count == 2
        assert m.total_bytes == 30
        assert m.total_messages == 10

    def test_timestamp_lookup(self):
        m = TierManifest()
        m.add(entry(0, 4, ts0=0.0, ts1=4.0))
        m.add(entry(5, 9, ts0=5.0, ts1=9.0))
        assert m.entry_for_timestamp(3.0).first_offset == 0
        assert m.entry_for_timestamp(6.0).first_offset == 5
        assert m.entry_for_timestamp(100.0) is None

    def test_invalid_entry_rejected(self):
        with pytest.raises(ConfigError):
            ArchivedSegment(
                base_offset=5,
                first_offset=4,
                last_offset=9,
                message_count=5,
                size_bytes=1,
                object_key="k",
                first_timestamp=0.0,
                last_timestamp=1.0,
                archived_at=0.0,
            )


class TestObjectStores:
    @pytest.fixture(params=["memory", "dfs"])
    def store(self, request):
        if request.param == "memory":
            return InMemoryObjectStore()
        dfs = SimulatedDFS(clock=SimClock())
        return DfsObjectStore(dfs)

    def test_put_get_roundtrip(self, store):
        put = store.put("a/1", ["r0", "r1"], 64)
        assert put.created and put.size_bytes > 0 and put.latency > 0
        got = store.get("a/1")
        assert got.records == ["r0", "r1"]
        assert got.latency >= DEFAULT_COST_MODEL.cold_fetch_overhead

    def test_idempotent_put_is_free_noop(self, store):
        store.put("a/1", ["r0"], 32)
        again = store.put("a/1", ["DIFFERENT"], 32)
        assert not again.created
        assert again.latency == 0.0
        assert store.get("a/1").records == ["r0"]  # first write wins

    def test_missing_key_raises(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.get("nope")
        with pytest.raises(ObjectNotFoundError):
            store.delete("nope")
        with pytest.raises(ObjectNotFoundError):
            store.size_of("nope")

    def test_list_prefix_and_delete(self, store):
        store.put("t/0/b", ["x"], 1)
        store.put("t/0/a", ["x"], 1)
        store.put("t/1/c", ["x"], 1)
        assert store.list_prefix("t/0/") == ["t/0/a", "t/0/b"]
        store.delete("t/0/a")
        assert store.list_prefix("t/0/") == ["t/0/b"]
        assert not store.exists("t/0/a")

    def test_total_stored_bytes(self):
        store = InMemoryObjectStore()
        store.put("a", ["x"], 10)
        store.put("b", ["x"], 15)
        assert store.total_stored_bytes() == 25


class TestArchiver:
    def test_archives_sealed_segments(self):
        clock = SimClock()
        log = filled_log(clock)
        store = InMemoryObjectStore()
        manifest = TierManifest()
        archiver = SegmentArchiver(store, manifest, "t/0", clock)
        for segment in log.sealed_segments():
            result = archiver.archive(segment)
            assert result.archived and not result.deduplicated
            assert result.latency > 0
        assert manifest.segment_count == 3
        assert (manifest.start_offset, manifest.end_offset) == (0, 15)
        assert store.total_stored_bytes() == manifest.total_bytes

    def test_replica_duplicate_upload_dedupes(self):
        """Two replicas archiving the same segment upload it once."""
        clock = SimClock()
        store = InMemoryObjectStore()
        logs = [filled_log(SimClock()) for _ in range(2)]
        results = []
        for log in logs:  # same namespace: keys carry no broker id
            archiver = SegmentArchiver(store, TierManifest(), "t/0", clock)
            results.append(archiver.archive(log.sealed_segments()[0]))
        assert results[0].archived and not results[0].deduplicated
        assert results[1].archived and results[1].deduplicated
        assert results[1].latency == 0.0
        assert store.puts == 1

    def test_empty_segment_skipped(self):
        clock = SimClock()
        log = filled_log(clock)
        segment = log.sealed_segments()[0]
        segment.replace_messages([])  # fully compacted away
        archiver = SegmentArchiver(
            InMemoryObjectStore(), TierManifest(), "t/0", clock
        )
        result = archiver.archive(segment)
        assert not result.archived


class TestRetentionArchiving:
    def test_archive_before_delete(self):
        log, store, tier, result = tiered_fixture()
        assert result.segments_archived == result.segments_deleted == 3
        assert result.bytes_archived == result.bytes_deleted
        assert result.archive_latency > 0
        assert log.log_start_offset == 15
        assert tier.manifest.end_offset == 15  # no gap between tiers

    def test_without_archiver_data_is_simply_deleted(self):
        clock = SimClock()
        log = filled_log(clock)
        enforcer = RetentionEnforcer(RetentionConfig(retention_seconds=1.0), clock)
        result = enforcer.enforce(log)
        assert result.segments_archived == 0
        assert result.bytes_archived == 0

    def test_empty_sealed_segment_expired_by_policy(self):
        """A sealed segment with last_timestamp None is immediately expired
        (nothing to retain) and never archived (nothing to archive)."""
        clock = SimClock()
        log = filled_log(clock, n=10, per_segment=5)
        log.sealed_segments()[0].replace_messages([])
        store = InMemoryObjectStore()
        tier = ColdTier(log, store, namespace="t/0")
        # Huge window: only the empty husk is expired.
        enforcer = RetentionEnforcer(
            RetentionConfig(retention_seconds=1e9), clock, archiver=tier.archiver
        )
        result = enforcer.enforce(log)
        assert result.segments_deleted == 1
        assert result.messages_deleted == 0
        assert result.segments_archived == 0
        assert store.puts == 0

    def test_empty_segment_does_not_block_head_scan(self):
        clock = SimClock()
        log = filled_log(clock, n=15, per_segment=5)
        clock.advance(1000.0)
        log.sealed_segments()[0].replace_messages([])
        enforcer = RetentionEnforcer(RetentionConfig(retention_seconds=1.0), clock)
        result = enforcer.enforce(log)
        # The empty head husk AND the expired segments behind it all go.
        assert result.segments_deleted == 2
        assert log.log_start_offset == 10


class TestColdReader:
    def test_reads_archived_history(self):
        log, store, tier, _ = tiered_fixture()
        result = tier.reader.read(0, max_messages=100)
        assert [m.offset for m in result.messages] == list(range(15))
        assert [m.value for m in result.messages] == [f"v{i}" for i in range(15)]
        assert result.next_offset == 15

    def test_first_touch_pays_cold_fetch(self):
        log, store, tier, _ = tiered_fixture()
        first = tier.reader.read(0, max_messages=5)
        assert first.latency >= DEFAULT_COST_MODEL.cold_fetch_overhead
        again = tier.reader.read(0, max_messages=5)
        assert again.latency < DEFAULT_COST_MODEL.cold_fetch_overhead
        assert tier.reader.hits == 1 and tier.reader.misses == 1
        assert tier.reader.hit_ratio == 0.5

    def test_byte_budget_delivers_at_least_one_record(self):
        log, store, tier, _ = tiered_fixture()
        result = tier.reader.read(0, max_messages=100, max_bytes=1)
        assert len(result.messages) == 1
        assert result.messages[0].offset == 0

    def test_read_below_archive_start_raises(self):
        log, store, tier, _ = tiered_fixture()
        # Simulate an archive that itself was trimmed: rebuild from offset 5.
        reader = tier.reader
        reader.manifest._entries = reader.manifest._entries[1:]
        reader.manifest._firsts = reader.manifest._firsts[1:]
        with pytest.raises(OffsetOutOfRangeError):
            reader.read(0)

    def test_hydration_cache_evicts_lru_under_cap(self):
        # Cap below two segments: the oldest hydration is evicted.
        log, store, tier, _ = tiered_fixture(hydration_cache_bytes=1)
        tier.reader.read(0, max_messages=5)
        assert tier.reader.hydrated_segments == 1
        tier.reader.read(5, max_messages=5)
        assert tier.reader.hydrated_segments == 1  # segment 0 evicted
        tier.reader.read(0, max_messages=5)  # re-fetches: a miss again
        assert tier.reader.misses == 3

    def test_eviction_keeps_segment_being_served(self):
        log, store, tier, _ = tiered_fixture(hydration_cache_bytes=1)
        result = tier.reader.read(0, max_messages=100)
        assert len(result.messages) == 15  # scan completes despite tiny cap
        assert tier.reader.hydrated_segments == 1

    def test_drop_cache(self):
        log, store, tier, _ = tiered_fixture()
        tier.reader.read(0, max_messages=100)
        assert tier.reader.hydrated_bytes > 0
        tier.reader.drop_cache()
        assert tier.reader.hydrated_segments == 0
        assert tier.reader.hydrated_bytes == 0

    def test_offset_for_timestamp(self):
        log, store, tier, _ = tiered_fixture()
        assert tier.reader.offset_for_timestamp(0.0) == 0
        assert tier.reader.offset_for_timestamp(7.5) == 8
        assert tier.reader.offset_for_timestamp(1e9) is None


class TestHydrationPageCache:
    def test_install_records_residency_without_charge(self):
        cache = PageCache(clock=SimClock(), capacity_bytes=1 << 20)
        inserted = cache.install("!cold/t/0", 0, 10_000)
        assert inserted > 0
        assert cache.is_resident("!cold/t/0", 0, 10_000)
        # Resident pages serve at RAM speed.
        latency = cache.read("!cold/t/0", 0, 10_000)
        assert latency < DEFAULT_COST_MODEL.disk_seek_time

    def test_install_is_idempotent(self):
        cache = PageCache(clock=SimClock(), capacity_bytes=1 << 20)
        cache.install("f", 0, 8192)
        assert cache.install("f", 0, 8192) == 0

    def test_cold_pages_evicted_before_hot_ones(self):
        """Anti-caching: '!cold/...' sorts before hot file ids, so backfill
        pages are the first casualties when the cache fills."""
        model = DEFAULT_COST_MODEL
        cache = PageCache(
            clock=SimClock(), capacity_bytes=4 * model.page_size
        )
        cache.install(COLD_FILE_PREFIX + "t/0", 0, 2 * model.page_size)
        cache.write("broker-0/t-0/5", 0, 4 * model.page_size)
        assert cache.resident_pages_of(COLD_FILE_PREFIX + "t/0") == 0
        assert cache.resident_pages_of("broker-0/t-0/5") == 4


class TestColdTier:
    def test_read_through_stitches_cold_into_hot(self):
        log, store, tier, _ = tiered_fixture()
        result = tier.read_through(0, max_messages=1000)
        assert [m.offset for m in result.messages] == list(range(20))
        assert result.log_end_offset == 20
        assert result.next_offset == 20

    def test_read_through_hot_only_path(self):
        log, store, tier, _ = tiered_fixture()
        result = tier.read_through(16, max_messages=10)
        assert [m.offset for m in result.messages] == [16, 17, 18, 19]
        assert tier.reader.misses == 0  # archive untouched

    def test_read_through_below_earliest_raises_typed_error(self):
        log, store, tier, _ = tiered_fixture()
        with pytest.raises(OffsetOutOfRangeError) as exc_info:
            tier.read_through(-1)
        assert exc_info.value.requested == -1
        assert exc_info.value.log_start == 0

    def test_earliest_offset_spans_tiers(self):
        log, store, tier, _ = tiered_fixture()
        assert log.log_start_offset == 15
        assert tier.earliest_offset == 0

    def test_offset_for_timestamp_spans_tiers(self):
        log, store, tier, _ = tiered_fixture()
        assert tier.offset_for_timestamp(2.0) == 2  # archived
        assert tier.offset_for_timestamp(17.0) == 17  # hot

    def test_stats(self):
        log, store, tier, _ = tiered_fixture()
        tier.read_through(0, max_messages=1000)
        stats = tier.stats()
        assert stats["archived_segments"] == 3
        assert stats["archived_bytes"] > 0
        assert stats["archived_start_offset"] == 0
        assert stats["archived_end_offset"] == 15
        assert stats["cold_misses"] == 3


def make_tiered_cluster(retention_seconds=5.0, tiered=True, num_brokers=3):
    cluster = MessagingCluster(num_brokers=num_brokers, maintenance_interval=1.0)
    cluster.create_topic(
        TopicConfig(
            name="events",
            num_partitions=1,
            replication_factor=num_brokers,
            retention=RetentionConfig(retention_seconds=retention_seconds),
            log=LogConfig(segment_max_messages=5),
            tiered=TieredConfig() if tiered else None,
        )
    )
    return cluster


def produce_and_expire(cluster, n=23):
    for i in range(n):
        cluster.produce("events", 0, [(f"k{i}", f"v{i}", None, {})], acks="all")
        cluster.tick(1.0)
    cluster.run_until_replicated()
    for _ in range(10):
        cluster.tick(1.0)
    return TopicPartition("events", 0)


class TestClusterIntegration:
    def test_fetch_below_log_start_serves_from_archive(self):
        cluster = make_tiered_cluster()
        tp = produce_and_expire(cluster)
        leader = cluster._leader_replica(tp)
        assert leader.log.log_start_offset > 0  # retention really truncated
        result = cluster.fetch("events", 0, 0, max_messages=1000)
        assert [r.offset for r in result.records] == list(range(23))
        assert [r.value for r in result.records] == [f"v{i}" for i in range(23)]

    def test_beginning_offset_reaches_into_archive(self):
        cluster = make_tiered_cluster()
        tp = produce_and_expire(cluster)
        assert cluster.beginning_offset(tp) == 0
        assert cluster._leader_replica(tp).log.log_start_offset > 0

    def test_untiered_fetch_below_log_start_raises(self):
        cluster = make_tiered_cluster(tiered=False)
        tp = produce_and_expire(cluster)
        log_start = cluster.beginning_offset(tp)
        assert log_start > 0
        with pytest.raises(OffsetOutOfRangeError) as exc_info:
            cluster.fetch("events", 0, 0, max_messages=10)
        assert exc_info.value.requested == 0
        assert exc_info.value.log_start == log_start

    def test_consumer_rewind_reads_full_history(self):
        cluster = make_tiered_cluster()
        tp = produce_and_expire(cluster)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        consumer.seek_to_beginning(tp)
        assert consumer.position(tp) == 0
        records = []
        while True:
            batch = consumer.poll(max_messages=7)
            if not batch:
                break
            records.extend(batch)
        assert [r.offset for r in records] == list(range(23))

    def test_consumer_auto_reset_earliest_without_cold_tier(self):
        cluster = make_tiered_cluster(tiered=False)
        tp = produce_and_expire(cluster)
        consumer = Consumer(cluster, auto_offset_reset="earliest")
        consumer.assign([tp])
        consumer.seek(tp, 0)  # below the truncated log start
        first_poll = consumer.poll()  # hits OffsetOutOfRange, resets
        second_poll = consumer.poll()
        records = first_poll + second_poll
        assert records
        assert records[0].offset == cluster.beginning_offset(tp)

    def test_consumer_auto_reset_latest_without_cold_tier(self):
        cluster = make_tiered_cluster(tiered=False)
        tp = produce_and_expire(cluster)
        consumer = Consumer(cluster, auto_offset_reset="latest")
        consumer.assign([tp])
        consumer.seek(tp, 0)
        consumer.poll()
        assert consumer.position(tp) == cluster.end_offset(tp)

    def test_seek_to_timestamp_spans_tiers(self):
        cluster = make_tiered_cluster()
        tp = produce_and_expire(cluster)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        offset = consumer.seek_to_timestamp(tp, 0.0)
        assert offset == 0

    def test_broker_crash_drops_hydration_cache(self):
        cluster = make_tiered_cluster()
        tp = produce_and_expire(cluster)
        cluster.fetch("events", 0, 0, max_messages=1000)
        leader_id = cluster.leader_of("events", 0)
        leader = cluster.broker(leader_id).replica(tp)
        assert leader.cold_tier.reader.hydrated_segments > 0
        cluster.kill_broker(leader_id)
        assert leader.cold_tier.reader.hydrated_segments == 0

    def test_tiered_topic_without_store_rejected_at_broker(self):
        from repro.messaging.broker import Broker

        broker = Broker(0, SimClock(), DEFAULT_COST_MODEL)
        with pytest.raises(ConfigError):
            broker.host_partition(
                TopicPartition("t", 0),
                TopicConfig(name="t", tiered=TieredConfig()),
            )

    def test_admin_surfaces_tiered_stats(self):
        cluster = make_tiered_cluster()
        produce_and_expire(cluster)
        cluster.fetch("events", 0, 0, max_messages=1000)
        admin = AdminClient(cluster)
        info = admin.describe_topic("events")[0]
        assert info.tiered is not None
        assert info.archived_bytes > 0
        assert info.cold_hit_ratio is not None
        rendered = admin.format_topic("events")
        assert "tiered: archived=" in rendered
        assert "cold_hit_ratio=" in rendered

    def test_admin_untiered_partition_has_no_tiered_stats(self):
        cluster = make_tiered_cluster(tiered=False)
        produce_and_expire(cluster)
        admin = AdminClient(cluster)
        info = admin.describe_topic("events")[0]
        assert info.tiered is None
        assert info.archived_bytes == 0
        assert info.cold_hit_ratio is None


class TestColdCostModel:
    def test_cold_fetch_and_put_costs(self):
        model = CostModel()
        assert model.cold_fetch(0) == model.cold_fetch_overhead
        assert model.cold_fetch(80_000_000) == pytest.approx(
            model.cold_fetch_overhead + 1.0
        )
        assert model.cold_put(60_000_000) == pytest.approx(
            model.cold_fetch_overhead + 1.0
        )

    def test_cold_params_scale(self):
        fast = CostModel().scaled(0.5)
        assert fast.cold_fetch_overhead == pytest.approx(25e-3)
        assert fast.cold_read_bandwidth == pytest.approx(160e6)

    def test_describe_includes_cold_params(self):
        desc = CostModel().describe()
        assert "cold_fetch_overhead_ms" in desc
        assert "cold_read_mbps" in desc
