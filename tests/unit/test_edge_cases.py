"""Edge-case tests across subsystems (gaps not covered elsewhere)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import BrokerUnavailableError
from repro.common.records import TopicPartition
from repro.core.etl import MapTask
from repro.core.liquid import Liquid
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.containers import ResourceQuota
from repro.processing.dataflow import Dataflow
from repro.processing.job import JobConfig
from repro.storage.compaction import LogCompactor
from repro.storage.log import LogConfig, PartitionLog
from repro.storage.retention import RetentionConfig, RetentionEnforcer


class TestLogEdges:
    def test_read_below_first_survivor_after_compaction(self):
        clock = SimClock()
        log = PartitionLog("t-0", LogConfig(segment_max_messages=5), clock=clock)
        for i in range(15):
            log.append("same-key", i)
        LogCompactor(clock=clock).compact(log)
        # log_start_offset stays 0 (compaction does not advance it); a read
        # at 0 skips forward to the first survivor.
        assert log.log_start_offset == 0
        batch = log.read(0, max_messages=5).messages
        assert batch[0].offset > 0

    def test_timestamp_lookup_after_retention(self):
        clock = SimClock()
        log = PartitionLog("t-0", LogConfig(segment_max_messages=5), clock=clock)
        for i in range(15):
            log.append("k", i, timestamp=float(i))
            clock.advance(1.0)
        enforcer = RetentionEnforcer(RetentionConfig(retention_seconds=5.0), clock)
        enforcer.enforce(log)
        # A timestamp inside the deleted range maps to the first retained
        # record, not to a phantom offset.
        found = log.offset_for_timestamp(0.0)
        assert found is not None
        assert found >= log.log_start_offset

    def test_merge_sealed_segments_respects_size_bound(self):
        clock = SimClock()
        log = PartitionLog(
            "t-0",
            LogConfig(segment_max_messages=4, segment_max_bytes=10**9),
            clock=clock,
        )
        for i in range(20):
            log.append(f"k{i}", i)  # unique keys: nothing compacts away
        before = log.segment_count
        eliminated = log.merge_sealed_segments()
        # Groups of sealed segments merge up to segment_max_messages=4,
        # which they already individually fill: nothing merges.
        assert eliminated == 0
        assert log.segment_count == before


class TestClusterEdges:
    def test_recover_offset_manager_with_offline_partition(self):
        cluster = MessagingCluster(num_brokers=1, clock=SimClock())
        cluster.kill_broker(0)
        with pytest.raises(BrokerUnavailableError):
            cluster.recover_offset_manager()

    def test_run_until_replicated_terminates_when_idle(self):
        cluster = MessagingCluster(num_brokers=3, clock=SimClock())
        cluster.create_topic("t", replication_factor=3)
        passes = cluster.run_until_replicated()
        assert passes <= 2

    def test_fetch_result_tuple_unpacking_compat(self):
        cluster = MessagingCluster(num_brokers=1, clock=SimClock())
        cluster.create_topic("t", replication_factor=1)
        Producer(cluster).send("t", 1)
        records, latency = cluster.fetch("t", 0, 0)
        assert [r.value for r in records] == [1]
        assert latency > 0

    def test_cold_cache_after_broker_restart_pays_disk(self):
        """Paper 4.1: RAM is lost with the machine; the log is not."""
        cluster = MessagingCluster(num_brokers=1, clock=SimClock())
        cluster.create_topic("t", replication_factor=1)
        producer = Producer(cluster)
        for i in range(200):
            producer.send("t", {"data": "x" * 300})
        warm = cluster.fetch("t", 0, 0, max_messages=200).latency
        cluster.kill_broker(0)
        cluster.restart_broker(0)
        cold = cluster.fetch("t", 0, 0, max_messages=200).latency
        assert cold > 5 * warm  # seek + disk read vs. RAM


class TestLiquidEdges:
    def test_run_isolated_quantum_advances_quota_jobs(self):
        liquid = Liquid(num_brokers=1, host_cores=2)
        liquid.create_feed("in-feed", partitions=1)
        liquid.submit_job(
            JobConfig(name="j", inputs=["in-feed"],
                      task_factory=lambda: MapTask("out-feed"),
                      cpu_cost_per_message=1e-3),
            outputs=["out-feed"],
            quota=ResourceQuota(cpu_cores=1.0),
        )
        producer = liquid.producer()
        for i in range(50):
            producer.send("in-feed", i)
        report = liquid.run_isolated_quantum(dt=0.1)
        assert report.processed["j"] > 0

    def test_empty_dataflow_runs(self):
        cluster = MessagingCluster(num_brokers=1, clock=SimClock())
        flow = Dataflow(cluster)
        assert flow.run_until_idle() == 0
        assert flow.stages() == []

    def test_feed_graph_carries_job_attribution(self):
        liquid = Liquid(num_brokers=1)
        liquid.create_feed("a")
        liquid.submit_job(
            JobConfig(name="deriver", inputs=["a"],
                      task_factory=lambda: MapTask("b")),
            outputs=["b"],
        )
        graph = liquid.feeds.graph()
        assert graph.edges[("a", "b")]["job"] == "deriver"

    def test_stats_after_failures_reflect_live_brokers(self):
        liquid = Liquid(num_brokers=3)
        liquid.create_feed("a")
        liquid.kill_broker(1)
        stats = liquid.stats()
        assert stats["brokers"] == 3
        assert stats["live_brokers"] == 2


class TestHighWatermarkVisibility:
    def test_acks_all_then_leader_kill_preserves_read_position(self):
        """A consumer's committed-data view never regresses across failover."""
        cluster = MessagingCluster(num_brokers=3, clock=SimClock())
        cluster.create_topic("t", replication_factor=3)
        producer = Producer(cluster, acks=ACKS_ALL)
        for i in range(10):
            producer.send("t", i)
        tp = TopicPartition("t", 0)
        hw_before = cluster.end_offset(tp)
        cluster.kill_broker(cluster.leader_of("t", 0))
        hw_after = cluster.end_offset(tp)
        assert hw_after >= hw_before
