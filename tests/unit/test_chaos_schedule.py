"""Seed determinism of the chaos schedule: same seed, same faults."""

import pytest

from repro.chaos import ChaosConfig, ChaosSchedule
from repro.chaos.failpoints import registry
from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.messaging.cluster import MessagingCluster


@pytest.fixture(autouse=True)
def clean_registry():
    registry().disarm_all()
    yield
    registry().disarm_all()


def make_cluster(brokers=5):
    cluster = MessagingCluster(num_brokers=brokers, clock=SimClock())
    cluster.create_topic("events", num_partitions=4, replication_factor=3)
    return cluster


def run_schedule(seed, horizon=20.0):
    cluster = make_cluster()
    schedule = ChaosSchedule(
        cluster, seed=seed, config=ChaosConfig(horizon=horizon)
    )
    plan = schedule.install()
    while cluster.clock.now() < horizon + 5.0:
        cluster.tick(0.5)
    schedule.heal()
    cluster.run_until_replicated()
    return cluster, [str(e) for e in plan], schedule.trace()


class TestPlanDeterminism:
    def test_same_seed_same_plan(self):
        a = ChaosSchedule(make_cluster(), seed=42)
        b = ChaosSchedule(make_cluster(), seed=42)
        assert a.install() == b.install()
        assert a.plan()  # non-trivial: the horizon yields events

    def test_different_seeds_differ(self):
        a = ChaosSchedule(make_cluster(), seed=1)
        b = ChaosSchedule(make_cluster(), seed=2)
        assert a.install() != b.install()

    def test_double_install_rejected(self):
        schedule = ChaosSchedule(make_cluster(), seed=3)
        schedule.install()
        with pytest.raises(ConfigError):
            schedule.install()

    def test_plan_covers_multiple_fault_kinds(self):
        schedule = ChaosSchedule(
            make_cluster(), seed=11, config=ChaosConfig(horizon=60.0)
        )
        kinds = {line.split()[1] for line in map(str, schedule.install())}
        assert len(kinds) >= 4


class TestTraceDeterminism:
    def test_same_seed_identical_trace(self):
        _, plan_a, trace_a = run_schedule(seed=1234)
        _, plan_b, trace_b = run_schedule(seed=1234)
        assert plan_a == plan_b
        assert trace_a == trace_b
        assert trace_a  # events actually fired

    def test_cluster_healthy_after_heal(self):
        cluster, _plan, _trace = run_schedule(seed=99)
        assert all(b.online for b in cluster.brokers())
        assert not registry().armed_names()
        for tp in cluster.partitions_of("events"):
            assert cluster.leader_of(tp.topic, tp.partition) is not None


class TestConfigValidation:
    def test_bad_horizon(self):
        with pytest.raises(ConfigError):
            ChaosConfig(horizon=0)

    def test_bad_intervals(self):
        with pytest.raises(ConfigError):
            ChaosConfig(min_interval=3.0, max_interval=1.0)

    def test_unknown_fault_kind(self):
        with pytest.raises(ConfigError):
            ChaosConfig(weights=(("meteor_strike", 1.0),))

    def test_min_online_brokers_floor(self):
        with pytest.raises(ConfigError):
            ChaosConfig(min_online_brokers=0)
