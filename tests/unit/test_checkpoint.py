"""Unit tests for the checkpoint manager."""

from repro.common.clock import SimClock
from repro.common.records import TopicPartition
from repro.messaging.offset_manager import OffsetManager
from repro.processing.checkpoint import CheckpointManager, job_group_name

TP_A = TopicPartition("a", 0)
TP_B = TopicPartition("b", 0)


def make_manager() -> CheckpointManager:
    return CheckpointManager(OffsetManager(SimClock()), "cleaner")


class TestGroupNaming:
    def test_group_name_convention(self):
        assert job_group_name("cleaner") == "job-cleaner"


class TestCommitFetch:
    def test_commit_all_positions(self):
        manager = make_manager()
        manager.commit({TP_A: 5, TP_B: 9})
        assert manager.fetch(TP_A).offset == 5
        assert manager.fetch(TP_B).offset == 9

    def test_fetch_all(self):
        manager = make_manager()
        manager.commit({TP_A: 5, TP_B: 9})
        everything = manager.fetch_all()
        assert set(everything) == {TP_A, TP_B}

    def test_unknown_partition_none(self):
        assert make_manager().fetch(TP_A) is None

    def test_metadata_attached(self):
        manager = make_manager()
        manager.commit({TP_A: 3}, {"software_version": "v2"})
        assert manager.fetch(TP_A).metadata["software_version"] == "v2"


class TestVersionQuery:
    def test_position_for_version(self):
        manager = make_manager()
        manager.commit({TP_A: 3}, {"software_version": "v1"})
        manager.commit({TP_A: 8}, {"software_version": "v1"})
        manager.commit({TP_A: 12}, {"software_version": "v2"})
        assert manager.position_for_version(TP_A, "v1").offset == 8
        assert manager.position_for_version(TP_A, "v2").offset == 12
        assert manager.position_for_version(TP_A, "v3") is None
