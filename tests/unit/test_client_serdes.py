"""Unit tests for typed producer/consumer boundaries (serdes)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import SerdeError
from repro.common.records import TopicPartition
from repro.common.serde import JsonSerde, StringSerde
from repro.messaging.cluster import MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.producer import Producer


def make_cluster() -> MessagingCluster:
    cluster = MessagingCluster(num_brokers=1, clock=SimClock())
    cluster.create_topic("t", num_partitions=1, replication_factor=1)
    return cluster


class TestSerdeRoundtrip:
    def test_json_values_roundtrip_through_the_log(self):
        cluster = make_cluster()
        producer = Producer(cluster, value_serde=JsonSerde())
        producer.send("t", {"nested": {"x": [1, 2]}})
        # On the wire / in the log: bytes.
        raw = cluster.fetch("t", 0, 0).records
        assert isinstance(raw[0].value, bytes)
        # Typed consumer decodes.
        consumer = Consumer(cluster, value_serde=JsonSerde())
        consumer.assign([TopicPartition("t", 0)])
        records = consumer.poll(10)
        assert records[0].value == {"nested": {"x": [1, 2]}}

    def test_string_keys_roundtrip(self):
        cluster = make_cluster()
        producer = Producer(
            cluster, key_serde=StringSerde(), value_serde=JsonSerde()
        )
        producer.send("t", {"v": 1}, key="member-42")
        consumer = Consumer(
            cluster, key_serde=StringSerde(), value_serde=JsonSerde()
        )
        consumer.assign([TopicPartition("t", 0)])
        records = consumer.poll(10)
        assert records[0].key == "member-42"

    def test_none_keys_pass_through(self):
        cluster = make_cluster()
        producer = Producer(cluster, key_serde=StringSerde(),
                            value_serde=JsonSerde())
        producer.send("t", {"v": 1})  # no key
        consumer = Consumer(cluster, key_serde=StringSerde(),
                            value_serde=JsonSerde())
        consumer.assign([TopicPartition("t", 0)])
        assert consumer.poll(10)[0].key is None

    def test_serialization_errors_surface_at_send(self):
        cluster = make_cluster()
        producer = Producer(cluster, value_serde=JsonSerde())
        with pytest.raises(SerdeError):
            producer.send("t", object())

    def test_untyped_clients_unchanged(self):
        cluster = make_cluster()
        Producer(cluster).send("t", {"plain": True})
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        assert consumer.poll(10)[0].value == {"plain": True}

    def test_deserialized_records_keep_wire_size(self):
        """Regression: ``Consumer._deserialize`` dropped ``size``, letting
        ``ConsumerRecord.__post_init__`` recompute it from the deserialized
        Python objects — skewing byte accounting away from what was actually
        stored and transferred."""
        cluster = make_cluster()
        producer = Producer(
            cluster, key_serde=StringSerde(), value_serde=JsonSerde()
        )
        producer.send("t", {"payload": "x" * 64, "n": [1, 2, 3]}, key="k1")
        raw = cluster.fetch("t", 0, 0).records[0]
        consumer = Consumer(
            cluster, key_serde=StringSerde(), value_serde=JsonSerde()
        )
        consumer.assign([TopicPartition("t", 0)])
        typed = consumer.poll(10)[0]
        assert typed.size == raw.size
        assert typed.size > 0

    def test_partitioning_consistent_for_serialized_keys(self):
        cluster = MessagingCluster(num_brokers=1, clock=SimClock())
        cluster.create_topic("multi", num_partitions=4, replication_factor=1)
        producer = Producer(cluster, key_serde=StringSerde())
        partitions = {
            producer.send("multi", i, key="stable").partition.partition
            for i in range(5)
        }
        assert len(partitions) == 1
