"""Unit tests for container-based resource isolation (§4.4)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError, QuotaExceededError
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.containers import IsolatedHost, ResourceQuota
from repro.processing.job import JobConfig, JobRunner, StoreConfig


class NoopTask:
    def process(self, record, collector):
        pass


class HoardTask:
    """Accumulates every record into state (memory hog)."""

    def init(self, context):
        self.store = context.store("hoard")

    def process(self, record, collector):
        self.store.put(record.offset, record.value)


def make_env(jobs=("a", "b"), backlog=(100, 100), cpu_cost=1e-3):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=1, clock=clock)
    producer = Producer(cluster)
    runners = []
    for name, n in zip(jobs, backlog):
        cluster.create_topic(f"in-{name}", num_partitions=1, replication_factor=1)
        for i in range(n):
            producer.send(f"in-{name}", {"i": i})
        runners.append(
            JobRunner(
                JobConfig(
                    name=name, inputs=[f"in-{name}"], task_factory=NoopTask,
                    cpu_cost_per_message=cpu_cost,
                ),
                cluster,
            )
        )
    return clock, cluster, runners


class TestQuotaValidation:
    def test_invalid_quota_rejected(self):
        with pytest.raises(ConfigError):
            ResourceQuota(cpu_cores=0)
        with pytest.raises(ConfigError):
            ResourceQuota(memory_bytes=0)

    def test_overcommit_rejected_with_isolation(self):
        _clock, _cluster, runners = make_env()
        host = IsolatedHost(cores=1, isolation=True)
        host.add_job(runners[0], ResourceQuota(cpu_cores=0.8))
        with pytest.raises(ConfigError):
            host.add_job(runners[1], ResourceQuota(cpu_cores=0.5))

    def test_overcommit_allowed_without_isolation(self):
        _clock, _cluster, runners = make_env()
        host = IsolatedHost(cores=1, isolation=False)
        host.add_job(runners[0], ResourceQuota(cpu_cores=0.8))
        host.add_job(runners[1], ResourceQuota(cpu_cores=0.8))

    def test_duplicate_job_rejected(self):
        _clock, _cluster, runners = make_env(jobs=("a",), backlog=(10,))
        host = IsolatedHost(cores=2)
        host.add_job(runners[0], ResourceQuota())
        with pytest.raises(ConfigError):
            host.add_job(runners[0], ResourceQuota())


class TestCpuScheduling:
    def test_isolation_caps_each_job_at_quota(self):
        _clock, _cluster, runners = make_env(backlog=(1000, 1000))
        host = IsolatedHost(cores=2, isolation=True)
        host.add_job(runners[0], ResourceQuota(cpu_cores=1.0))
        host.add_job(runners[1], ResourceQuota(cpu_cores=1.0))
        report = host.run_quantum(dt=0.1)
        # Each job: 1 core * 0.1s / 1e-3 per msg = 100 messages.
        assert report.processed["a"] == 100
        assert report.processed["b"] == 100

    def test_hog_starves_victim_without_isolation(self):
        """§4.4's failure mode: demand-proportional sharing."""
        _clock, _cluster, runners = make_env(backlog=(1900, 100))
        host = IsolatedHost(cores=1, isolation=False)
        host.add_job(runners[0], ResourceQuota(cpu_cores=0.5))  # hog
        host.add_job(runners[1], ResourceQuota(cpu_cores=0.5))  # victim
        report = host.run_quantum(dt=0.1)
        # Capacity is 100 msgs worth; hog demands 19x the victim.
        assert report.processed["a"] > 9 * report.processed["b"]

    def test_isolation_protects_victim_from_hog(self):
        _clock, _cluster, runners = make_env(backlog=(1900, 100))
        host = IsolatedHost(cores=1, isolation=True)
        host.add_job(runners[0], ResourceQuota(cpu_cores=0.5))
        host.add_job(runners[1], ResourceQuota(cpu_cores=0.5))
        report = host.run_quantum(dt=0.1)
        assert report.processed["b"] == 50  # its full quota, hog or not

    def test_idle_job_gets_nothing(self):
        _clock, _cluster, runners = make_env(backlog=(0, 50))
        host = IsolatedHost(cores=2, isolation=True)
        host.add_job(runners[0], ResourceQuota(cpu_cores=1.0))
        host.add_job(runners[1], ResourceQuota(cpu_cores=1.0))
        report = host.run_quantum(dt=0.1)
        assert report.allocations["a"] == 0.0
        assert report.processed["b"] > 0

    def test_quantum_advances_clock(self):
        clock, _cluster, runners = make_env()
        host = IsolatedHost(cores=2)
        host.add_job(runners[0], ResourceQuota(cpu_cores=1.0))
        before = clock.now()
        host.run_quantum(dt=0.25)
        assert clock.now() == pytest.approx(before + 0.25)

    def test_run_quanta_drains_backlog(self):
        _clock, _cluster, runners = make_env(backlog=(100, 0))
        host = IsolatedHost(cores=1, isolation=True)
        host.add_job(runners[0], ResourceQuota(cpu_cores=0.9))
        host.add_job(runners[1], ResourceQuota(cpu_cores=0.1))
        host.run_quanta(20, dt=0.1)
        assert runners[0].backlog() == 0


class TestMemoryEnforcement:
    def _memory_env(self):
        clock = SimClock()
        cluster = MessagingCluster(num_brokers=1, clock=clock)
        cluster.create_topic("in-m", num_partitions=1, replication_factor=1)
        producer = Producer(cluster)
        for i in range(50):
            producer.send("in-m", {"payload": "x" * 100})
        runner = JobRunner(
            JobConfig(
                name="m", inputs=["in-m"], task_factory=HoardTask,
                stores=[StoreConfig("hoard", changelog=False)],
                cpu_cost_per_message=1e-4,
            ),
            cluster,
        )
        return runner

    def test_soft_enforcement_counts_violations(self):
        runner = self._memory_env()
        host = IsolatedHost(cores=1, memory_enforcement="soft")
        host.add_job(runner, ResourceQuota(cpu_cores=1.0, memory_bytes=100))
        host.run_quanta(5, dt=0.1)
        assert host.memory_violations("m") > 0

    def test_hard_enforcement_raises(self):
        runner = self._memory_env()
        host = IsolatedHost(cores=1, memory_enforcement="hard")
        host.add_job(runner, ResourceQuota(cpu_cores=1.0, memory_bytes=100))
        with pytest.raises(QuotaExceededError):
            host.run_quanta(5, dt=0.1)

    def test_invalid_enforcement_rejected(self):
        with pytest.raises(ConfigError):
            IsolatedHost(memory_enforcement="medium")
