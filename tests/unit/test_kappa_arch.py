"""Unit tests for the Kappa architecture baseline (§2.2)."""

import pytest

from repro.common.errors import ConfigError
from repro.baselines.kappa_arch import KappaArchitecture


def counting(view, event):
    view[event["w"]] = view.get(event["w"], 0) + 1


def double_counting(view, event):
    view[event["w"]] = view.get(event["w"], 0) + 2


def events(n, words=3):
    return [{"w": f"w{i % words}"} for i in range(n)]


def word_counter() -> KappaArchitecture:
    kappa = KappaArchitecture()
    kappa.register_logic(counting, "v1")
    return kappa


class TestProcessing:
    def test_logic_required(self):
        with pytest.raises(ConfigError):
            KappaArchitecture().process()

    def test_single_code_path(self):
        assert word_counter().metrics().code_paths == 1

    def test_process_folds_new_events(self):
        kappa = word_counter()
        kappa.ingest(events(300))
        assert kappa.process() == 300
        assert kappa.query("w0") == 100

    def test_process_is_incremental(self):
        kappa = word_counter()
        kappa.ingest(events(30))
        kappa.process()
        kappa.ingest(events(9))
        assert kappa.process() == 9
        assert kappa.query("w0") == 13


class TestReprocessing:
    def test_reprocess_replays_full_history(self):
        kappa = word_counter()
        kappa.ingest(events(300))
        kappa.process()
        kappa.reprocess(double_counting, "v2")
        assert kappa.version == "v2"
        assert kappa.query("w0") == 200  # recomputed with the new algorithm

    def test_old_view_serves_until_cutover(self):
        kappa = word_counter()
        kappa.ingest(events(30))
        kappa.process()
        before = kappa.query("w0")
        window = kappa.reprocess(double_counting, "v2")
        assert window > 0  # there WAS a staleness window
        assert kappa.query("w0") == 2 * before

    def test_reprocess_catches_tail_ingested_meanwhile(self):
        kappa = word_counter()
        kappa.ingest(events(30))
        kappa.process()
        kappa.ingest(events(3))  # not yet processed by v1
        kappa.reprocess(double_counting, "v2")
        assert kappa.query("w0") == 2 * 11

    def test_post_cutover_processing_uses_new_logic(self):
        kappa = word_counter()
        kappa.ingest(events(30))
        kappa.process()
        kappa.reprocess(double_counting, "v2")
        kappa.ingest(events(3))
        kappa.process()
        assert kappa.query("w0") == 22

    def test_staleness_window_grows_with_history(self):
        small = word_counter()
        small.ingest(events(50))
        small.process()
        small_window = small.reprocess(double_counting, "v2")

        large = word_counter()
        large.ingest(events(2000))
        large.process()
        large_window = large.reprocess(double_counting, "v2")
        assert large_window > 5 * small_window


class TestFootprint:
    def test_full_history_retained(self):
        kappa = word_counter()
        kappa.ingest(events(500))
        kappa.process()
        stored_before = kappa.storage_bytes()
        kappa.ingest(events(500))
        kappa.process()
        assert kappa.storage_bytes() > stored_before  # log only grows

    def test_metrics_shape(self):
        kappa = word_counter()
        kappa.ingest(events(10))
        kappa.process()
        kappa.reprocess(double_counting, "v2")
        metrics = kappa.metrics()
        assert metrics.code_paths == 1
        assert metrics.compute_seconds > 0
        assert metrics.reprocess_seconds > 0
        assert metrics.last_staleness_window > 0
