"""Unit tests for the consumer client."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.common.records import TopicPartition
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.consumer_group import GroupCoordinator
from repro.messaging.producer import Producer
from repro.storage.log import LogConfig
from repro.storage.retention import RetentionConfig
from repro.messaging.topic import TopicConfig


def setup_cluster(partitions=2, n=20):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=3, clock=clock)
    cluster.create_topic("t", num_partitions=partitions, replication_factor=3)
    producer = Producer(cluster, acks=ACKS_ALL)
    for i in range(n):
        producer.send("t", {"i": i}, key=f"k{i % 5}", timestamp=float(i))
    return clock, cluster


class TestManualAssign:
    def test_assign_and_poll_all(self):
        _clock, cluster = setup_cluster()
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_of("t"))
        got = []
        while True:
            batch = consumer.poll(100)
            if not batch:
                break
            got.extend(batch)
        assert len(got) == 20
        assert consumer.records_consumed == 20

    def test_assign_after_group_rejected(self):
        _clock, cluster = setup_cluster()
        gc = GroupCoordinator(cluster)
        consumer = Consumer(cluster, group="g", group_coordinator=gc)
        with pytest.raises(ConfigError):
            consumer.assign(cluster.partitions_of("t"))

    def test_per_partition_order_preserved(self):
        _clock, cluster = setup_cluster(partitions=3, n=30)
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_of("t"))
        per_partition: dict[int, list[int]] = {}
        while True:
            batch = consumer.poll(7)
            if not batch:
                break
            for record in batch:
                per_partition.setdefault(record.partition, []).append(record.offset)
        for offsets in per_partition.values():
            assert offsets == sorted(offsets)

    def test_round_robin_avoids_starvation(self):
        _clock, cluster = setup_cluster(partitions=2, n=40)
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_of("t"))
        first = consumer.poll(5)
        second = consumer.poll(5)
        touched = {r.partition for r in first + second}
        assert touched == {0, 1}


class TestSeek:
    def test_seek_and_position(self):
        _clock, cluster = setup_cluster(partitions=1)
        tp = TopicPartition("t", 0)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        consumer.seek(tp, 15)
        assert consumer.position(tp) == 15
        batch = consumer.poll(100)
        assert batch[0].offset == 15

    def test_seek_to_beginning_and_end(self):
        _clock, cluster = setup_cluster(partitions=1)
        tp = TopicPartition("t", 0)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        consumer.seek_to_end(tp)
        assert consumer.poll(10) == []
        consumer.seek_to_beginning(tp)
        assert consumer.poll(1)[0].offset == 0

    def test_seek_to_timestamp(self):
        _clock, cluster = setup_cluster(partitions=1)
        tp = TopicPartition("t", 0)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        offset = consumer.seek_to_timestamp(tp, 10.0)
        assert offset == 10
        assert consumer.poll(1)[0].timestamp == 10.0

    def test_seek_to_timestamp_past_end(self):
        _clock, cluster = setup_cluster(partitions=1)
        tp = TopicPartition("t", 0)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        offset = consumer.seek_to_timestamp(tp, 1e9)
        assert offset == cluster.end_offset(tp)

    def test_seek_unassigned_rejected(self):
        _clock, cluster = setup_cluster()
        consumer = Consumer(cluster)
        with pytest.raises(ConfigError):
            consumer.seek(TopicPartition("t", 0), 0)


class TestGroupFlow:
    def test_subscribe_requires_coordinator(self):
        _clock, cluster = setup_cluster()
        with pytest.raises(ConfigError):
            Consumer(cluster, group="g")

    def test_commit_and_resume(self):
        _clock, cluster = setup_cluster(partitions=1)
        gc = GroupCoordinator(cluster)
        consumer = Consumer(cluster, group="g", group_coordinator=gc)
        consumer.subscribe(["t"])
        consumer.poll(8)
        consumer.commit()
        consumer.close()

        fresh = Consumer(cluster, group="g", group_coordinator=gc)
        fresh.subscribe(["t"])
        batch = fresh.poll(100)
        assert batch[0].offset == 8

    def test_commit_metadata_visible(self):
        _clock, cluster = setup_cluster(partitions=1)
        gc = GroupCoordinator(cluster)
        consumer = Consumer(cluster, group="g", group_coordinator=gc)
        consumer.subscribe(["t"])
        consumer.poll(5)
        consumer.commit({"software_version": "v7"})
        tp = TopicPartition("t", 0)
        commit = cluster.offset_manager.offset_for_annotation(
            "g", tp, "software_version", "v7"
        )
        assert commit is not None
        assert commit.offset == consumer.position(tp)

    def test_committed(self):
        _clock, cluster = setup_cluster(partitions=1)
        gc = GroupCoordinator(cluster)
        consumer = Consumer(cluster, group="g", group_coordinator=gc)
        consumer.subscribe(["t"])
        assert consumer.committed(TopicPartition("t", 0)) is None
        consumer.poll(3)
        consumer.commit()
        assert consumer.committed(TopicPartition("t", 0)) == 3

    def test_rebalance_detected_on_poll(self):
        _clock, cluster = setup_cluster(partitions=2)
        gc = GroupCoordinator(cluster)
        first = Consumer(cluster, group="g", group_coordinator=gc)
        first.subscribe(["t"])
        assert len(first.assignment()) == 2
        second = Consumer(cluster, group="g", group_coordinator=gc)
        second.subscribe(["t"])
        first.poll(1)  # notices the generation bump
        assert len(first.assignment()) == 1
        assert len(second.assignment()) == 1

    def test_close_triggers_rebalance(self):
        _clock, cluster = setup_cluster(partitions=2)
        gc = GroupCoordinator(cluster)
        a = Consumer(cluster, group="g", group_coordinator=gc)
        b = Consumer(cluster, group="g", group_coordinator=gc)
        a.subscribe(["t"])
        b.subscribe(["t"])
        b.close()
        a.poll(1)
        assert len(a.assignment()) == 2

    def test_closed_consumer_rejects_poll(self):
        _clock, cluster = setup_cluster()
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_of("t"))
        consumer.close()
        with pytest.raises(ConfigError):
            consumer.poll()


class TestAutoOffsetReset:
    def test_latest_starts_at_end(self):
        _clock, cluster = setup_cluster(partitions=1)
        consumer = Consumer(cluster, auto_offset_reset="latest")
        consumer.assign([TopicPartition("t", 0)])
        assert consumer.poll(10) == []

    def test_invalid_policy_rejected(self):
        _clock, cluster = setup_cluster()
        with pytest.raises(ConfigError):
            Consumer(cluster, auto_offset_reset="nearest")

    def test_position_reset_after_retention(self):
        clock = SimClock()
        cluster = MessagingCluster(num_brokers=1, clock=clock)
        cluster.create_topic(
            TopicConfig(
                name="t",
                replication_factor=1,
                retention=RetentionConfig(retention_seconds=1.0),
                log=LogConfig(segment_max_messages=5),
            )
        )
        producer = Producer(cluster)
        for i in range(20):
            producer.send("t", i)
        tp = TopicPartition("t", 0)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        # Retention fires and deletes old segments under the consumer.
        clock.advance(100.0)
        cluster.broker(0).run_retention()
        assert cluster.beginning_offset(tp) > 0
        batch = consumer.poll(5)  # first poll resets, second reads
        if not batch:
            batch = consumer.poll(5)
        assert batch[0].offset == cluster.beginning_offset(tp)


class TestPauseResume:
    def test_paused_partition_gets_no_budget(self):
        _clock, cluster = setup_cluster()
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_of("t"))
        tp0, tp1 = cluster.partitions_of("t")
        consumer.pause(tp0)
        assert consumer.paused() == {tp0}
        got = []
        for _ in range(10):
            got.extend(consumer.poll(100))
        assert got, "the unpaused partition must still be served"
        assert all(r.partition == tp1.partition for r in got)
        # The paused partition's position never advanced.
        assert consumer.position(tp0) == 0

    def test_resume_restores_fetching(self):
        _clock, cluster = setup_cluster()
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_of("t"))
        tp0, tp1 = cluster.partitions_of("t")
        consumer.pause(tp0, tp1)
        assert consumer.poll(100) == []
        consumer.resume(tp0, tp1)
        assert consumer.paused() == set()
        got = []
        while True:
            batch = consumer.poll(100)
            if not batch:
                break
            got.extend(batch)
        assert len(got) == 20

    def test_pause_requires_assignment(self):
        _clock, cluster = setup_cluster()
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        with pytest.raises(ConfigError):
            consumer.pause(TopicPartition("t", 1))

    def test_resume_unknown_partition_is_noop(self):
        _clock, cluster = setup_cluster()
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("t", 0)])
        consumer.resume(TopicPartition("t", 1))  # must not raise
        assert consumer.paused() == set()

    def test_prefetch_skips_paused_partitions(self):
        _clock, cluster = setup_cluster()
        consumer = Consumer(cluster, prefetch=True)
        consumer.assign(cluster.partitions_of("t"))
        tp0, _tp1 = cluster.partitions_of("t")
        consumer.pause(tp0)
        for _ in range(6):
            consumer.poll(100)
        assert consumer._buffers.get(tp0) is None

    def test_rebalance_prunes_paused_set(self):
        _clock, cluster = setup_cluster()
        gc = GroupCoordinator(cluster)
        consumer = Consumer(cluster, group="g", group_coordinator=gc,
                            auto_offset_reset="earliest")
        consumer.subscribe(["t"])
        consumer.pause(*consumer.assignment())
        # A second member takes half the partitions away.
        other = Consumer(cluster, group="g", group_coordinator=gc,
                         auto_offset_reset="earliest")
        other.subscribe(["t"])
        consumer.poll(10)  # detects the generation bump
        assert consumer.paused() <= set(consumer.assignment())
