"""Unit tests for the Hourglass incremental-MR baseline (§6 / ref [14])."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.baselines.dfs import SimulatedDFS
from repro.baselines.hourglass import HourglassJob
from repro.baselines.mapreduce import MapReduceEngine


def make_job(name="wc") -> tuple[SimulatedDFS, HourglassJob]:
    clock = SimClock()
    dfs = SimulatedDFS(clock)
    engine = MapReduceEngine(dfs, clock)
    job = HourglassJob(
        dfs,
        engine,
        name=name,
        input_dir="/events",
        map_fn=lambda r: [(r["w"], 1)],
        aggregate_fn=sum,
        merge_fn=lambda a, b: a + b,
    )
    return dfs, job


def write_part(dfs, index, words):
    dfs.write_file(f"/events/part-{index:05d}", [{"w": w} for w in words])


class TestIncrementalRuns:
    def test_first_run_aggregates_everything(self):
        dfs, job = make_job()
        write_part(dfs, 0, ["a", "b", "a"])
        result = job.run()
        assert result.from_scratch
        assert result.new_files == 1
        assert result.records_read == 3
        assert job.result() == {"a": 2, "b": 1}

    def test_second_run_reads_only_new_files(self):
        dfs, job = make_job()
        write_part(dfs, 0, ["a"] * 50)
        job.run()
        write_part(dfs, 1, ["a", "b"])
        result = job.run()
        assert not result.from_scratch
        assert result.new_files == 1
        assert result.records_read == 2  # only the delta
        assert job.result() == {"a": 51, "b": 1}

    def test_no_new_files_is_free(self):
        dfs, job = make_job()
        write_part(dfs, 0, ["a"])
        job.run()
        result = job.run()
        assert result.new_files == 0
        assert result.total_seconds == 0.0

    def test_matches_from_scratch_aggregation(self):
        dfs, job = make_job()
        words = []
        for i in range(4):
            part = [f"w{j % 3}" for j in range(i + 2)]
            write_part(dfs, i, part)
            words.extend(part)
            job.run()
        expected = {}
        for w in words:
            expected[w] = expected.get(w, 0) + 1
        assert job.result() == expected

    def test_state_survives_job_object_restart(self):
        dfs, job = make_job()
        write_part(dfs, 0, ["a", "a"])
        job.run()
        # A new HourglassJob instance (process restart) picks up the
        # persisted state and processed-file list from the DFS.
        _dfs2, restarted = make_job()
        restarted.dfs = dfs
        restarted.engine.dfs = dfs
        fresh = HourglassJob(
            dfs, job.engine, "wc", "/events",
            map_fn=lambda r: [(r["w"], 1)],
            aggregate_fn=sum,
            merge_fn=lambda a, b: a + b,
        )
        write_part(dfs, 1, ["b"])
        result = fresh.run()
        assert result.records_read == 1
        assert fresh.result() == {"a": 2, "b": 1}

    def test_output_written_for_downstream_consumers(self):
        dfs, job = make_job()
        write_part(dfs, 0, ["x"])
        job.run()
        output = dict(dfs.read_file(job.output_path + "/part-00000").records)
        assert output == {"x": 1}

    def test_empty_name_rejected(self):
        dfs, _job = make_job()
        with pytest.raises(ConfigError):
            HourglassJob(
                dfs, MapReduceEngine(dfs), "", "/events",
                map_fn=lambda r: [], aggregate_fn=sum, merge_fn=lambda a, b: a,
            )


class TestCostProfile:
    def test_each_refresh_still_pays_job_startup(self):
        """Hourglass saves data cost, not the fixed MR overhead — the E3
        story for why nearline incremental processing wins."""
        dfs, job = make_job()
        write_part(dfs, 0, ["a"] * 1000)
        first = job.run()
        write_part(dfs, 1, ["a"])
        second = job.run()
        startup = job.engine.cost_model.mr_job_startup
        assert second.total_seconds >= startup   # delta of 1 record: ~10s!
        assert second.total_seconds < first.total_seconds
