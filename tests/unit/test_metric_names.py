"""Metric naming convention: every registered name is ``layer.component.metric``.

One helper (:func:`repro.common.metrics.metric_name`) builds every
instrument name in the library, so the convention is enforced at the
single choke point; this test drives a full deployment — produce, fetch,
replication, a job, the page cache, and the tiered cold path — then
asserts the whole registry passes :func:`is_conventional`.
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.metrics import (
    METRIC_LAYERS,
    MetricsRegistry,
    is_conventional,
    metric_name,
    metric_segment,
)
from repro.common.records import TopicPartition
from repro.core.liquid import Liquid
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.messaging.topic import LogConfig, RetentionConfig, TopicConfig
from repro.processing.job import JobConfig
from repro.storage.tiered.config import TieredConfig


class TestMetricNameHelper:
    def test_builds_dotted_name(self):
        assert metric_name("messaging", "broker", "messages_in") == (
            "messaging.broker.messages_in"
        )
        assert metric_name("processing", "job", "enrich", "processed") == (
            "processing.job.enrich.processed"
        )

    def test_rejects_unknown_layer(self):
        with pytest.raises(ConfigError):
            metric_name("networking", "broker", "messages_in")

    def test_rejects_empty_parts(self):
        with pytest.raises(ConfigError):
            metric_name("messaging", "broker")
        with pytest.raises(ConfigError):
            metric_name("messaging", "", "x")

    def test_is_conventional(self):
        assert is_conventional("messaging.broker.messages_in")
        assert is_conventional("storage.pagecache.hits")
        assert not is_conventional("messages_in")  # no layer prefix
        assert not is_conventional("messaging.broker")  # too few segments
        assert not is_conventional("unknown.broker.metric")

    def test_layers_are_the_documented_set(self):
        assert METRIC_LAYERS == (
            "messaging",
            "storage",
            "processing",
            "elasticity",
            "serving",
            "observability",
            "core",
            "tools",
        )


class TestMetricSegment:
    """Runtime identifiers (group/job names) sanitized at the choke point."""

    def test_passthrough_for_legal_names(self):
        assert metric_segment("enrich") == "enrich"
        assert metric_segment("job_2") == "job_2"

    def test_sanitizes_dashes_and_case(self):
        assert metric_segment("job-enrich") == "job_enrich"
        assert metric_segment("Consumer-3") == "consumer_3"

    def test_sanitized_segment_builds_conventional_names(self):
        name = metric_name(
            "elasticity", "lag_monitor", metric_segment("job-enrich"), "lag"
        )
        assert is_conventional(name)

    def test_rejects_unsalvageable_names(self):
        with pytest.raises(ConfigError):
            metric_segment("---")


class _PassThrough:
    def process(self, record, collector):
        collector.send("derived", record.value, key=record.key)


def _exercise_stack() -> MetricsRegistry:
    """Drive every metric-registering subsystem once; return the registry."""
    liquid = Liquid(num_brokers=3)
    liquid.create_feed("source", partitions=1)
    liquid.submit_job(
        JobConfig(name="enrich", inputs=["source"], task_factory=_PassThrough),
        outputs=["derived"],
    )
    # Compression + prefetch armed so their instruments join the sweep.
    producer = liquid.producer(compression="zlib:6", linger_messages=5)
    for i in range(5):
        producer.send("source", {"i": i}, key=f"k{i}")
    producer.flush()
    liquid.cluster.run_until_replicated()
    liquid.process_available()
    consumer = liquid.consumer(prefetch=True, auto_offset_reset="earliest")
    consumer.assign([TopicPartition("derived", 0)])
    consumer.poll()
    consumer.poll()
    return liquid.cluster.metrics


def _exercise_tiered() -> MetricsRegistry:
    """Archive sealed segments cold and read them back."""
    cluster = MessagingCluster(num_brokers=1, maintenance_interval=1.0)
    cluster.create_topic(
        TopicConfig(
            name="t",
            num_partitions=1,
            replication_factor=1,
            retention=RetentionConfig(retention_seconds=5.0),
            log=LogConfig(segment_max_messages=5),
            tiered=TieredConfig(),
        )
    )
    producer = Producer(cluster)
    for i in range(40):
        producer.send("t", {"i": i})
    cluster.tick(60.0)
    cluster.fetch("t", 0, 0, max_messages=10)
    return cluster.metrics


def _exercise_elasticity() -> MetricsRegistry:
    """Run the elastic controller so the elasticity.* instruments register."""
    from repro.elasticity import ElasticJobController, ScalingPolicy
    from repro.processing.job import JobRunner

    cluster = MessagingCluster(num_brokers=1)
    cluster.create_topic("in", num_partitions=2, replication_factor=1)
    cluster.create_topic("derived", num_partitions=2, replication_factor=1)
    producer = Producer(cluster)
    for i in range(400):
        producer.send("in", {"i": i}, partition=i % 2)
    producer.flush()
    runner = JobRunner(
        JobConfig(
            name="elastic-job",  # dash on purpose: exercises metric_segment
            inputs=["in"],
            task_factory=_PassThrough,
            cpu_cost_per_message=0.005,
        ),
        cluster,
    )
    controller = ElasticJobController(
        runner,
        ScalingPolicy(max_containers=2, scale_out_lag=50.0, scale_in_lag=5.0,
                      cooldown=0.5),
        quantum=0.25,
    )
    controller.run_until_drained()
    return cluster.metrics


def _exercise_serving() -> MetricsRegistry:
    """Query job state through the router so serving.* instruments register."""
    from repro.processing.job import JobRunner, StoreConfig
    from repro.serving import StateQueryRouter

    class _Counting:
        def init(self, context):
            self.store = context.store("counts")

        def process(self, record, collector):
            self.store.put(record.key, (self.store.get(record.key) or 0) + 1)

    cluster = MessagingCluster(num_brokers=1)
    cluster.create_topic("in", num_partitions=1, replication_factor=1)
    producer = Producer(cluster)
    for i in range(20):
        producer.send("in", {"i": i}, key=f"k{i % 4}")
    runner = JobRunner(
        JobConfig(
            name="served-job",  # dash on purpose: exercises metric_segment
            inputs=["in"],
            task_factory=_Counting,
            stores=[StoreConfig("counts")],
            num_standby_replicas=1,
        ),
        cluster,
    )
    runner.run_until_idle()
    runner.checkpoint()
    router = StateQueryRouter(runner)
    router.get("counts", "k1")
    router.get("counts", "k1", allow_stale=True)
    runner.crash()
    runner.recover()
    return cluster.metrics


class TestRegistryConvention:
    def test_full_stack_registers_only_conventional_names(self):
        registry = _exercise_stack()
        names = registry.names()
        assert names, "the deployment registered no metrics at all"
        offenders = [n for n in names if not is_conventional(n)]
        assert offenders == []

    def test_tiered_cold_path_names_are_conventional(self):
        registry = _exercise_tiered()
        names = registry.names()
        assert any(n.startswith("storage.tiered.") for n in names)
        offenders = [n for n in names if not is_conventional(n)]
        assert offenders == []

    def test_expected_spread_of_layers(self):
        names = _exercise_stack().names()
        assert any(n.startswith("messaging.broker.") for n in names)
        assert any(n.startswith("messaging.cluster.") for n in names)
        assert any(n.startswith("storage.pagecache.") for n in names)
        assert any(n.startswith("processing.job.enrich.") for n in names)

    def test_compression_and_prefetch_instruments_registered(self):
        names = _exercise_stack().names()
        assert "messaging.producer.compression_ratio" in names
        assert "messaging.cluster.bytes_on_wire" in names

    def test_elasticity_names_are_conventional(self):
        names = _exercise_elasticity().names()
        assert "elasticity.controller.elastic_job.containers" in names
        assert "elasticity.controller.elastic_job.scale_outs" in names
        assert "elasticity.lag_monitor.job_elastic_job.lag" in names
        offenders = [n for n in names if not is_conventional(n)]
        assert offenders == []

    def test_telemetry_names_are_conventional(self):
        liquid = Liquid(num_brokers=1)
        liquid.enable_telemetry(interval=0.5, with_slos=True)
        liquid.create_feed("source", partitions=1)
        producer = liquid.producer()
        for i in range(5):
            producer.send("source", {"i": i})
        producer.flush()
        liquid.tick(1.0)  # fire at least one export cycle
        names = liquid.cluster.metrics.names()
        assert "observability.telemetry.export_cycles" in names
        assert "observability.telemetry.metric_records" in names
        offenders = [n for n in names if not is_conventional(n)]
        assert offenders == []

    def test_serving_names_are_conventional(self):
        names = _exercise_serving().names()
        assert "serving.router.served_job.queries" in names
        assert "serving.router.served_job.stale_served" in names
        assert "serving.router.served_job.query_latency" in names
        assert "serving.standby.served_job.promotions" in names
        offenders = [n for n in names if not is_conventional(n)]
        assert offenders == []
