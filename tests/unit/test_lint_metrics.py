"""The metric-name lint gate: static scan + runtime sweep + allowlist."""

from pathlib import Path

from repro.tools.lint_metrics import (
    find_runtime_offenders,
    find_static_offenders,
    main,
)

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


class TestStaticScan:
    def test_library_is_clean(self):
        assert find_static_offenders(SRC_ROOT) == []

    def test_catches_a_bad_literal(self, tmp_path):
        bad = tmp_path / "repro" / "widget.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            'def setup(metrics):\n'
            '    return metrics.counter("widgets_made")\n'
        )
        offenders = find_static_offenders(tmp_path)
        assert len(offenders) == 1
        assert "widget.py:2" in offenders[0]

    def test_conventional_literal_passes(self, tmp_path):
        good = tmp_path / "repro" / "widget.py"
        good.parent.mkdir(parents=True)
        good.write_text(
            'def setup(metrics):\n'
            '    return metrics.counter("core.widget.made")\n'
        )
        assert find_static_offenders(tmp_path) == []

    def test_comments_ignored(self, tmp_path):
        commented = tmp_path / "repro" / "widget.py"
        commented.parent.mkdir(parents=True)
        commented.write_text('# metrics.counter("bad_name")\n')
        assert find_static_offenders(tmp_path) == []


class TestRuntimeSweep:
    def test_full_stack_is_clean(self):
        assert find_runtime_offenders() == []

    def test_allowlist_excuses_names(self):
        # Everything conventional is already clean; prove the allowlist
        # plumbing by checking a fake offender would be excused.
        offenders = find_runtime_offenders(frozenset({"scratch_name"}))
        assert "scratch_name" not in offenders


class TestMain:
    def test_clean_run_exits_zero(self, capsys):
        assert main([str(SRC_ROOT)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_allow_flag_parses(self, capsys):
        assert main(["--allow", "scratch_name", str(SRC_ROOT)]) == 0

    def test_allow_flag_requires_value(self, capsys):
        assert main(["--allow"]) == 2

    def test_dirty_tree_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "widget.py"
        bad.parent.mkdir(parents=True)
        bad.write_text('c = metrics.histogram("oops")\n')
        assert main([str(tmp_path)]) == 1
        assert "widget.py" in capsys.readouterr().out
