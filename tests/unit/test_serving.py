"""Unit tests for the state-serving read path (router / server / standby).

The serving subsystem's contract has three load-bearing pieces:

* routing agrees byte-for-byte with the producer's hash partitioner, so a
  key's query always lands on the shard that stored it;
* every response reports who served it and how stale it may be;
* standby replicas converge on the primary's state from the changelog
  alone — including through a retention storm (the reseat regression).
"""

import dataclasses

import pytest

from repro.chaos.failpoints import registry
from repro.common.clock import SimClock
from repro.common.errors import MessagingError, ServingError
from repro.common.partitioning import partition_for_key
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.messaging.topic import LogConfig, RetentionConfig, TopicConfig
from repro.processing.job import JobConfig, JobRunner, StoreConfig
from repro.processing.state import changelog_topic_name
from repro.serving import (
    CONSISTENCY_BOUNDED,
    CONSISTENCY_SNAPSHOT,
    StandbyReplica,
    StateQueryRouter,
    StateServer,
)


@pytest.fixture(autouse=True)
def clean_failpoints():
    registry().disarm_all()
    yield
    registry().disarm_all()


class CountingTask:
    def init(self, context):
        self.store = context.store("counts")

    def process(self, record, collector):
        self.store.put(record.key, (self.store.get(record.key) or 0) + 1)


def make_job(partitions=2, standbys=0, records=40, keys=8, store_type="memory"):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=1, clock=clock)
    cluster.create_topic("in", num_partitions=partitions, replication_factor=1)
    producer = Producer(cluster)
    for i in range(records):
        producer.send("in", {"i": i}, key=f"k{i % keys}")
    runner = JobRunner(
        JobConfig(
            name="served",
            inputs=["in"],
            task_factory=CountingTask,
            stores=[StoreConfig("counts", store_type=store_type)],
            num_standby_replicas=standbys,
        ),
        cluster,
    )
    runner.run_until_idle()
    runner.checkpoint()
    return cluster, runner, producer


def direct_read(runner, key):
    """What the owning task's raw store holds for ``key`` right now."""
    task_id = partition_for_key(key, runner.num_tasks)
    return runner.task(task_id).stores["counts"].get(key)


class TestRouting:
    def test_routing_agrees_with_producer_partitioner(self):
        _cluster, runner, _producer = make_job(partitions=3)
        router = StateQueryRouter(runner)
        for i in range(50):
            key = f"key-{i}"
            assert router.task_for_key(key) == partition_for_key(
                key, runner.num_tasks
            )

    def test_routed_get_matches_direct_store_read(self):
        _cluster, runner, _producer = make_job(partitions=3, records=60, keys=10)
        router = StateQueryRouter(runner)
        for i in range(10):
            key = f"k{i}"
            result = router.get("counts", key)
            assert result.value == direct_read(runner, key)
            assert result.found is True
            assert result.served_by == "primary"
            assert result.staleness_records == 0
            assert result.task_id == router.task_for_key(key)

    def test_missing_key_reports_not_found(self):
        _cluster, runner, _producer = make_job()
        result = StateQueryRouter(runner).get("counts", "nope")
        assert result.found is False
        assert result.value is None

    def test_out_of_range_task_rejected(self):
        _cluster, runner, _producer = make_job(partitions=2)
        router = StateQueryRouter(runner)
        with pytest.raises(ServingError):
            router.server(2)
        with pytest.raises(ServingError):
            StateServer(runner, -1)

    def test_unknown_store_rejected(self):
        _cluster, runner, _producer = make_job()
        with pytest.raises(ServingError) as exc:
            StateQueryRouter(runner).get("tables", "k1")
        assert "counts" in str(exc.value)  # names the known stores

    def test_unknown_consistency_mode_rejected(self):
        _cluster, runner, _producer = make_job()
        with pytest.raises(ServingError):
            StateQueryRouter(runner).get("counts", "k1", consistency="linear")

    def test_query_result_is_frozen(self):
        _cluster, runner, _producer = make_job()
        result = StateQueryRouter(runner).get("counts", "k1")
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.value = 99

    def test_latency_accounts_probe_and_response(self):
        _cluster, runner, _producer = make_job()
        result = StateQueryRouter(runner).get("counts", "k1")
        assert result.latency > 0.0


class TestScatterGather:
    def test_range_merges_all_shards_in_key_order(self):
        _cluster, runner, _producer = make_job(partitions=3, records=60, keys=10)
        expected = sorted(
            (
                pair
                for instance in runner.tasks()
                for pair in instance.stores["counts"].items()
            ),
            key=lambda kv: repr(kv[0]),
        )
        result = StateQueryRouter(runner).range("counts")
        assert list(result.value) == expected
        assert result.task_id == -1

    def test_range_respects_bounds(self):
        _cluster, runner, _producer = make_job(partitions=2, records=60, keys=10)
        result = StateQueryRouter(runner).range("counts", "k2", "k6")
        keys = [k for k, _v in result.value]
        assert keys == ["k2", "k3", "k4", "k5"]

    def test_approximate_count_sums_shards(self):
        _cluster, runner, _producer = make_job(partitions=3, records=60, keys=10)
        result = StateQueryRouter(runner).approximate_count("counts")
        assert result.value == sum(
            len(instance.stores["counts"].store) for instance in runner.tasks()
        )
        assert result.value == 10

    def test_works_over_lsm_stores(self):
        _cluster, runner, _producer = make_job(store_type="lsm")
        router = StateQueryRouter(runner)
        assert router.get("counts", "k1").value == direct_read(runner, "k1")
        assert router.approximate_count("counts").value == 8


class TestStaleReads:
    def test_stale_read_comes_from_standby_after_checkpoint(self):
        _cluster, runner, _producer = make_job(standbys=2)
        router = StateQueryRouter(runner)
        fresh = router.get("counts", "k1")
        stale = router.get("counts", "k1", allow_stale=True)
        assert stale.served_by == "standby"
        # Standbys caught up at the checkpoint, so no staleness right now.
        assert stale.staleness_records == 0
        assert stale.value == fresh.value

    def test_staleness_reported_between_checkpoints(self):
        _cluster, runner, producer = make_job(standbys=1, keys=4)
        router = StateQueryRouter(runner)
        before = router.get("counts", "k1", allow_stale=True).value
        for _ in range(8):
            producer.send("in", {"x": 1}, key="k1")
        runner.run_until_idle()  # processed + changelogged, NOT checkpointed
        stale = router.get("counts", "k1", allow_stale=True)
        assert stale.served_by == "standby"
        assert stale.staleness_records > 0
        assert stale.value == before  # the standby has not seen the tail
        assert router.get("counts", "k1").value == before + 8
        runner.checkpoint()  # standbys catch up at the boundary
        assert router.get("counts", "k1", allow_stale=True).value == before + 8

    def test_allow_stale_without_standbys_serves_primary(self):
        _cluster, runner, _producer = make_job(standbys=0)
        result = StateQueryRouter(runner).get("counts", "k1", allow_stale=True)
        assert result.served_by == "primary"

    def test_router_counts_queries_and_stale_serves(self):
        cluster, runner, _producer = make_job(standbys=1)
        router = StateQueryRouter(runner)
        router.get("counts", "k1")
        router.get("counts", "k1", allow_stale=True)
        metrics = cluster.metrics
        assert metrics.counter("serving.router.served.queries").value == 2
        assert metrics.counter("serving.router.served.stale_served").value == 1


class TestSnapshotReads:
    def test_snapshot_equals_live_at_checkpoint(self):
        _cluster, runner, _producer = make_job()
        router = StateQueryRouter(runner)
        live = router.get("counts", "k1")
        snap = router.get("counts", "k1", consistency=CONSISTENCY_SNAPSHOT)
        assert snap.served_by == "snapshot"
        assert snap.value == live.value

    def test_snapshot_pins_to_last_checkpoint(self):
        _cluster, runner, producer = make_job(keys=4)
        router = StateQueryRouter(runner)
        at_checkpoint = router.get("counts", "k1").value
        for _ in range(6):
            producer.send("in", {"x": 1}, key="k1")
        runner.run_until_idle()
        snap = router.get("counts", "k1", consistency=CONSISTENCY_SNAPSHOT)
        live = router.get("counts", "k1", consistency=CONSISTENCY_BOUNDED)
        assert snap.value == at_checkpoint  # nothing uncommitted is served
        assert snap.staleness_records > 0
        assert live.value == at_checkpoint + 6
        runner.checkpoint()
        snap = router.get("counts", "k1", consistency=CONSISTENCY_SNAPSHOT)
        assert snap.value == at_checkpoint + 6
        assert snap.staleness_records == 0

    def test_snapshot_needs_a_changelog(self):
        clock = SimClock()
        cluster = MessagingCluster(num_brokers=1, clock=clock)
        cluster.create_topic("in", num_partitions=1, replication_factor=1)
        Producer(cluster).send("in", {"x": 1}, key="k")
        runner = JobRunner(
            JobConfig(
                name="nolog",
                inputs=["in"],
                task_factory=CountingTask,
                stores=[StoreConfig("counts", changelog=False)],
            ),
            cluster,
        )
        runner.run_until_idle()
        with pytest.raises(ServingError):
            StateServer(runner, 0).get(
                "counts", "k", consistency=CONSISTENCY_SNAPSHOT
            )


def make_changelog_env(retention=None, segment_messages=100):
    """A bare changelog partition a StandbyReplica can tail directly."""
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=1, clock=clock)
    kwargs = {}
    if retention is not None:
        kwargs["retention"] = RetentionConfig(retention_seconds=retention)
    cluster.create_topic(
        TopicConfig(
            name=changelog_topic_name("j", "s"),
            num_partitions=1,
            replication_factor=1,
            log=LogConfig(segment_max_messages=segment_messages),
            **kwargs,
        )
    )
    return clock, cluster, Producer(cluster)


class TestStandbyReplica:
    def test_tail_applies_puts_and_tombstones(self):
        _clock, cluster, producer = make_changelog_env()
        topic = changelog_topic_name("j", "s")
        for i in range(10):
            producer.send(topic, i, key=f"k{i % 3}")
        producer.send(topic, None, key="k0")  # tombstone
        replica = StandbyReplica(cluster, "j", "s", 0)
        stats = replica.catch_up()
        assert stats.records_applied == 11
        assert replica.lag() == 0
        assert replica.store.get("k0") is None
        assert replica.store.get("k1") == 7
        assert replica.store.get("k2") == 8

    def test_incremental_catch_up(self):
        _clock, cluster, producer = make_changelog_env()
        topic = changelog_topic_name("j", "s")
        for i in range(6):
            producer.send(topic, i, key=f"k{i}")
        replica = StandbyReplica(cluster, "j", "s", 0)
        assert replica.catch_up(max_records=4).records_applied == 4
        assert replica.lag() == 2
        assert replica.catch_up().records_applied == 2
        assert replica.lag() == 0

    def test_limit_offset_caps_the_tail(self):
        _clock, cluster, producer = make_changelog_env()
        topic = changelog_topic_name("j", "s")
        for i in range(8):
            producer.send(topic, i, key=f"k{i}")
        replica = StandbyReplica(cluster, "j", "s", 0)
        replica.catch_up(limit_offset=5)
        assert replica.position == 5
        assert replica.store.get("k4") == 4
        assert replica.store.get("k5") is None

    def test_catch_up_does_not_advance_the_clock(self):
        clock, cluster, producer = make_changelog_env()
        topic = changelog_topic_name("j", "s")
        for i in range(20):
            producer.send(topic, i, key=f"k{i}")
        before = clock.now()
        StandbyReplica(cluster, "j", "s", 0).catch_up()
        assert clock.now() == before

    def test_reseat_after_retention_storm(self):
        """Regression: a slow standby must survive the changelog shrinking.

        Retention deletes segments the replica had not read yet; the next
        catch-up must reseat at the surviving head (clear + replay), not
        crash — and must account the offsets it had to jump over.
        """
        clock, cluster, producer = make_changelog_env(
            retention=5.0, segment_messages=5
        )
        topic = changelog_topic_name("j", "s")
        for i in range(20):
            producer.send(topic, i, key=f"k{i % 4}")
        replica = StandbyReplica(cluster, "j", "s", 0)
        replica.catch_up(max_records=3)  # seated near offset 0, then stalls
        clock.advance(60.0)
        for i in range(20, 40):
            producer.send(topic, i, key=f"k{i % 4}")
        cluster.tick(1.0)  # retention pass deletes the old segments
        from repro.common.records import TopicPartition

        tp = TopicPartition(topic, 0)
        head = cluster.beginning_offset(tp)
        assert head > 3  # the storm actually outran the replica
        stats = replica.catch_up()
        assert stats.reseated is True
        assert stats.records_skipped == head - 3
        assert replica.reseats == 1
        assert replica.lag() == 0
        # The rebuilt store equals a fresh replay of the surviving head.
        fresh = StandbyReplica(cluster, "j", "s", 0, replica_id=1)
        fresh.catch_up()
        assert dict(replica.store.items()) == dict(fresh.store.items())


class TestPromotion:
    def test_recover_promotes_and_matches_state(self):
        _cluster, runner, _producer = make_job(standbys=1, partitions=2)
        snapshot = [
            dict(instance.stores["counts"].items())
            for instance in runner.tasks()
        ]
        runner.crash()
        report = runner.recover()
        assert report.standby_promotions() == 2  # one per task
        assert [
            dict(instance.stores["counts"].items())
            for instance in runner.tasks()
        ] == snapshot

    def test_promoted_tail_is_cheaper_than_cold_restore(self):
        _cluster, warm, _p1 = make_job(standbys=1, records=200, keys=8)
        _cluster2, cold, _p2 = make_job(standbys=0, records=200, keys=8)
        warm.crash()
        warm_report = warm.recover()
        cold.crash()
        cold_report = cold.recover()
        assert warm_report.records_replayed < cold_report.records_replayed
        assert warm_report.simulated_seconds < cold_report.simulated_seconds

    def test_promotion_failure_falls_back_to_cold_restore(self):
        _cluster, runner, _producer = make_job(standbys=1, partitions=2)
        snapshot = [
            dict(instance.stores["counts"].items())
            for instance in runner.tasks()
        ]
        runner.crash()
        with registry().scoped(
            "serving.promote",
            lambda **ctx: (_ for _ in ()).throw(MessagingError("chaos")),
        ):
            report = runner.recover()
        assert report.standby_promotions() == 0
        assert all(e.source == "changelog" for e in report.entries)
        assert [
            dict(instance.stores["counts"].items())
            for instance in runner.tasks()
        ] == snapshot

    def test_catch_up_failure_during_promotion_falls_back(self):
        _cluster, runner, _producer = make_job(standbys=1, partitions=2)
        snapshot = [
            dict(instance.stores["counts"].items())
            for instance in runner.tasks()
        ]
        runner.crash()
        with registry().scoped(
            "serving.catch_up",
            lambda **ctx: (_ for _ in ()).throw(MessagingError("chaos")),
        ):
            report = runner.recover()
        assert report.standby_promotions() == 0
        assert [
            dict(instance.stores["counts"].items())
            for instance in runner.tasks()
        ] == snapshot

    def test_standby_set_replenished_after_promotion(self):
        _cluster, runner, _producer = make_job(standbys=2)
        runner.crash()
        runner.recover()
        runner.checkpoint()
        for task_id in range(runner.num_tasks):
            sets = runner.standby_replicas(task_id)
            assert len(sets) == 2
        # The replacement standby is warm again and can serve reads.
        result = StateQueryRouter(runner).get("counts", "k1", allow_stale=True)
        assert result.served_by == "standby"
        assert result.value == direct_read(runner, "k1")
