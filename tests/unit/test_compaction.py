"""Unit tests for log compaction (§4.1)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.storage.compaction import CompactionConfig, LogCompactor
from repro.storage.log import LogConfig, PartitionLog


def keyed_log(clock: SimClock, updates=30, keys=3, per_segment=5) -> PartitionLog:
    log = PartitionLog(
        "t-0", LogConfig(segment_max_messages=per_segment), clock=clock
    )
    for i in range(updates):
        log.append(f"k{i % keys}", {"rev": i}, timestamp=clock.now())
        clock.advance(0.1)
    return log


class TestConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            CompactionConfig(tombstone_retention_seconds=-1)
        with pytest.raises(ConfigError):
            CompactionConfig(min_dirty_ratio=1.5)


class TestCompaction:
    def test_keeps_only_latest_per_key_in_sealed(self):
        clock = SimClock()
        log = keyed_log(clock)
        LogCompactor(clock=clock).compact(log)
        sealed_msgs = [
            m for s in log.sealed_segments() for m in s.messages()
        ]
        # Latest of every key lives in the active segment (keys cycle), so
        # every sealed record is superseded.
        assert sealed_msgs == []

    def test_survivors_keep_original_offsets(self):
        clock = SimClock()
        log = PartitionLog("t-0", LogConfig(segment_max_messages=4), clock=clock)
        for i, key in enumerate(["a", "b", "a", "b", "c", "c", "d", "d", "x", "y"]):
            log.append(key, i)
        LogCompactor(clock=clock).compact(log)
        offsets = [m.offset for m in log.all_messages()]
        assert offsets == sorted(offsets)
        assert set(offsets) <= set(range(10))

    def test_active_segment_never_compacted(self):
        clock = SimClock()
        log = PartitionLog("t-0", LogConfig(segment_max_messages=100), clock=clock)
        for i in range(10):
            log.append("same-key", i)
        result = LogCompactor(clock=clock).compact(log)
        assert result.messages_removed == 0
        assert log.message_count == 10

    def test_latest_value_readable_after_compaction(self):
        clock = SimClock()
        log = keyed_log(clock, updates=30, keys=3)
        LogCompactor(clock=clock).compact(log)
        values = {m.key: m.value["rev"] for m in log.all_messages()}
        assert values == {"k0": 27, "k1": 28, "k2": 29}

    def test_bytes_reclaimed_reported(self):
        clock = SimClock()
        log = keyed_log(clock)
        before = log.size_bytes
        result = LogCompactor(clock=clock).compact(log)
        assert result.bytes_reclaimed == before - log.size_bytes
        assert result.bytes_reclaimed > 0

    def test_no_sealed_segments_noop(self):
        clock = SimClock()
        log = PartitionLog("t-0", LogConfig(), clock=clock)
        log.append("k", "v")
        result = LogCompactor(clock=clock).compact(log)
        assert not result.ran

    def test_idempotent(self):
        clock = SimClock()
        log = keyed_log(clock)
        LogCompactor(clock=clock).compact(log)
        second = LogCompactor(clock=clock).compact(log)
        assert second.messages_removed == 0


class TestTombstones:
    def test_tombstone_supersedes_older_values(self):
        clock = SimClock()
        log = PartitionLog("t-0", LogConfig(segment_max_messages=2), clock=clock)
        log.append("k", "v1", timestamp=0.0)
        log.append("k", "v2", timestamp=0.0)
        log.append("k", None, timestamp=0.0)  # tombstone
        log.append("other", "x", timestamp=0.0)
        log.append("pad", "y", timestamp=0.0)  # seals the tombstone segment
        compactor = LogCompactor(
            CompactionConfig(tombstone_retention_seconds=100.0), clock=clock
        )
        compactor.compact(log)
        sealed_keys = {
            m.key: m.value for s in log.sealed_segments() for m in s.messages()
        }
        assert "v1" not in sealed_keys.values()
        assert sealed_keys.get("k") is None  # tombstone retained (young)

    def test_old_tombstones_dropped_entirely(self):
        clock = SimClock()
        log = PartitionLog("t-0", LogConfig(segment_max_messages=2), clock=clock)
        log.append("k", "v1", timestamp=0.0)
        log.append("k", None, timestamp=0.0)
        log.append("pad1", "x", timestamp=0.0)
        log.append("pad2", "y", timestamp=0.0)
        log.append("pad3", "z", timestamp=0.0)
        clock.advance(1000.0)
        compactor = LogCompactor(
            CompactionConfig(tombstone_retention_seconds=10.0), clock=clock
        )
        result = compactor.compact(log)
        assert result.tombstones_dropped == 1
        assert "k" not in {m.key for m in log.all_messages()}


class TestDirtyRatio:
    def test_clean_log_skipped_below_threshold(self):
        clock = SimClock()
        log = PartitionLog("t-0", LogConfig(segment_max_messages=3), clock=clock)
        for i in range(9):
            log.append(f"unique-{i}", i)  # nothing superseded
        compactor = LogCompactor(
            CompactionConfig(min_dirty_ratio=0.5), clock=clock
        )
        result = compactor.compact(log)
        assert not result.ran

    def test_dirty_log_compacted_above_threshold(self):
        clock = SimClock()
        log = keyed_log(clock)  # heavily superseded
        compactor = LogCompactor(
            CompactionConfig(min_dirty_ratio=0.5), clock=clock
        )
        result = compactor.compact(log)
        assert result.ran
        assert result.messages_removed > 0
