"""Unit tests for the messaging cluster facade."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    BrokerUnavailableError,
    ConfigError,
    NotEnoughReplicasError,
    TopicAlreadyExistsError,
    TopicNotFoundError,
)
from repro.common.records import TopicPartition
from repro.messaging.cluster import ACKS_ALL, ACKS_LEADER, ACKS_NONE, MessagingCluster
from repro.messaging.offset_manager import OFFSETS_TOPIC
from repro.messaging.topic import TopicConfig


def make_cluster(brokers=3, **kwargs) -> MessagingCluster:
    return MessagingCluster(num_brokers=brokers, clock=SimClock(), **kwargs)


def entries(n):
    return [(f"k{i}", {"i": i}, None, {}) for i in range(n)]


class TestTopicAdmin:
    def test_create_by_name(self):
        cluster = make_cluster()
        cluster.create_topic("events", num_partitions=4)
        assert "events" in cluster.topics()
        assert len(cluster.partitions_of("events")) == 4

    def test_create_by_config(self):
        cluster = make_cluster()
        cluster.create_topic(TopicConfig(name="events", num_partitions=2))
        assert len(cluster.partitions_of("events")) == 2

    def test_config_plus_kwargs_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ConfigError):
            cluster.create_topic(TopicConfig(name="t"), num_partitions=2)

    def test_duplicate_rejected(self):
        cluster = make_cluster()
        cluster.create_topic("t")
        with pytest.raises(TopicAlreadyExistsError):
            cluster.create_topic("t")

    def test_over_replication_rejected(self):
        cluster = make_cluster(brokers=2)
        with pytest.raises(ConfigError):
            cluster.create_topic("t", replication_factor=3)

    def test_unknown_topic_rejected(self):
        cluster = make_cluster()
        with pytest.raises(TopicNotFoundError):
            cluster.topic_config("nope")

    def test_replicas_spread_across_brokers(self):
        cluster = make_cluster(brokers=3)
        cluster.create_topic("t", num_partitions=3, replication_factor=2)
        leaders = {cluster.leader_of("t", p) for p in range(3)}
        assert len(leaders) == 3  # round-robin placement

    def test_offsets_topic_exists(self):
        cluster = make_cluster()
        assert OFFSETS_TOPIC in cluster.topics()
        assert cluster.topic_config(OFFSETS_TOPIC).compacted


class TestProduceFetch:
    def test_roundtrip(self):
        cluster = make_cluster()
        cluster.create_topic("t", replication_factor=1)
        ack = cluster.produce("t", 0, entries(3))
        assert ack.base_offset == 0
        assert ack.last_offset == 2
        records, latency = cluster.fetch("t", 0, 0)
        assert [r.value["i"] for r in records] == [0, 1, 2]
        assert records[0].topic == "t"
        assert latency > 0

    def test_unknown_acks_rejected(self):
        cluster = make_cluster()
        cluster.create_topic("t")
        with pytest.raises(ConfigError):
            cluster.produce("t", 0, entries(1), acks="quorum")

    def test_acks_latency_ordering(self):
        """§4.3: more durability, more latency."""
        cluster = make_cluster()
        cluster.create_topic("t", replication_factor=3)
        none_ack = cluster.produce("t", 0, entries(1), acks=ACKS_NONE)
        leader_ack = cluster.produce("t", 0, entries(1), acks=ACKS_LEADER)
        all_ack = cluster.produce("t", 0, entries(1), acks=ACKS_ALL)
        assert none_ack.latency < leader_ack.latency < all_ack.latency

    def test_acks_all_commits_immediately(self):
        cluster = make_cluster()
        cluster.create_topic("t", replication_factor=3)
        cluster.produce("t", 0, entries(3), acks=ACKS_ALL)
        records, _ = cluster.fetch("t", 0, 0)
        assert len(records) == 3  # visible without any tick

    def test_acks_leader_needs_replication_tick(self):
        cluster = make_cluster()
        cluster.create_topic("t", replication_factor=3)
        cluster.produce("t", 0, entries(3), acks=ACKS_LEADER)
        records, _ = cluster.fetch("t", 0, 0)
        assert records == []  # HW not advanced yet
        cluster.tick(0.0)
        records, _ = cluster.fetch("t", 0, 0)
        assert len(records) == 3

    def test_min_insync_enforced(self):
        cluster = make_cluster(brokers=3)
        cluster.create_topic(
            "t", replication_factor=3, min_insync_replicas=3
        )
        leader = cluster.leader_of("t", 0)
        others = [b for b in range(3) if b != leader]
        cluster.kill_broker(others[0])
        with pytest.raises(NotEnoughReplicasError):
            cluster.produce("t", 0, entries(1), acks=ACKS_ALL)
        # acks=leader still works: availability for less durable writes.
        ack = cluster.produce("t", 0, entries(1), acks=ACKS_LEADER)
        assert ack.base_offset >= 0

    def test_produce_to_offline_partition_rejected(self):
        cluster = make_cluster(brokers=1)
        cluster.create_topic("t", replication_factor=1)
        cluster.kill_broker(0)
        with pytest.raises(BrokerUnavailableError):
            cluster.produce("t", 0, entries(1))


class TestAcksAllOfflineIsr:
    """Regression: acks=all must not silently skip crashed ISR members.

    An unclean crash (broker dead, session not yet expired) leaves the
    broker in the ISR.  Pre-fix, ``_replicate_synchronously`` skipped it and
    acked anyway — a failover onto that follower then lost acked data.
    """

    def make_partition(self, min_insync=2):
        cluster = make_cluster(brokers=3)
        cluster.create_topic(
            "t", replication_factor=3, min_insync_replicas=min_insync
        )
        leader = cluster.leader_of("t", 0)
        followers = [b for b in range(3) if b != leader]
        return cluster, leader, followers

    def test_offline_isr_member_is_shrunk_not_skipped(self):
        cluster, leader, followers = self.make_partition()
        # Unclean crash: session stays alive, follower stays in the ISR.
        cluster.broker(followers[0]).shutdown()
        tp = TopicPartition("t", 0)
        assert followers[0] in cluster.controller.partition_state(tp).isr
        ack = cluster.produce("t", 0, entries(2), acks=ACKS_ALL)
        isr = cluster.controller.partition_state(tp).isr
        assert followers[0] not in isr
        # Every remaining ISR member really has the acked records.
        for broker_id in isr:
            replica = cluster.broker(broker_id).replica(tp)
            assert replica.log_end_offset > ack.last_offset

    def test_shrink_below_min_insync_raises(self):
        cluster, leader, followers = self.make_partition(min_insync=2)
        for follower in followers:
            cluster.broker(follower).shutdown()
        with pytest.raises(NotEnoughReplicasError):
            cluster.produce("t", 0, entries(1), acks=ACKS_ALL)

    def test_recovered_follower_catches_up_after_shrink(self):
        cluster, leader, followers = self.make_partition()
        cluster.broker(followers[0]).shutdown()
        cluster.produce("t", 0, entries(3), acks=ACKS_ALL)
        # Session finally expires, machine comes back, replication resumes.
        cluster.controller.broker_failed(followers[0])
        cluster.restart_broker(followers[0])
        cluster.run_until_replicated()
        tp = TopicPartition("t", 0)
        replica = cluster.broker(followers[0]).replica(tp)
        assert replica.log_end_offset == 3
        assert followers[0] in cluster.controller.partition_state(tp).isr


class TestOffsets:
    def test_beginning_and_end(self):
        cluster = make_cluster()
        cluster.create_topic("t", replication_factor=1)
        tp = TopicPartition("t", 0)
        assert cluster.beginning_offset(tp) == 0
        assert cluster.end_offset(tp) == 0
        cluster.produce("t", 0, entries(4))
        assert cluster.end_offset(tp) == 4
        assert cluster.log_end_offset(tp) == 4

    def test_offset_for_timestamp(self):
        clock = SimClock()
        cluster = MessagingCluster(num_brokers=1, clock=clock)
        cluster.create_topic("t", replication_factor=1)
        for i in range(5):
            cluster.produce("t", 0, [(None, i, float(i * 10), {})])
        tp = TopicPartition("t", 0)
        assert cluster.offset_for_timestamp(tp, 0.0) == 0
        assert cluster.offset_for_timestamp(tp, 25.0) == 3
        assert cluster.offset_for_timestamp(tp, 100.0) is None


class TestFailover:
    def test_kill_moves_leadership(self):
        cluster = make_cluster()
        cluster.create_topic("t", replication_factor=3)
        old_leader = cluster.leader_of("t", 0)
        cluster.produce("t", 0, entries(5), acks=ACKS_ALL)
        cluster.kill_broker(old_leader)
        new_leader = cluster.leader_of("t", 0)
        assert new_leader is not None and new_leader != old_leader
        # Committed data survives the failover.
        records, _ = cluster.fetch("t", 0, 0)
        assert len(records) == 5

    def test_kill_is_idempotent(self):
        cluster = make_cluster()
        cluster.kill_broker(1)
        cluster.kill_broker(1)
        assert 1 not in cluster.controller.live_brokers()

    def test_restart_rejoins_isr_after_catchup(self):
        cluster = make_cluster()
        cluster.create_topic("t", replication_factor=3)
        tp = TopicPartition("t", 0)
        victim = [b for b in range(3) if b != cluster.leader_of("t", 0)][0]
        cluster.kill_broker(victim)
        cluster.produce("t", 0, entries(10), acks=ACKS_LEADER)
        cluster.restart_broker(victim)
        cluster.run_until_replicated()
        assert victim in cluster.controller.isr_for(tp)

    def test_unknown_broker_rejected(self):
        with pytest.raises(ConfigError):
            make_cluster().broker(99)


class TestStats:
    def test_stats_shape(self):
        cluster = make_cluster()
        cluster.create_topic("t", num_partitions=2, replication_factor=2)
        cluster.produce("t", 0, entries(3))
        stats = cluster.stats()
        assert stats["brokers"] == 3
        assert stats["topics"] == 2  # includes the offsets topic
        assert stats["partitions"] == 3
        assert stats["replicas"] == 2 * 2 + 3  # topic replicas + offsets rf=3
        assert stats["messages_in"] == 3
