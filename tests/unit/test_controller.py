"""Unit tests for the cluster controller (leader election, ISR)."""

import pytest

from repro.cluster.controller import ClusterController
from repro.cluster.coordinator import Coordinator
from repro.common.errors import ConfigError, NoNodeError
from repro.common.records import TopicPartition

TP = TopicPartition("t", 0)


def controller_with_brokers(n=3, **kwargs) -> ClusterController:
    controller = ClusterController(Coordinator(), **kwargs)
    for broker_id in range(n):
        controller.register_broker(broker_id)
    return controller


class TestMembership:
    def test_register_tracks_liveness(self):
        controller = controller_with_brokers(3)
        assert controller.live_brokers() == {0, 1, 2}

    def test_duplicate_registration_rejected(self):
        controller = controller_with_brokers(1)
        with pytest.raises(ConfigError):
            controller.register_broker(0)

    def test_first_broker_becomes_controller(self):
        controller = controller_with_brokers(3)
        assert controller.controller_id == 0

    def test_controller_failover(self):
        controller = controller_with_brokers(3)
        controller.broker_failed(0)
        assert controller.controller_id == 1

    def test_unknown_broker_failure_is_noop(self):
        controller = controller_with_brokers(2)
        assert controller.broker_failed(99) == []


class TestPartitionLifecycle:
    def test_create_partition_assigns_leader_and_isr(self):
        controller = controller_with_brokers(3)
        state = controller.create_partition(TP, [1, 2, 0])
        assert state.leader == 1  # preferred replica = first
        assert state.isr == [1, 2, 0]
        assert state.epoch == 1

    def test_duplicate_partition_rejected(self):
        controller = controller_with_brokers(3)
        controller.create_partition(TP, [0])
        with pytest.raises(ConfigError):
            controller.create_partition(TP, [1])

    def test_empty_or_duplicate_replicas_rejected(self):
        controller = controller_with_brokers(3)
        with pytest.raises(ConfigError):
            controller.create_partition(TP, [])
        with pytest.raises(ConfigError):
            controller.create_partition(TP, [0, 0])

    def test_dead_replicas_rejected(self):
        controller = controller_with_brokers(2)
        with pytest.raises(ConfigError):
            controller.create_partition(TP, [0, 7])

    def test_unknown_partition_queries_rejected(self):
        controller = controller_with_brokers(1)
        with pytest.raises(NoNodeError):
            controller.leader_for(TP)


class TestFailover:
    def test_leader_death_promotes_isr_member(self):
        controller = controller_with_brokers(3)
        controller.create_partition(TP, [0, 1, 2])
        affected = controller.broker_failed(0)
        assert TP in affected
        assert controller.leader_for(TP) == 1
        assert controller.epoch_for(TP) == 2
        assert 0 not in controller.isr_for(TP)

    def test_follower_death_only_shrinks_isr(self):
        controller = controller_with_brokers(3)
        controller.create_partition(TP, [0, 1, 2])
        controller.broker_failed(2)
        assert controller.leader_for(TP) == 0
        assert controller.isr_for(TP) == [0, 1]

    def test_n_minus_one_failures_tolerated(self):
        """§4.3: N brokers in the ISR tolerate N-1 failures."""
        controller = controller_with_brokers(3)
        controller.create_partition(TP, [0, 1, 2])
        controller.broker_failed(0)
        controller.broker_failed(1)
        assert controller.leader_for(TP) == 2
        assert controller.isr_for(TP) == [2]

    def test_all_replicas_dead_goes_offline(self):
        controller = controller_with_brokers(3)
        controller.create_partition(TP, [0, 1])
        controller.broker_failed(0)
        controller.broker_failed(1)
        assert controller.leader_for(TP) is None
        assert controller.offline_partitions() == [TP]

    def test_epoch_increases_monotonically(self):
        controller = controller_with_brokers(3)
        controller.create_partition(TP, [0, 1, 2])
        epochs = [controller.epoch_for(TP)]
        controller.broker_failed(0)
        epochs.append(controller.epoch_for(TP))
        controller.broker_failed(1)
        epochs.append(controller.epoch_for(TP))
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == 3


class TestUncleanElection:
    def test_clean_mode_stays_offline_without_isr(self):
        controller = controller_with_brokers(3)
        controller.create_partition(TP, [0, 1])
        # Shrink follower 1 out of the ISR, then kill the leader: no ISR left.
        controller.shrink_isr(TP, 1)
        controller.broker_failed(0)
        assert controller.leader_for(TP) is None

    def test_unclean_mode_elects_any_live_replica(self):
        controller = controller_with_brokers(3, allow_unclean_election=True)
        controller.create_partition(TP, [0, 1])
        controller.shrink_isr(TP, 1)
        controller.broker_failed(0)
        assert controller.leader_for(TP) == 1  # out-of-sync but available


class TestRecovery:
    def test_recovered_broker_is_live_again(self):
        controller = controller_with_brokers(3)
        controller.broker_failed(2)
        controller.broker_recovered(2)
        assert 2 in controller.live_brokers()

    def test_offline_partition_restored_by_isr_member(self):
        controller = controller_with_brokers(2)
        controller.create_partition(TP, [0])
        controller.broker_failed(0)
        assert controller.leader_for(TP) is None
        controller.broker_recovered(0)
        assert controller.leader_for(TP) == 0


class TestIsrMaintenance:
    def test_shrink_and_expand(self):
        controller = controller_with_brokers(3)
        controller.create_partition(TP, [0, 1, 2])
        assert controller.shrink_isr(TP, 2) == [0, 1]
        assert controller.expand_isr(TP, 2) == [0, 1, 2]

    def test_shrink_leader_rejected(self):
        controller = controller_with_brokers(3)
        controller.create_partition(TP, [0, 1])
        with pytest.raises(ConfigError):
            controller.shrink_isr(TP, 0)

    def test_expand_non_replica_rejected(self):
        controller = controller_with_brokers(3)
        controller.create_partition(TP, [0, 1])
        with pytest.raises(ConfigError):
            controller.expand_isr(TP, 2)

    def test_expand_dead_broker_rejected(self):
        controller = controller_with_brokers(3)
        controller.create_partition(TP, [0, 1, 2])
        controller.broker_failed(2)
        with pytest.raises(ConfigError):
            controller.expand_isr(TP, 2)

    def test_shrink_is_idempotent(self):
        controller = controller_with_brokers(3)
        controller.create_partition(TP, [0, 1, 2])
        controller.shrink_isr(TP, 2)
        assert controller.shrink_isr(TP, 2) == [0, 1]


class TestListeners:
    def test_leadership_listener_called(self):
        controller = controller_with_brokers(3)
        seen = []
        controller.on_leadership_change(
            lambda tp, leader, epoch, isr: seen.append((tp, leader, epoch))
        )
        controller.create_partition(TP, [0, 1])
        controller.broker_failed(0)
        assert seen == [(TP, 0, 1), (TP, 1, 2)]

    def test_isr_listener_called(self):
        controller = controller_with_brokers(3)
        controller.create_partition(TP, [0, 1, 2])
        seen = []
        controller.on_isr_change(lambda tp, isr: seen.append(list(isr)))
        controller.shrink_isr(TP, 2)
        assert seen == [[0, 1]]
