"""Unit tests for feed access control (§2.1)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.access import (
    OP_CREATE,
    OP_READ,
    OP_WRITE,
    AccessController,
    AclEntry,
    AuthorizationError,
)
from repro.core.etl import MapTask
from repro.core.liquid import Liquid
from repro.processing.job import JobConfig


class TestAclEntry:
    def test_exact_match(self):
        entry = AclEntry("team-a", OP_READ, "events")
        assert entry.matches(OP_READ, "events")
        assert not entry.matches(OP_READ, "other")
        assert not entry.matches(OP_WRITE, "events")

    def test_prefix_match(self):
        entry = AclEntry("team-a", OP_READ, "metrics-*")
        assert entry.matches(OP_READ, "metrics-cpu")
        assert not entry.matches(OP_READ, "metric")

    def test_global_wildcard(self):
        entry = AclEntry("admin", OP_CREATE, "*")
        assert entry.matches(OP_CREATE, "anything")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"principal": "", "operation": OP_READ},
            {"principal": "p", "operation": "admin"},
            {"principal": "p", "operation": OP_READ, "pattern": ""},
        ],
    )
    def test_invalid_entries_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            AclEntry(**kwargs)


class TestAccessController:
    def test_deny_by_default_when_enabled(self):
        acl = AccessController(enabled=True)
        assert not acl.check("team-a", OP_READ, "events")

    def test_allow_all_when_disabled(self):
        acl = AccessController(enabled=False)
        assert acl.check("anyone", OP_WRITE, "anything")
        assert acl.check(None, OP_WRITE, "anything")

    def test_grant_and_check(self):
        acl = AccessController()
        acl.grant("team-a", OP_READ, "events")
        assert acl.check("team-a", OP_READ, "events")
        assert not acl.check("team-b", OP_READ, "events")

    def test_multiple_operations_in_one_grant(self):
        acl = AccessController()
        acl.grant("team-a", [OP_READ, OP_WRITE], "events")
        assert acl.check("team-a", OP_READ, "events")
        assert acl.check("team-a", OP_WRITE, "events")

    def test_revoke(self):
        acl = AccessController()
        acl.grant("team-a", OP_READ, "events")
        assert acl.revoke("team-a", OP_READ, "events")
        assert not acl.check("team-a", OP_READ, "events")
        assert not acl.revoke("team-a", OP_READ, "events")

    def test_anonymous_always_denied(self):
        acl = AccessController()
        acl.grant("team-a", OP_READ)
        assert not acl.check(None, OP_READ, "events")

    def test_authorize_raises_and_counts(self):
        acl = AccessController()
        with pytest.raises(AuthorizationError):
            acl.authorize("team-a", OP_READ, "events")
        assert acl.denials == 1

    def test_grants_for_lists_sorted(self):
        acl = AccessController()
        acl.grant("team-a", OP_WRITE, "b")
        acl.grant("team-a", OP_READ, "a")
        acl.grant("team-b", OP_READ, "a")
        grants = acl.grants_for("team-a")
        assert [(g.operation, g.pattern) for g in grants] == [
            (OP_READ, "a"), (OP_WRITE, "b"),
        ]


class TestLiquidIntegration:
    def _secured(self) -> Liquid:
        liquid = Liquid(num_brokers=1, access_control=True)
        liquid.acl.grant("platform", OP_CREATE, "*")
        liquid.create_feed("events", principal="platform")
        return liquid

    def test_create_feed_requires_grant(self):
        liquid = Liquid(num_brokers=1, access_control=True)
        with pytest.raises(AuthorizationError):
            liquid.create_feed("events", principal="rogue")

    def test_write_requires_grant(self):
        liquid = self._secured()
        liquid.acl.grant("frontend", OP_WRITE, "events")
        allowed = liquid.producer(principal="frontend")
        allowed.send("events", {"ok": True})
        denied = liquid.producer(principal="rogue")
        with pytest.raises(AuthorizationError):
            denied.send("events", {"nope": True})

    def test_read_requires_grant(self):
        liquid = self._secured()
        liquid.acl.grant("analytics", OP_READ, "events")
        allowed = liquid.consumer(group="g", principal="analytics")
        allowed.subscribe(["events"])
        denied = liquid.consumer(group="g2", principal="rogue")
        with pytest.raises(AuthorizationError):
            denied.subscribe(["events"])

    def test_assign_checked_too(self):
        liquid = self._secured()
        denied = liquid.consumer(principal="rogue")
        with pytest.raises(AuthorizationError):
            denied.assign(liquid.cluster.partitions_of("events"))

    def test_job_submission_requires_input_and_output_grants(self):
        liquid = self._secured()
        config = JobConfig(name="j", inputs=["events"],
                           task_factory=lambda: MapTask("derived"))
        with pytest.raises(AuthorizationError):
            liquid.submit_job(config, outputs=["derived"], principal="etl-team")
        liquid.acl.grant("etl-team", OP_READ, "events")
        with pytest.raises(AuthorizationError):
            liquid.submit_job(config, outputs=["derived"], principal="etl-team")
        liquid.acl.grant("etl-team", OP_CREATE, "derived")
        runner = liquid.submit_job(
            config, outputs=["derived"], principal="etl-team"
        )
        assert runner.config.name == "j"

    def test_disabled_acl_changes_nothing(self):
        liquid = Liquid(num_brokers=1)  # access_control=False
        liquid.create_feed("events")
        producer = liquid.producer()
        producer.send("events", 1)
        consumer = liquid.consumer(group="g")
        consumer.subscribe(["events"])

    def test_wrapper_delegates_other_methods(self):
        liquid = self._secured()
        liquid.acl.grant("analytics", OP_READ, "events")
        liquid.acl.grant("frontend", OP_WRITE, "events")
        producer = liquid.producer(principal="frontend")
        producer.send("events", 1)
        assert producer.acks_received == 1  # delegated attribute
        consumer = liquid.consumer(group="g", principal="analytics")
        consumer.subscribe(["events"])
        liquid.tick(0.0)
        batch = consumer.poll(10)  # delegated method
        assert len(batch) == 1
