"""Unit tests for the hardware cost model."""

import pytest

from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import ConfigError


class TestCosts:
    def test_ram_read_proportional_to_bytes(self):
        model = CostModel(ram_bandwidth=1e9)
        assert model.ram_read(1e9) == pytest.approx(1.0)
        assert model.ram_read(5e8) == pytest.approx(0.5)

    def test_disk_sequential_read(self):
        model = CostModel(disk_seq_read_bandwidth=100e6)
        assert model.disk_sequential_read(100e6) == pytest.approx(1.0)

    def test_disk_random_read_includes_seek(self):
        model = CostModel(disk_seek_time=0.01, disk_seq_read_bandwidth=100e6)
        assert model.disk_random_read(0) == pytest.approx(0.01)
        assert model.disk_random_read(100e6) == pytest.approx(1.01)

    def test_random_read_slower_than_sequential(self):
        assert DEFAULT_COST_MODEL.disk_random_read(4096) > (
            DEFAULT_COST_MODEL.disk_sequential_read(4096)
        )

    def test_ram_faster_than_disk(self):
        nbytes = 64 * 1024
        assert DEFAULT_COST_MODEL.ram_read(nbytes) < (
            DEFAULT_COST_MODEL.disk_sequential_read(nbytes)
        )

    def test_network_transfer_includes_rtt(self):
        model = CostModel(network_rtt=0.001, network_bandwidth=1e9)
        assert model.network_transfer(0) == pytest.approx(0.001)
        assert model.network_transfer(1e9) == pytest.approx(1.001)

    def test_oneway_cheaper_than_roundtrip(self):
        assert DEFAULT_COST_MODEL.network_oneway(1000) < (
            DEFAULT_COST_MODEL.network_transfer(1000)
        )

    def test_request_scales_with_messages(self):
        one = DEFAULT_COST_MODEL.request(1)
        many = DEFAULT_COST_MODEL.request(100)
        assert many > one
        assert many - one == pytest.approx(99 * DEFAULT_COST_MODEL.cpu_per_message)

    def test_mr_startup_dwarfs_message_cost(self):
        # The structural fact behind E2: fixed batch overhead is orders of
        # magnitude above per-message streaming cost.
        assert DEFAULT_COST_MODEL.mr_job_startup > (
            10_000 * DEFAULT_COST_MODEL.cpu_per_message
        )


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "ram_bandwidth",
            "disk_seq_read_bandwidth",
            "disk_seq_write_bandwidth",
            "network_bandwidth",
        ],
    )
    def test_nonpositive_bandwidth_rejected(self, field):
        with pytest.raises(ConfigError):
            CostModel(**{field: 0})

    def test_nonpositive_page_size_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(page_size=0)


class TestScaled:
    def test_scaled_doubles_latency(self):
        model = DEFAULT_COST_MODEL.scaled(2.0)
        assert model.disk_seek_time == pytest.approx(
            2 * DEFAULT_COST_MODEL.disk_seek_time
        )
        assert model.ram_read(1000) == pytest.approx(
            2 * DEFAULT_COST_MODEL.ram_read(1000)
        )
        assert model.network_transfer(1000) == pytest.approx(
            2 * DEFAULT_COST_MODEL.network_transfer(1000)
        )

    def test_scaled_identity(self):
        model = DEFAULT_COST_MODEL.scaled(1.0)
        assert model.ram_read(1234) == DEFAULT_COST_MODEL.ram_read(1234)

    def test_scale_factor_must_be_positive(self):
        with pytest.raises(ConfigError):
            DEFAULT_COST_MODEL.scaled(0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_COST_MODEL.ram_bandwidth = 1.0

    def test_describe_reports_key_parameters(self):
        desc = DEFAULT_COST_MODEL.describe()
        assert desc["disk_seek_ms"] == pytest.approx(8.0)
        assert "mr_job_startup_s" in desc
