"""Regression tests for the shared key partitioner.

The producer and the transactional session must agree on where a key
lives, across processes and releases — keyed ordering and compaction are
per-partition properties.  These tests pin the byte encoding and the
resulting assignments so any change to the hash shows up as an explicit
diff, not as silently re-shuffled topics.
"""

import zlib

import pytest

from repro.common.clock import SimClock
from repro.common.partitioning import key_to_bytes, partition_for_key, stable_hash
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.messaging.transactions import TransactionalProducer


class TestKeyToBytes:
    def test_bytes_pass_through(self):
        assert key_to_bytes(b"raw") == b"raw"
        assert key_to_bytes(bytearray(b"ba")) == b"ba"
        assert key_to_bytes(memoryview(b"mv")) == b"mv"

    def test_str_is_utf8(self):
        assert key_to_bytes("héllo") == "héllo".encode("utf-8")

    def test_bool_is_one_byte_not_int(self):
        # bool is an int subclass; it must NOT hash like 0/1.
        assert key_to_bytes(True) == b"\x01"
        assert key_to_bytes(False) == b"\x00"
        assert key_to_bytes(True) != key_to_bytes(1)

    def test_int_is_signed_big_endian_64(self):
        assert key_to_bytes(1) == (1).to_bytes(8, "big", signed=True)
        assert key_to_bytes(-1) == (-1).to_bytes(8, "big", signed=True)

    def test_huge_int_falls_back_to_repr(self):
        huge = 1 << 80
        assert key_to_bytes(huge) == repr(huge).encode("utf-8")

    def test_other_types_fall_back_to_repr(self):
        assert key_to_bytes((1, "x")) == repr((1, "x")).encode("utf-8")
        assert key_to_bytes(None) == b"None"

    def test_hash_is_crc32_of_encoding(self):
        for key in ["a", b"b", 7, None, 2.5]:
            assert stable_hash(key) == zlib.crc32(key_to_bytes(key))


class TestPinnedAssignments:
    """Golden values: changing any of these re-shuffles user data."""

    # A list, not a dict: 0/False and 1/True are equal as dict keys but must
    # be pinned separately (bool encodes differently from int on purpose).
    PINNED = [
        ("a", 3904355907, 3),
        ("user-42", 2097592435, 3),
        ("", 0, 0),
        (b"bytes-key", 4268147361, 1),
        (0, 1696784233, 1),
        (1, 304476159, 3),
        (-1, 558161692, 0),
        (123456789, 2341825385, 1),
        (True, 2768625435, 3),
        (False, 3523407757, 1),
        (None, 3751981041, 1),
    ]

    def test_hashes_and_partitions_are_pinned(self):
        for key, expected_hash, expected_p4 in self.PINNED:
            assert stable_hash(key) == expected_hash, key
            assert partition_for_key(key, 4) == expected_p4, key

    def test_partition_always_in_range(self):
        for key, _h, _p in self.PINNED:
            for n in (1, 2, 3, 7, 64):
                assert 0 <= partition_for_key(key, n) < n


class TestClientsAgree:
    def test_producer_and_transactions_use_the_shared_partitioner(self):
        cluster = MessagingCluster(num_brokers=3, clock=SimClock())
        cluster.create_topic("t", num_partitions=4, replication_factor=3)
        producer = Producer(cluster)
        txn = TransactionalProducer(cluster, "txn-1")
        txn.begin()
        for key in ["a", "user-42", "zzz", b"bin"]:
            expected = partition_for_key(key, 4)
            ack = producer.send("t", "v", key=key)
            assert ack.partition.partition == expected
            txn_ack = txn.send("t", "v", key=key)
            assert txn_ack.partition.partition == expected
        txn.abort()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
