"""Unit tests for the metrics registry."""

import pytest

from repro.common.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_increment_default(self):
        counter = Counter("c")
        counter.increment()
        counter.increment()
        assert counter.value == 2

    def test_increment_amount(self):
        counter = Counter("c")
        counter.increment(2.5)
        assert counter.value == 2.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_empty_snapshot(self):
        hist = Histogram("h")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0

    def test_mean_min_max(self):
        hist = Histogram("h")
        hist.observe_many([1.0, 2.0, 3.0])
        assert hist.mean == pytest.approx(2.0)
        assert hist.min == 1.0
        assert hist.max == 3.0

    def test_median_of_odd_count(self):
        hist = Histogram("h")
        hist.observe_many([5.0, 1.0, 3.0])
        assert hist.percentile(50) == 3.0

    def test_percentile_interpolates(self):
        hist = Histogram("h")
        hist.observe_many([0.0, 10.0])
        assert hist.percentile(50) == pytest.approx(5.0)
        assert hist.percentile(25) == pytest.approx(2.5)

    def test_percentile_bounds(self):
        hist = Histogram("h")
        hist.observe_many([4.0, 2.0, 6.0])
        assert hist.percentile(0) == 2.0
        assert hist.percentile(100) == 6.0

    def test_percentile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)

    def test_unsorted_observations_handled(self):
        hist = Histogram("h")
        for value in [9.0, 1.0, 5.0, 3.0, 7.0]:
            hist.observe(value)
        assert hist.percentile(50) == 5.0
        hist.observe(0.5)  # after a percentile query re-sorted the data
        assert hist.min == 0.5

    def test_snapshot_keys(self):
        hist = Histogram("h")
        hist.observe(1.0)
        snap = hist.snapshot()
        assert set(snap) == {"count", "mean", "min", "p50", "p95", "p99", "max"}

    def test_values_returns_copy(self):
        hist = Histogram("h")
        hist.observe(1.0)
        values = hist.values()
        values.append(99.0)
        assert hist.count == 1


class TestRegistry:
    def test_same_name_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_get_unknown_returns_none(self):
        assert MetricsRegistry().get("nope") is None

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]

    def test_snapshot_mixes_types(self):
        registry = MetricsRegistry()
        registry.counter("c").increment(2)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap["c"] == 2
        assert snap["h"]["count"] == 1

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        registry.counter("c").increment(5)
        registry.gauge("g").set(3.0)
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert len(registry) == 3  # instruments survive
        assert registry.counter("c").value == 0.0
        assert registry.gauge("g").value == 0.0
        assert registry.histogram("h").count == 0

    def test_reset_keeps_hoisted_references_live(self):
        """Regression: clear() used to drop instruments from the registry
        while call sites kept counting into the orphaned objects, so the
        registry and the live instruments disagreed forever after."""
        registry = MetricsRegistry()
        hoisted = registry.counter("hot.path.counter")
        hoisted.increment(10)
        registry.reset()
        hoisted.increment(3)
        # The hoisted reference and the registry see the same instrument.
        assert registry.counter("hot.path.counter") is hoisted
        assert registry.get("hot.path.counter").value == 3.0
        assert registry.snapshot()["hot.path.counter"] == 3.0

    def test_clear_is_a_reset_alias(self):
        registry = MetricsRegistry()
        hoisted = registry.counter("c")
        hoisted.increment(7)
        registry.clear()
        assert len(registry) == 1
        assert hoisted.value == 0.0
        assert registry.counter("c") is hoisted

    def test_histogram_reset_rearms_delta_tracking(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1.0)
        histogram.delta_snapshot()  # arm
        histogram.observe(2.0)
        histogram.reset()
        histogram.observe(5.0)
        assert histogram.delta_snapshot()["count"] == 1
