"""Unit tests for the partition log."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError, OffsetOutOfRangeError
from repro.common.records import StoredMessage
from repro.storage.log import LogConfig, PartitionLog


def make_log(**config_kwargs) -> tuple[SimClock, PartitionLog]:
    clock = SimClock()
    config = LogConfig(**{"segment_max_messages": 10, **config_kwargs})
    return clock, PartitionLog("test-0", config, clock=clock)


class TestAppend:
    def test_offsets_sequential_from_zero(self):
        _clock, log = make_log()
        offsets = [log.append("k", i).offset for i in range(5)]
        assert offsets == [0, 1, 2, 3, 4]
        assert log.log_end_offset == 5

    def test_append_uses_clock_timestamp(self):
        clock, log = make_log()
        clock.advance(7.0)
        log.append("k", "v")
        assert log.all_messages()[0].timestamp == 7.0

    def test_explicit_timestamp_kept(self):
        _clock, log = make_log()
        log.append("k", "v", timestamp=3.5)
        assert log.all_messages()[0].timestamp == 3.5

    def test_rolls_segments_by_message_count(self):
        _clock, log = make_log(segment_max_messages=3)
        for i in range(10):
            log.append("k", i)
        assert log.segment_count == 4
        assert all(s.sealed for s in log.segments()[:-1])
        assert not log.active_segment().sealed

    def test_rolls_segments_by_bytes(self):
        _clock, log = make_log(segment_max_messages=10_000, segment_max_bytes=100)
        for i in range(10):
            log.append("k", "x" * 30)
        assert log.segment_count > 1

    def test_oversized_message_rejected(self):
        _clock, log = make_log(max_message_bytes=50)
        with pytest.raises(ConfigError):
            log.append("k", "x" * 100)

    def test_append_latency_positive(self):
        _clock, log = make_log()
        assert log.append("k", "v").latency > 0


class TestAppendStored:
    def test_preserves_offsets(self):
        _clock, log = make_log()
        log.append_stored(StoredMessage("k", "v", 0.0, offset=5))
        assert log.log_end_offset == 6
        assert log.all_messages()[0].offset == 5

    def test_rejects_regression(self):
        _clock, log = make_log()
        log.append_stored(StoredMessage("k", "v", 0.0, offset=5))
        with pytest.raises(ConfigError):
            log.append_stored(StoredMessage("k", "v", 0.0, offset=4))


class TestRead:
    def _filled(self, n=25) -> PartitionLog:
        _clock, log = make_log(segment_max_messages=10)
        for i in range(n):
            log.append(f"k{i}", {"i": i})
        return log

    def test_read_from_start(self):
        log = self._filled()
        result = log.read(0, max_messages=5)
        assert [m.offset for m in result.messages] == [0, 1, 2, 3, 4]

    def test_read_spans_segments(self):
        log = self._filled()
        result = log.read(8, max_messages=5)
        assert [m.offset for m in result.messages] == [8, 9, 10, 11, 12]

    def test_read_at_end_returns_empty(self):
        log = self._filled()
        result = log.read(25, max_messages=5)
        assert result.messages == []
        assert result.log_end_offset == 25

    def test_read_past_end_raises(self):
        log = self._filled()
        with pytest.raises(OffsetOutOfRangeError) as excinfo:
            log.read(26)
        assert excinfo.value.log_end == 25

    def test_read_below_start_raises_after_retention(self):
        log = self._filled()
        log.drop_segment(log.sealed_segments()[0])
        assert log.log_start_offset == 10
        with pytest.raises(OffsetOutOfRangeError):
            log.read(5)

    def test_byte_budget_limits_batch(self):
        log = self._filled()
        one = log.read(0, max_messages=100, max_bytes=1).messages
        assert len(one) == 1  # always at least one (anti-wedge rule)
        size2 = sum(m.size for m in log.read(0, max_messages=2).messages)
        batch = log.read(0, max_messages=100, max_bytes=size2).messages
        assert len(batch) == 2

    def test_zero_max_messages(self):
        log = self._filled()
        assert log.read(0, max_messages=0).messages == []

    def test_read_latency_grows_with_bytes(self):
        log = self._filled()
        small = log.read(0, max_messages=1).latency
        large = log.read(0, max_messages=20).latency
        assert large > small


class TestTimestampLookup:
    def test_finds_first_at_or_after(self):
        _clock, log = make_log()
        for i in range(10):
            log.append("k", i, timestamp=float(i))
        assert log.offset_for_timestamp(0.0) == 0
        assert log.offset_for_timestamp(4.5) == 5
        assert log.offset_for_timestamp(9.0) == 9

    def test_beyond_end_returns_none(self):
        _clock, log = make_log()
        log.append("k", "v", timestamp=1.0)
        assert log.offset_for_timestamp(2.0) is None

    def test_spans_segments(self):
        _clock, log = make_log(segment_max_messages=3)
        for i in range(9):
            log.append("k", i, timestamp=float(i))
        assert log.offset_for_timestamp(7.0) == 7


class TestTruncate:
    def test_truncate_drops_tail(self):
        _clock, log = make_log(segment_max_messages=5)
        for i in range(12):
            log.append("k", i)
        removed = log.truncate_to(7)
        assert removed == 5
        assert log.log_end_offset == 7
        assert [m.offset for m in log.all_messages()] == list(range(7))

    def test_truncate_to_zero(self):
        _clock, log = make_log()
        for i in range(3):
            log.append("k", i)
        log.truncate_to(0)
        assert log.log_end_offset == 0
        assert log.all_messages() == []

    def test_append_after_truncate_continues_from_cut(self):
        _clock, log = make_log()
        for i in range(5):
            log.append("k", i)
        log.truncate_to(3)
        result = log.append("k", "new")
        assert result.offset == 3

    def test_truncate_below_log_start_rejected(self):
        _clock, log = make_log(segment_max_messages=5)
        for i in range(12):
            log.append("k", i)
        log.drop_segment(log.sealed_segments()[0])
        with pytest.raises(ConfigError):
            log.truncate_to(2)

    def test_truncate_noop_beyond_end(self):
        _clock, log = make_log()
        for i in range(3):
            log.append("k", i)
        assert log.truncate_to(10) == 0
        assert log.log_end_offset == 3


class TestSegmentManagement:
    def test_drop_segment_advances_log_start(self):
        _clock, log = make_log(segment_max_messages=5)
        for i in range(12):
            log.append("k", i)
        first = log.sealed_segments()[0]
        freed = log.drop_segment(first)
        assert freed > 0
        assert log.log_start_offset == 5

    def test_drop_active_segment_rejected(self):
        _clock, log = make_log()
        log.append("k", "v")
        with pytest.raises(ConfigError):
            log.drop_segment(log.active_segment())

    def test_drop_foreign_segment_rejected(self):
        _clock, log = make_log(segment_max_messages=2)
        for i in range(5):
            log.append("k", i)
        _clock2, other = make_log(segment_max_messages=2)
        for i in range(5):
            other.append("k", i)
        with pytest.raises(ConfigError):
            log.drop_segment(other.sealed_segments()[0])

    def test_rewrite_segment_preserves_reads(self):
        _clock, log = make_log(segment_max_messages=5)
        for i in range(12):
            log.append(f"k{i % 2}", i)
        segment = log.sealed_segments()[0]
        survivors = [m for m in segment.messages() if m.offset >= 3]
        log.rewrite_segment(segment, survivors)
        result = log.read(0, max_messages=4)
        assert [m.offset for m in result.messages] == [3, 4, 5, 6]

    def test_size_and_count(self):
        _clock, log = make_log()
        for i in range(4):
            log.append("k", i)
        assert log.message_count == 4
        assert log.size_bytes == sum(m.size for m in log.all_messages())
