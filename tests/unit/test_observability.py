"""Unit tests for the per-record tracing layer (repro.observability)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.records import TRACE_HEADER, TopicPartition
from repro.core.liquid import Liquid
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.messaging.topic import LogConfig, RetentionConfig, TopicConfig
from repro.storage.tiered.config import TieredConfig
from repro.observability.trace import (
    Span,
    TraceContext,
    Tracer,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)
from repro.processing.job import JobConfig
from repro.tools.admin import AdminClient
from repro.tools.tracequery import TraceQuery, render_timeline


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    uninstall_tracer()
    yield
    uninstall_tracer()


class TestTracer:
    def test_root_span_starts_a_trace(self):
        tracer = Tracer()
        span = tracer.open_span("produce.send", None, start=1.0, topic="t")
        assert span is not None
        assert span.parent_id is None
        assert span.attrs == {"topic": "t"}
        tracer.close(span, end=2.0)
        assert tracer.spans() == [span]
        assert span.duration == 1.0

    def test_child_span_inherits_trace(self):
        tracer = Tracer()
        root = tracer.open_span("produce.send", None, start=0.0)
        child = tracer.open_span("broker.append", root.context(), start=0.5)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_trace_ids_deterministic_for_seed(self):
        ids_a = [
            Tracer(seed=7).open_span("s", None, start=0.0).trace_id
            for _ in range(3)
        ]
        assert len(set(ids_a)) == 1  # same seed, same first trace id
        assert Tracer(seed=8).open_span("s", None, start=0.0).trace_id != ids_a[0]

    def test_head_based_sampling(self):
        tracer = Tracer(sample_rate=3)
        sampled = [
            tracer.open_span("produce.send", None, start=0.0) is not None
            for _ in range(9)
        ]
        assert sampled == [True, False, False] * 3
        assert tracer.traces_started == 3
        assert tracer.traces_sampled_out == 6

    def test_children_never_sampled_out(self):
        tracer = Tracer(sample_rate=1000)
        root = tracer.open_span("produce.send", None, start=0.0)
        ctx = root.context()
        for _ in range(10):
            assert tracer.open_span("stage", ctx, start=0.0) is not None

    def test_ring_buffer_bounds_retention(self):
        tracer = Tracer(capacity=5)
        ctx = TraceContext("t", 0)
        for i in range(8):
            tracer.record(f"s{i}", ctx, start=float(i), end=float(i))
        assert len(tracer) == 5
        assert tracer.spans_dropped == 3
        assert [s.name for s in tracer.spans()] == ["s3", "s4", "s5", "s6", "s7"]

    def test_close_rejects_end_before_start(self):
        tracer = Tracer()
        span = tracer.open_span("s", None, start=5.0)
        with pytest.raises(ConfigError):
            tracer.close(span, end=4.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            Tracer(sample_rate=0)
        with pytest.raises(ConfigError):
            Tracer(capacity=0)
        with pytest.raises(ConfigError):
            install_tracer("not a tracer")

    def test_install_uninstall(self):
        assert current_tracer() is None
        tracer = Tracer()
        assert install_tracer(tracer) is tracer
        assert current_tracer() is tracer
        uninstall_tracer()
        assert current_tracer() is None

    def test_tracing_context_manager(self):
        with tracing() as tracer:
            assert current_tracer() is tracer
        assert current_tracer() is None


class _EnrichTask:
    def process(self, record, collector):
        collector.send("derived", {"v": record.value}, key=record.key)


def _traced_pipeline(sample_rate=1):
    """One record through source feed -> job -> derived feed, traced."""
    liquid = Liquid(num_brokers=3)
    liquid.create_feed("source", partitions=1)
    liquid.submit_job(
        JobConfig(name="enrich", inputs=["source"], task_factory=_EnrichTask),
        outputs=["derived"],
    )
    with tracing(Tracer(sample_rate=sample_rate)) as tracer:
        liquid.producer().send("source", {"x": 1}, key="k")
        liquid.cluster.run_until_replicated()
        liquid.process_available()
        liquid.cluster.run_until_replicated()
        consumer = liquid.consumer()
        consumer.assign([TopicPartition("derived", 0)])
        records = consumer.poll()
    return liquid, tracer, records


class TestEndToEnd:
    def test_single_record_yields_one_connected_tree(self):
        liquid, tracer, records = _traced_pipeline()
        assert len(records) == 1
        query = TraceQuery(tracer)
        assert len(query.trace_ids()) == 1
        trace_id = query.trace_ids()[0]
        assert query.is_connected(trace_id)
        stages = query.stages(trace_id)
        # Both hops are present: source append/replication/fetch, the job,
        # then the derived feed's own produce/append/replication/fetch.
        assert stages.count("produce.send") == 2
        assert stages.count("broker.append") == 2
        assert stages.count("job.process") == 1
        assert stages.count("consumer.poll") == 1
        assert stages.count("broker.fetch") >= 2
        # 3 brokers -> 2 followers per hop.
        assert stages.count("replication.replicate") == 4

    def test_job_emit_parents_on_process_span(self):
        _liquid, tracer, _records = _traced_pipeline()
        query = TraceQuery(tracer)
        trace_id = query.trace_ids()[0]
        process = query.find(trace_id, "job.process")[0]
        hop2_sends = [
            s
            for s in query.find(trace_id, "produce.send")
            if s.parent_id is not None
        ]
        assert len(hop2_sends) == 1
        assert hop2_sends[0].parent_id == process.span_id

    def test_consumed_record_header_carries_context(self):
        _liquid, tracer, records = _traced_pipeline()
        ctx = records[0].headers[TRACE_HEADER]
        assert isinstance(ctx, TraceContext)
        assert ctx.trace_id == TraceQuery(tracer).trace_ids()[0]

    def test_sampled_out_record_traces_nothing(self):
        tracer = Tracer(sample_rate=2)
        cluster = MessagingCluster(num_brokers=1)
        cluster.create_topic("t", num_partitions=1, replication_factor=1)
        with tracing(tracer):
            producer = Producer(cluster)
            producer.send("t", "a")  # sampled (root 1)
            producer.send("t", "b")  # sampled out (root 2)
        trace_ids = tracer.trace_ids()
        assert len(trace_ids) == 1
        assert tracer.traces_sampled_out == 1
        # The sampled-out record got no header and no spans anywhere.
        replica = cluster.broker(0).replica(TopicPartition("t", 0))
        stored = replica.log.read(0, 10).messages
        assert TRACE_HEADER in stored[0].headers
        assert TRACE_HEADER not in stored[1].headers

    def test_no_tracer_no_headers(self):
        cluster = MessagingCluster(num_brokers=1)
        cluster.create_topic("t", num_partitions=1, replication_factor=1)
        Producer(cluster).send("t", "a")
        replica = cluster.broker(0).replica(TopicPartition("t", 0))
        assert TRACE_HEADER not in replica.log.read(0, 10).messages[0].headers

    def test_cold_fetch_span_flags_cold(self):
        cluster = MessagingCluster(num_brokers=1, maintenance_interval=1.0)
        cluster.create_topic(
            TopicConfig(
                name="t",
                num_partitions=1,
                replication_factor=1,
                retention=RetentionConfig(retention_seconds=5.0),
                log=LogConfig(segment_max_messages=5),
                tiered=TieredConfig(),
            )
        )
        tracer = Tracer()
        with tracing(tracer):
            producer = Producer(cluster)
            for i in range(40):
                producer.send("t", {"i": i})
            cluster.tick(60.0)  # retention archives sealed segments cold
            result = cluster.fetch("t", 0, 0, max_messages=3)
        assert result.records
        cold_spans = [
            s for s in tracer.spans() if s.name == "broker.fetch" and s.attrs["cold"]
        ]
        assert cold_spans


class TestTraceQuery:
    def test_render_timeline_shape(self):
        _liquid, tracer, _records = _traced_pipeline()
        trace_id = TraceQuery(tracer).trace_ids()[0]
        text = render_timeline(trace_id, tracer)
        assert text.startswith(f"trace {trace_id}")
        assert "produce.send" in text and "job.process" in text
        assert "└─" in text

    def test_render_unknown_trace(self):
        assert "no retained spans" in render_timeline("nope", Tracer())

    def test_partial_trace_renders_as_forest(self):
        tracer = Tracer(capacity=2)
        root = tracer.open_span("a", None, start=0.0)
        tracer.close(root, end=0.0)
        ctx = root.context()
        tracer.record("b", ctx, 1.0, 1.0)
        tracer.record("c", ctx, 2.0, 2.0)  # evicts the root span
        query = TraceQuery(tracer)
        assert not query.is_connected(root.trace_id)
        assert len(query.tree(root.trace_id)) == 2

    def test_duration_spans_whole_trace(self):
        tracer = Tracer()
        ctx = TraceContext("t", 0)
        tracer.record("a", ctx, 1.0, 2.0)
        tracer.record("b", ctx, 1.5, 4.0)
        assert TraceQuery(tracer).duration("t") == pytest.approx(3.0)


class TestAdminReport:
    def test_stage_latency_report(self):
        liquid, tracer, _records = _traced_pipeline()
        report = AdminClient(liquid.cluster).stage_latency_report(tracer)
        assert {s.stage for s in report.stages} >= {
            "produce.send",
            "broker.append",
            "replication.replicate",
            "broker.fetch",
            "job.process",
            "consumer.poll",
        }
        for stats in report.stages:
            assert stats.count >= 1
            assert stats.p99 >= stats.p50 >= 0.0
        # as_dict() restores the legacy nested-dict shape.
        legacy = report.as_dict()
        assert legacy["job.process"]["count"] == float(
            report.stage("job.process").count
        )

    def test_report_uses_installed_tracer_by_default(self):
        liquid = Liquid(num_brokers=1)
        admin = AdminClient(liquid.cluster)
        assert not admin.stage_latency_report()
        assert admin.stage_latency_report().as_dict() == {}
        with tracing() as tracer:
            tracer.record("stage", TraceContext("t", 0), 0.0, 1.0)
            assert admin.stage_latency_report().stage("stage").count == 1
