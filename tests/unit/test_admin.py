"""Unit tests for the operational admin client (Figure 1's terminal)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import TopicNotFoundError
from repro.common.records import TopicPartition
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.producer import Producer
from repro.tools.admin import AdminClient


def make_env(brokers=3):
    cluster = MessagingCluster(num_brokers=brokers, clock=SimClock())
    cluster.create_topic("t", num_partitions=2, replication_factor=3)
    return cluster, AdminClient(cluster)


class TestDescribe:
    def test_describe_cluster_shape(self):
        cluster, admin = make_env()
        info = admin.describe_cluster()
        assert info["brokers"] == 3
        assert info["controller"] == 0
        assert info["offline_partitions"] == 0

    def test_describe_topic_partitions(self):
        cluster, admin = make_env()
        producer = Producer(cluster, acks=ACKS_ALL)
        for i in range(10):
            producer.send("t", i, partition=0)
        infos = admin.describe_topic("t")
        assert len(infos) == 2
        p0 = infos[0]
        assert p0.online
        assert not p0.under_replicated
        assert p0.high_watermark == 10
        assert p0.log_end_offset == 10
        assert sorted(p0.isr) == sorted(p0.replicas)

    def test_unknown_topic_rejected(self):
        _cluster, admin = make_env()
        with pytest.raises(TopicNotFoundError):
            admin.describe_topic("ghost")

    def test_under_replication_detected(self):
        cluster, admin = make_env()
        victim = [b for b in range(3) if b != cluster.leader_of("t", 0)][0]
        cluster.kill_broker(victim)
        under = admin.under_replicated_partitions()
        assert TopicPartition("t", 0) in under

    def test_format_topic_mentions_state(self):
        cluster, admin = make_env()
        text = admin.format_topic("t")
        assert "Topic: t" in text
        assert "ONLINE" in text


class TestConsumerLag:
    def test_lag_computed_from_commits(self):
        cluster, admin = make_env()
        producer = Producer(cluster, acks=ACKS_ALL)
        for i in range(20):
            producer.send("t", i, partition=0)
        tp = TopicPartition("t", 0)
        cluster.offset_manager.commit("dashboard", tp, 5)
        lags = admin.consumer_lag("dashboard")
        assert len(lags) == 1
        assert lags[0].lag == 15

    def test_all_group_lags(self):
        cluster, admin = make_env()
        producer = Producer(cluster, acks=ACKS_ALL)
        for i in range(10):
            producer.send("t", i, partition=0)
        tp = TopicPartition("t", 0)
        cluster.offset_manager.commit("fast", tp, 10)
        cluster.offset_manager.commit("slow", tp, 2)
        lags = admin.all_group_lags()
        assert lags["fast"] == 0
        assert lags["slow"] == 8


class TestHealth:
    def test_healthy_cluster(self):
        _cluster, admin = make_env()
        report = admin.health_check()
        assert report.healthy
        assert "HEALTHY" in admin.format_health(report)

    def test_broker_loss_degrades(self):
        cluster, admin = make_env()
        cluster.kill_broker(2)
        report = admin.health_check()
        assert not report.healthy
        assert report.live_brokers == 2
        assert report.under_replicated

    def test_offline_partition_flagged(self):
        cluster = MessagingCluster(num_brokers=1, clock=SimClock())
        cluster.create_topic("solo", replication_factor=1)
        admin = AdminClient(cluster)
        cluster.kill_broker(0)
        report = admin.health_check()
        assert TopicPartition("solo", 0) in report.offline_partitions
        assert "DEGRADED" in admin.format_health(report)

    def test_lagging_group_flagged(self):
        cluster, admin = make_env()
        producer = Producer(cluster, acks=ACKS_ALL)
        for i in range(50):
            producer.send("t", i, partition=0)
        tp = TopicPartition("t", 0)
        cluster.offset_manager.commit("sleepy", tp, 0)
        report = admin.health_check(max_group_lag=10)
        assert any(l.group == "sleepy" for l in report.lagging_groups)

    def test_recovery_restores_health(self):
        cluster, admin = make_env()
        cluster.kill_broker(2)
        cluster.restart_broker(2)
        cluster.run_until_replicated()
        assert admin.health_check().healthy


class TestConsumerLagReport:
    def test_report_has_lag_and_rate(self):
        cluster, admin = make_env()
        producer = Producer(cluster, acks=ACKS_ALL)
        for i in range(40):
            producer.send("t", i, partition=0)
        tp = TopicPartition("t", 0)
        # Four commits, 10 offsets per simulated second.
        for offset in (10, 20, 30):
            cluster.offset_manager.commit("etl", tp, offset)
            cluster.clock.advance(1.0)
        report = admin.consumer_lag_report(alpha=1.0)
        assert [g.group for g in report.groups] == ["etl"]
        entry = report.group("etl")
        assert entry.total_lag == 10
        assert entry.consumption_rate == pytest.approx(10.0)
        assert [p.as_dict() for p in entry.partitions] == [
            {
                "topic": "t",
                "partition": 0,
                "committed_offset": 30,
                "end_offset": 40,
                "lag": 10,
            }
        ]
        # as_dict() restores the legacy nested-dict shape end to end.
        legacy = report.as_dict()
        assert legacy["etl"]["total_lag"] == 10
        assert legacy["etl"]["partitions"][0]["end_offset"] == 40

    def test_idle_group_has_zero_rate(self):
        cluster, admin = make_env()
        producer = Producer(cluster, acks=ACKS_ALL)
        for i in range(5):
            producer.send("t", i, partition=0)
        cluster.offset_manager.commit("idle", TopicPartition("t", 0), 0)
        report = admin.consumer_lag_report()
        assert report.group("idle").consumption_rate == 0.0
        assert report.group("idle").total_lag == 5

    def test_deltas_back_the_rate(self):
        cluster, _admin = make_env()
        tp = TopicPartition("t", 0)
        cluster.offset_manager.commit("g", tp, 0)
        cluster.clock.advance(2.0)
        cluster.offset_manager.commit("g", tp, 10)
        deltas = cluster.offset_manager.consumption_deltas("g", tp)
        assert deltas == [(2.0, 10)]
