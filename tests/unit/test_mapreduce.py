"""Unit tests for the MapReduce engine baseline."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError, MapReduceError
from repro.baselines.dfs import SimulatedDFS
from repro.baselines.mapreduce import MapReduceEngine, MRJobSpec


def make_engine(**kwargs) -> tuple[SimClock, SimulatedDFS, MapReduceEngine]:
    clock = SimClock()
    dfs = SimulatedDFS(clock)
    return clock, dfs, MapReduceEngine(dfs, clock, **kwargs)


def wordcount_spec(name="wc", inputs=("/in",), output="/out") -> MRJobSpec:
    return MRJobSpec(
        name=name,
        input_paths=list(inputs),
        output_path=output,
        map_fn=lambda r: [(r["word"], 1)],
        reduce_fn=lambda key, values: [(key, sum(values))],
    )


class TestWordCount:
    def test_correct_counts(self):
        _clock, dfs, engine = make_engine()
        words = ["a", "b", "a", "c", "a", "b"]
        dfs.write_file("/in/part-00000", [{"word": w} for w in words])
        result = engine.run(wordcount_spec())
        assert result.records_in == 6
        assert result.records_out == 3
        output = dict(dfs.read_file("/out/part-00000").records)
        assert output == {"a": 3, "b": 2, "c": 1}

    def test_multiple_input_dirs(self):
        _clock, dfs, engine = make_engine()
        dfs.write_file("/in1/part-0", [{"word": "x"}])
        dfs.write_file("/in2/part-0", [{"word": "x"}])
        engine.run(wordcount_spec(inputs=("/in1", "/in2")))
        output = dict(dfs.read_file("/out/part-00000").records)
        assert output == {"x": 2}

    def test_combiner_shrinks_shuffle_but_preserves_result(self):
        _clock, dfs, engine = make_engine()
        words = [{"word": f"w{i % 3}"} for i in range(300)]
        dfs.write_file("/in/part-0", words)
        plain = engine.run(wordcount_spec(output="/out-a"))
        combined_spec = MRJobSpec(
            name="wc-c",
            input_paths=["/in"],
            output_path="/out-b",
            map_fn=lambda r: [(r["word"], 1)],
            reduce_fn=lambda key, values: [(key, sum(values))],
            combiner=lambda key, values: [sum(values)],
        )
        combined = engine.run(combined_spec)
        assert dict(dfs.read_file("/out-a/part-00000").records) == dict(
            dfs.read_file("/out-b/part-00000").records
        )
        assert combined.shuffle_seconds < plain.shuffle_seconds

    def test_rerun_overwrites_output(self):
        _clock, dfs, engine = make_engine()
        dfs.write_file("/in/part-0", [{"word": "x"}])
        engine.run(wordcount_spec())
        engine.run(wordcount_spec())  # no FileExists error
        assert dict(dfs.read_file("/out/part-00000").records) == {"x": 1}


class TestCosts:
    def test_startup_dominates_small_jobs(self):
        _clock, dfs, engine = make_engine()
        dfs.write_file("/in/part-0", [{"word": "x"}])
        result = engine.run(wordcount_spec())
        assert result.startup_seconds > 0.9 * result.total_seconds

    def test_clock_advanced_by_job_duration(self):
        clock, dfs, engine = make_engine()
        dfs.write_file("/in/part-0", [{"word": "x"}])
        result = engine.run(wordcount_spec())
        assert clock.now() == pytest.approx(result.total_seconds)

    def test_advance_clock_disabled(self):
        clock, dfs, engine = make_engine()
        dfs.write_file("/in/part-0", [{"word": "x"}])
        engine.run(wordcount_spec(), advance_clock=False)
        assert clock.now() == 0.0

    def test_parallelism_shrinks_data_costs(self):
        _clock, dfs1, slow = make_engine(map_parallelism=1, reduce_parallelism=1)
        records = [{"word": f"w{i}"} for i in range(2000)]
        dfs1.write_file("/in/part-0", records)
        slow_result = slow.run(wordcount_spec())
        _clock2, dfs2, fast = make_engine(map_parallelism=8, reduce_parallelism=8)
        dfs2.write_file("/in/part-0", records)
        fast_result = fast.run(wordcount_spec())
        assert fast_result.map_seconds < slow_result.map_seconds
        assert fast_result.shuffle_seconds < slow_result.shuffle_seconds

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ConfigError):
            make_engine(map_parallelism=0)


class TestPipelines:
    def test_pipeline_chains_through_dfs(self):
        _clock, dfs, engine = make_engine()
        dfs.write_file("/in/part-0", [{"word": "x"}, {"word": "y"}])
        stage1 = MRJobSpec(
            name="s1", input_paths=["/in"], output_path="/mid",
            map_fn=lambda r: [(r["word"], 1)],
            reduce_fn=lambda k, vs: [{"word": k.upper()}],
        )
        stage2 = MRJobSpec(
            name="s2", input_paths=["/mid"], output_path="/final",
            map_fn=lambda r: [(r["word"], 1)],
            reduce_fn=lambda k, vs: [(k, sum(vs))],
        )
        results = engine.run_pipeline([stage1, stage2])
        assert len(results) == 2
        output = dict(dfs.read_file("/final/part-00000").records)
        assert output == {"X": 1, "Y": 1}

    def test_pipeline_cost_scales_with_depth(self):
        """E2's structural fact: each stage pays startup again."""
        _clock, dfs, engine = make_engine()
        dfs.write_file("/in/part-0", [{"word": "x"}])

        def identity_stage(i):
            return MRJobSpec(
                name=f"s{i}",
                input_paths=["/in" if i == 0 else f"/mid{i - 1}"],
                output_path=f"/mid{i}",
                map_fn=lambda r: [(0, r)],
                reduce_fn=lambda k, vs: vs,
            )

        short = sum(
            r.total_seconds for r in engine.run_pipeline([identity_stage(0)])
        )
        long = sum(
            r.total_seconds
            for r in engine.run_pipeline([identity_stage(i) for i in range(4)])
        )
        assert long > 3.5 * short


class TestFailures:
    def test_map_error_wrapped(self):
        _clock, dfs, engine = make_engine()
        dfs.write_file("/in/part-0", [{"word": "x"}])
        spec = MRJobSpec(
            name="bad", input_paths=["/in"], output_path="/out",
            map_fn=lambda r: 1 / 0,
            reduce_fn=lambda k, vs: vs,
        )
        with pytest.raises(MapReduceError, match="map_fn"):
            engine.run(spec)

    def test_reduce_error_wrapped(self):
        _clock, dfs, engine = make_engine()
        dfs.write_file("/in/part-0", [{"word": "x"}])
        spec = MRJobSpec(
            name="bad", input_paths=["/in"], output_path="/out",
            map_fn=lambda r: [(1, r)],
            reduce_fn=lambda k, vs: 1 / 0,
        )
        with pytest.raises(MapReduceError, match="reduce_fn"):
            engine.run(spec)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigError):
            MRJobSpec(
                name="x", input_paths=[], output_path="/o",
                map_fn=lambda r: [], reduce_fn=lambda k, v: [],
            )
