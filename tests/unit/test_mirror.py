"""Unit tests for cross-datacenter mirroring (§5)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.mirror import MirrorMaker
from repro.messaging.producer import Producer


def two_colos() -> tuple[MessagingCluster, MessagingCluster]:
    clock = SimClock()  # shared wall clock across both datacenters
    west = MessagingCluster(num_brokers=3, clock=clock)
    east = MessagingCluster(num_brokers=3, clock=clock)
    west.create_topic("events", num_partitions=2, replication_factor=3)
    return west, east


def drain(cluster, topic, partition):
    result = cluster.fetch(topic, partition, 0, max_messages=10_000)
    return result.records


class TestProvisioning:
    def test_target_topic_created_with_source_shape(self):
        west, east = two_colos()
        mirror = MirrorMaker(west, east)
        mirror.poll()
        assert "events" in east.topics()
        assert len(east.partitions_of("events")) == 2

    def test_internal_topics_not_mirrored(self):
        west, east = two_colos()
        mirror = MirrorMaker(west, east)
        assert "__liquid_offsets" not in mirror.mirrored_topics()
        mirror.poll()
        assert "__liquid_offsets" in east.topics()  # east's OWN, not mirrored
        tp = TopicPartition("__liquid_offsets", 0)
        assert east.log_end_offset(tp) >= 0

    def test_explicit_topic_list_respected(self):
        west, east = two_colos()
        west.create_topic("other", replication_factor=3)
        mirror = MirrorMaker(west, east, topics=["events"])
        Producer(west).send("other", "x")
        west.tick(0.0)
        mirror.run_until_synced()
        assert "other" not in east.topics()

    def test_same_cluster_rejected(self):
        west, _east = two_colos()
        with pytest.raises(ConfigError):
            MirrorMaker(west, west)


class TestCopySemantics:
    def test_everything_copied_in_order_with_fidelity(self):
        west, east = two_colos()
        producer = Producer(west)
        for i in range(100):
            producer.send(
                "events", {"i": i}, key=f"k{i % 10}", timestamp=float(i),
                headers={"origin": "west"},
            )
        west.tick(0.0)
        mirror = MirrorMaker(west, east)
        copied = mirror.run_until_synced()
        assert copied == 100
        east.tick(0.0)
        for partition in range(2):
            src = drain(west, "events", partition)
            dst = drain(east, "events", partition)
            assert [(r.key, r.value, r.timestamp) for r in src] == [
                (r.key, r.value, r.timestamp) for r in dst
            ]
            assert all(r.headers["origin"] == "west" for r in dst)

    def test_incremental_mirroring(self):
        west, east = two_colos()
        producer = Producer(west)
        mirror = MirrorMaker(west, east)
        for i in range(30):
            producer.send("events", i, key=str(i))
        assert mirror.run_until_synced() == 30
        for i in range(5):
            producer.send("events", 100 + i, key=str(i))
        assert mirror.run_until_synced() == 5

    def test_restarted_mirror_resumes_from_checkpoint(self):
        west, east = two_colos()
        producer = Producer(west)
        for i in range(40):
            producer.send("events", i, key=str(i))
        MirrorMaker(west, east, name="m1").run_until_synced()
        # New MirrorMaker instance with the same name: resumes, no re-copy.
        fresh = MirrorMaker(west, east, name="m1")
        assert fresh.run_until_synced() == 0
        total = sum(
            len(drain(east, "events", p)) for p in range(2)
        )
        assert total == 40

    def test_independent_mirror_names_copy_independently(self):
        west, east = two_colos()
        _clock = west.clock
        south = MessagingCluster(num_brokers=1, clock=west.clock)
        producer = Producer(west)
        for i in range(10):
            producer.send("events", i, key=str(i))
        MirrorMaker(west, east, name="to-east").run_until_synced()
        MirrorMaker(west, south, name="to-south").run_until_synced()
        assert sum(len(drain(east, "events", p)) for p in range(2)) == 10
        assert sum(len(drain(south, "events", p)) for p in range(2)) == 10


class TestLagAndCosts:
    def test_lag_reflects_unmirrored_records(self):
        west, east = two_colos()
        producer = Producer(west)
        mirror = MirrorMaker(west, east)
        for i in range(25):
            producer.send("events", i, key=str(i))
        west.tick(0.0)
        assert mirror.lag() == 25
        mirror.run_until_synced()
        assert mirror.lag() == 0

    def test_wan_rtt_dominates_mirroring_latency(self):
        west, east = two_colos()
        producer = Producer(west)
        for i in range(10):
            producer.send("events", i, key=str(i), partition=0)
        west.tick(0.0)
        slow = MirrorMaker(west, east, name="far", wan_rtt=0.1)
        stats = slow.poll()
        assert stats.simulated_seconds > 0.1  # at least one WAN round trip

    def test_negative_rtt_rejected(self):
        west, east = two_colos()
        with pytest.raises(ConfigError):
            MirrorMaker(west, east, wan_rtt=-1)

    def test_survives_source_broker_failure(self):
        west, east = two_colos()
        producer = Producer(west)
        for i in range(50):
            producer.send("events", i, key=str(i))
        mirror = MirrorMaker(west, east)
        mirror.run_until_synced()
        west.kill_broker(west.leader_of("events", 0))
        for i in range(10):
            producer.send("events", 100 + i, key=str(i))
        copied = mirror.run_until_synced()
        assert copied == 10
