"""Unit tests for cross-datacenter mirroring (§5)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.mirror import MirrorMaker
from repro.messaging.producer import Producer


def two_colos() -> tuple[MessagingCluster, MessagingCluster]:
    clock = SimClock()  # shared wall clock across both datacenters
    west = MessagingCluster(num_brokers=3, clock=clock)
    east = MessagingCluster(num_brokers=3, clock=clock)
    west.create_topic("events", num_partitions=2, replication_factor=3)
    return west, east


def drain(cluster, topic, partition):
    result = cluster.fetch(topic, partition, 0, max_messages=10_000)
    return result.records


class TestProvisioning:
    def test_target_topic_created_with_source_shape(self):
        west, east = two_colos()
        mirror = MirrorMaker(west, east)
        mirror.poll()
        assert "events" in east.topics()
        assert len(east.partitions_of("events")) == 2

    def test_internal_topics_not_mirrored(self):
        west, east = two_colos()
        mirror = MirrorMaker(west, east)
        assert "__liquid_offsets" not in mirror.mirrored_topics()
        mirror.poll()
        assert "__liquid_offsets" in east.topics()  # east's OWN, not mirrored
        tp = TopicPartition("__liquid_offsets", 0)
        assert east.log_end_offset(tp) >= 0

    def test_explicit_topic_list_respected(self):
        west, east = two_colos()
        west.create_topic("other", replication_factor=3)
        mirror = MirrorMaker(west, east, topics=["events"])
        Producer(west).send("other", "x")
        west.tick(0.0)
        mirror.run_until_synced()
        assert "other" not in east.topics()

    def test_same_cluster_rejected(self):
        west, _east = two_colos()
        with pytest.raises(ConfigError):
            MirrorMaker(west, west)


class TestCopySemantics:
    def test_everything_copied_in_order_with_fidelity(self):
        west, east = two_colos()
        producer = Producer(west)
        for i in range(100):
            producer.send(
                "events", {"i": i}, key=f"k{i % 10}", timestamp=float(i),
                headers={"origin": "west"},
            )
        west.tick(0.0)
        mirror = MirrorMaker(west, east)
        copied = mirror.run_until_synced()
        assert copied == 100
        east.tick(0.0)
        for partition in range(2):
            src = drain(west, "events", partition)
            dst = drain(east, "events", partition)
            assert [(r.key, r.value, r.timestamp) for r in src] == [
                (r.key, r.value, r.timestamp) for r in dst
            ]
            assert all(r.headers["origin"] == "west" for r in dst)

    def test_incremental_mirroring(self):
        west, east = two_colos()
        producer = Producer(west)
        mirror = MirrorMaker(west, east)
        for i in range(30):
            producer.send("events", i, key=str(i))
        assert mirror.run_until_synced() == 30
        for i in range(5):
            producer.send("events", 100 + i, key=str(i))
        assert mirror.run_until_synced() == 5

    def test_restarted_mirror_resumes_from_checkpoint(self):
        west, east = two_colos()
        producer = Producer(west)
        for i in range(40):
            producer.send("events", i, key=str(i))
        MirrorMaker(west, east, name="m1").run_until_synced()
        # New MirrorMaker instance with the same name: resumes, no re-copy.
        fresh = MirrorMaker(west, east, name="m1")
        assert fresh.run_until_synced() == 0
        total = sum(
            len(drain(east, "events", p)) for p in range(2)
        )
        assert total == 40

    def test_independent_mirror_names_copy_independently(self):
        west, east = two_colos()
        _clock = west.clock
        south = MessagingCluster(num_brokers=1, clock=west.clock)
        producer = Producer(west)
        for i in range(10):
            producer.send("events", i, key=str(i))
        MirrorMaker(west, east, name="to-east").run_until_synced()
        MirrorMaker(west, south, name="to-south").run_until_synced()
        assert sum(len(drain(east, "events", p)) for p in range(2)) == 10
        assert sum(len(drain(south, "events", p)) for p in range(2)) == 10


class TestLagAndCosts:
    def test_lag_reflects_unmirrored_records(self):
        west, east = two_colos()
        producer = Producer(west)
        mirror = MirrorMaker(west, east)
        for i in range(25):
            producer.send("events", i, key=str(i))
        west.tick(0.0)
        assert mirror.lag() == 25
        mirror.run_until_synced()
        assert mirror.lag() == 0

    def test_wan_rtt_dominates_mirroring_latency(self):
        west, east = two_colos()
        producer = Producer(west)
        for i in range(10):
            producer.send("events", i, key=str(i), partition=0)
        west.tick(0.0)
        slow = MirrorMaker(west, east, name="far", wan_rtt=0.1)
        stats = slow.poll()
        assert stats.simulated_seconds > 0.1  # at least one WAN round trip

    def test_negative_rtt_rejected(self):
        west, east = two_colos()
        with pytest.raises(ConfigError):
            MirrorMaker(west, east, wan_rtt=-1)

    def test_survives_source_broker_failure(self):
        west, east = two_colos()
        producer = Producer(west)
        for i in range(50):
            producer.send("events", i, key=str(i))
        mirror = MirrorMaker(west, east)
        mirror.run_until_synced()
        west.kill_broker(west.leader_of("events", 0))
        for i in range(10):
            producer.send("events", 100 + i, key=str(i))
        copied = mirror.run_until_synced()
        assert copied == 10


class TestTransactionalIsolation:
    """Regression: the mirror used to fetch ``read_uncommitted``, so aborted
    transactional records were re-produced on the target as committed data."""

    def test_aborted_transaction_not_mirrored(self):
        from repro.messaging.transactions import TransactionalProducer

        west, east = two_colos()
        txn = TransactionalProducer(west, "tx")
        txn.begin()
        txn.send("events", "doomed", partition=0)
        txn.abort()
        txn.begin()
        txn.send("events", "kept", partition=0)
        txn.commit()
        west.tick(0.0)
        mirror = MirrorMaker(west, east)
        mirror.run_until_synced()
        values = [r.value for r in drain(east, "events", 0)]
        assert values == ["kept"]
        # The aborted record IS on the source log (read_uncommitted view)...
        assert [r.value for r in drain(west, "events", 0)] == ["doomed", "kept"]
        # ...but never laundered into committed data on the target.
        committed = east.fetch(
            "events", 0, 0, max_messages=100, isolation="read_committed"
        )
        assert [r.value for r in committed.records] == ["kept"]

    def test_open_transaction_holds_mirror_back(self):
        from repro.messaging.transactions import TransactionalProducer

        west, east = two_colos()
        txn = TransactionalProducer(west, "tx")
        txn.begin()
        txn.send("events", "pending", partition=0)
        west.tick(0.0)
        mirror = MirrorMaker(west, east)
        assert mirror.run_until_synced() == 0
        txn.commit()
        west.tick(0.0)
        assert mirror.run_until_synced() == 1
        assert [r.value for r in drain(east, "events", 0)] == ["pending"]

    def test_invalid_isolation_rejected(self):
        west, east = two_colos()
        with pytest.raises(ConfigError):
            MirrorMaker(west, east, isolation="serializable")


class TestRetentionReseat:
    """Regression: a source retention sweep below the mirror position used to
    raise OffsetOutOfRangeError out of ``poll`` and wedge the mirror."""

    def _west_with_retention(self):
        from repro.messaging.topic import LogConfig, RetentionConfig, TopicConfig

        clock = SimClock()
        west = MessagingCluster(num_brokers=3, clock=clock)
        east = MessagingCluster(num_brokers=3, clock=clock)
        west.create_topic(
            TopicConfig(
                name="logs",
                num_partitions=1,
                replication_factor=3,
                retention=RetentionConfig(retention_seconds=5.0),
                log=LogConfig(segment_max_messages=5),
            )
        )
        return west, east

    def test_retention_storm_reseats_and_counts_skips(self):
        west, east = self._west_with_retention()
        producer = Producer(west)
        for i in range(20):
            producer.send("logs", {"i": i})
        producer.flush()
        west.tick(0.0)
        mirror = MirrorMaker(west, east, topics=["logs"], batch=5)
        stats = mirror.poll()  # position now 5, far behind the head
        assert stats.records_mirrored == 5
        # Retention storm: everything sealed before the sweep disappears.
        west.tick(60.0)
        producer.send("logs", {"i": 99})
        producer.flush()
        west.tick(0.0)
        start = west.beginning_offset(TopicPartition("logs", 0))
        assert start > 5  # the sweep really did delete below the mirror
        total_skipped = 0
        copied = 0
        for _ in range(50):
            stats = mirror.poll()
            total_skipped += stats.records_skipped
            copied += stats.records_mirrored
            west.tick(0.0)
            east.tick(0.0)
            if stats.records_mirrored == 0 and stats.records_skipped == 0:
                break
        assert total_skipped == start - 5
        assert mirror.lag() == 0
        # Mirroring continues from the reseat point: the record produced
        # after the storm arrives on the target.
        values = [r.value for r in drain(east, "logs", 0)]
        assert {"i": 99} in values

    def test_reseat_checkpointed_so_restart_does_not_rewedge(self):
        west, east = self._west_with_retention()
        producer = Producer(west)
        for i in range(20):
            producer.send("logs", {"i": i})
        producer.flush()
        west.tick(0.0)
        mirror = MirrorMaker(west, east, topics=["logs"], batch=5)
        mirror.poll()
        west.tick(60.0)  # sweep
        mirror.poll()    # reseats + commits the reseated position
        restarted = MirrorMaker(west, east, topics=["logs"], batch=5)
        stats = restarted.poll()
        assert stats.records_skipped == 0  # resumed at/after the reseat
