"""Unit tests for changelogged task state (§3.2)."""

import pytest

from repro.common.errors import StateStoreError
from repro.processing.state import KeyValueState, changelog_topic_name
from repro.processing.store import InMemoryStore


def logged_state() -> tuple[KeyValueState, list]:
    log: list = []
    state = KeyValueState(
        "counts", InMemoryStore(), changelog_append=lambda k, v: log.append((k, v))
    )
    return state, log


class TestWriteThrough:
    def test_put_publishes_to_changelog(self):
        state, log = logged_state()
        state.put("k", 1)
        assert log == [("k", 1)]

    def test_delete_publishes_tombstone(self):
        state, log = logged_state()
        state.put("k", 1)
        state.delete("k")
        assert log == [("k", 1), ("k", None)]
        assert state.get("k") is None

    def test_none_put_rejected(self):
        state, _log = logged_state()
        with pytest.raises(StateStoreError):
            state.put("k", None)

    def test_transient_state_skips_changelog(self):
        state = KeyValueState("s", InMemoryStore(), changelog_append=None)
        state.put("k", 1)  # no error, nothing published
        assert state.get("k") == 1

    def test_counters(self):
        state, _log = logged_state()
        state.put("a", 1)
        state.get("a")
        state.get("b")
        state.delete("a")
        assert (state.puts, state.gets, state.deletes) == (1, 2, 1)


class TestHelpers:
    def test_get_or_default(self):
        state, _log = logged_state()
        assert state.get_or_default("missing", 7) == 7
        state.put("k", 3)
        assert state.get_or_default("k", 7) == 3

    def test_contains_items_len(self):
        state, _log = logged_state()
        state.put("a", 1)
        state.put("b", 2)
        assert "a" in state
        assert dict(state.items()) == {"a": 1, "b": 2}
        assert len(state) == 2


class TestRestore:
    def test_restore_entry_does_not_republish(self):
        state, log = logged_state()
        state.restore_entry("k", 5)
        assert state.get("k") == 5
        assert log == []

    def test_restore_tombstone_deletes(self):
        state, _log = logged_state()
        state.restore_entry("k", 5)
        state.restore_entry("k", None)
        assert state.get("k") is None

    def test_replaying_changelog_rebuilds_state(self):
        state, log = logged_state()
        state.put("a", 1)
        state.put("b", 2)
        state.put("a", 3)
        state.delete("b")
        rebuilt = KeyValueState("counts", InMemoryStore())
        for key, value in log:
            rebuilt.restore_entry(key, value)
        assert dict(rebuilt.items()) == dict(state.items()) == {"a": 3}


class TestNaming:
    def test_changelog_topic_name(self):
        assert changelog_topic_name("job", "store") == "__changelog-job-store"
