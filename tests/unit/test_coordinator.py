"""Unit tests for the ZooKeeper-like coordinator."""

import pytest

from repro.cluster.coordinator import (
    EVENT_CHANGED,
    EVENT_CHILD,
    EVENT_CREATED,
    EVENT_DELETED,
    Coordinator,
)
from repro.common.errors import (
    NodeExistsError,
    NoNodeError,
    SessionExpiredError,
)


class TestNamespace:
    def test_create_and_get(self):
        coord = Coordinator()
        coord.create("/a", data={"x": 1})
        assert coord.get("/a") == {"x": 1}

    def test_duplicate_create_rejected(self):
        coord = Coordinator()
        coord.create("/a")
        with pytest.raises(NodeExistsError):
            coord.create("/a")

    def test_missing_parent_rejected(self):
        coord = Coordinator()
        with pytest.raises(NoNodeError):
            coord.create("/a/b/c")

    def test_make_parents(self):
        coord = Coordinator()
        coord.create("/a/b/c", make_parents=True)
        assert coord.exists("/a")
        assert coord.exists("/a/b")
        assert coord.children("/a") == ["/a/b"]

    def test_delete(self):
        coord = Coordinator()
        coord.create("/a")
        coord.delete("/a")
        assert not coord.exists("/a")

    def test_delete_missing_rejected(self):
        with pytest.raises(NoNodeError):
            Coordinator().delete("/nope")

    def test_delete_cascades_to_children(self):
        coord = Coordinator()
        coord.create("/a/b/c", make_parents=True)
        coord.delete("/a")
        assert not coord.exists("/a/b/c")

    def test_set_data_bumps_version(self):
        coord = Coordinator()
        coord.create("/a", data=1)
        assert coord.version("/a") == 0
        assert coord.set_data("/a", 2) == 1
        assert coord.get("/a") == 2

    def test_children_sorted(self):
        coord = Coordinator()
        coord.create("/p")
        coord.create("/p/b")
        coord.create("/p/a")
        assert coord.children("/p") == ["/p/a", "/p/b"]

    def test_invalid_path_rejected(self):
        coord = Coordinator()
        with pytest.raises(NoNodeError):
            coord.create("no-slash")
        with pytest.raises(NoNodeError):
            coord.create("/trailing/")

    def test_sequential_nodes_unique_and_ordered(self):
        coord = Coordinator()
        coord.create("/q")
        first = coord.create("/q/n-", sequential=True)
        second = coord.create("/q/n-", sequential=True)
        assert first != second
        assert sorted([first, second]) == [first, second]


class TestSessions:
    def test_ephemeral_requires_session(self):
        coord = Coordinator()
        with pytest.raises(SessionExpiredError):
            coord.create("/e", ephemeral=True)

    def test_expiry_deletes_ephemerals(self):
        coord = Coordinator()
        session = coord.connect("broker-1")
        coord.create("/e1", ephemeral=True, session=session)
        coord.create("/e2", ephemeral=True, session=session)
        coord.create("/durable")
        victims = coord.expire_session(session)
        assert sorted(victims) == ["/e1", "/e2"]
        assert not coord.exists("/e1")
        assert coord.exists("/durable")

    def test_expired_session_cannot_create(self):
        coord = Coordinator()
        session = coord.connect("b")
        coord.expire_session(session)
        with pytest.raises(SessionExpiredError):
            coord.create("/x", ephemeral=True, session=session)

    def test_double_expiry_noop(self):
        coord = Coordinator()
        session = coord.connect("b")
        coord.expire_session(session)
        assert coord.expire_session(session) == []


class TestWatches:
    def test_create_watch_fires(self):
        coord = Coordinator()
        events = []
        coord.watch("/w", lambda ev, path: events.append((ev, path)))
        coord.create("/w")
        assert events == [(EVENT_CREATED, "/w")]

    def test_delete_watch_fires(self):
        coord = Coordinator()
        coord.create("/w")
        events = []
        coord.watch("/w", lambda ev, path: events.append(ev))
        coord.delete("/w")
        assert events == [EVENT_DELETED]

    def test_change_watch_fires(self):
        coord = Coordinator()
        coord.create("/w", data=1)
        events = []
        coord.watch("/w", lambda ev, path: events.append(ev))
        coord.set_data("/w", 2)
        assert events == [EVENT_CHANGED]

    def test_watch_is_one_shot(self):
        coord = Coordinator()
        coord.create("/w", data=1)
        events = []
        coord.watch("/w", lambda ev, path: events.append(ev))
        coord.set_data("/w", 2)
        coord.set_data("/w", 3)
        assert len(events) == 1

    def test_child_watch_fires_on_create_and_delete(self):
        coord = Coordinator()
        coord.create("/p")
        events = []
        coord.watch_children("/p", lambda ev, path: events.append((ev, path)))
        coord.create("/p/c")
        assert events == [(EVENT_CHILD, "/p")]
        coord.watch_children("/p", lambda ev, path: events.append((ev, path)))
        coord.delete("/p/c")
        assert len(events) == 2


class TestElection:
    def test_first_candidate_wins(self):
        coord = Coordinator()
        s1 = coord.connect("b1")
        s2 = coord.connect("b2")
        assert coord.elect("/controller", "b1", s1) is True
        assert coord.elect("/controller", "b2", s2) is False
        assert coord.get("/controller") == "b1"

    def test_expiry_frees_the_seat(self):
        coord = Coordinator()
        s1 = coord.connect("b1")
        s2 = coord.connect("b2")
        coord.elect("/controller", "b1", s1)
        coord.expire_session(s1)
        assert coord.elect("/controller", "b2", s2) is True
        assert coord.get("/controller") == "b2"
