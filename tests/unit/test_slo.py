"""SLO burn-rate monitoring: windows, edges, hysteresis, edge cases.

The satellite checklist pins the awkward corners explicitly: empty
windows must burn nothing, clock jumps (checkpoint/failover gaps) must
not wedge a firing alert, and the hysteresis band must prevent flapping
when a signal hovers at the boundary.
"""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.observability.slo import (
    ABOVE,
    ALERT_FIRING,
    ALERT_RESOLVED,
    BELOW,
    ClusterSloSampler,
    Slo,
    SloMonitor,
    standard_slos,
)


def make_monitor(**overrides) -> tuple[SimClock, SloMonitor, Slo]:
    clock = SimClock()
    monitor = SloMonitor(clock)
    spec = dict(
        name="latency",
        signal="p99_seconds",
        objective=1.0,
        direction=BELOW,
        short_window=10.0,
        long_window=60.0,
        error_budget=0.1,
        burn_threshold=2.0,
        clear_threshold=1.0,
    )
    spec.update(overrides)
    slo = monitor.register(Slo(**spec))
    return clock, monitor, slo


class TestSloSpec:
    def test_direction_validation(self):
        with pytest.raises(ConfigError):
            Slo(name="x", signal="s", objective=1.0, direction="sideways")

    def test_budget_validation(self):
        with pytest.raises(ConfigError):
            Slo(name="x", signal="s", objective=1.0, error_budget=0.0)

    def test_window_validation(self):
        with pytest.raises(ConfigError):
            Slo(name="x", signal="s", objective=1.0,
                short_window=60.0, long_window=10.0)

    def test_hysteresis_validation(self):
        with pytest.raises(ConfigError):
            Slo(name="x", signal="s", objective=1.0,
                burn_threshold=1.0, clear_threshold=2.0)

    def test_goodness_directions(self):
        below = Slo(name="a", signal="s", objective=5.0, direction=BELOW)
        above = Slo(name="b", signal="s", objective=0.99, direction=ABOVE)
        assert below.is_good(5.0) and not below.is_good(5.1)
        assert above.is_good(1.0) and not above.is_good(0.5)

    def test_duplicate_registration_rejected(self):
        _, monitor, _ = make_monitor()
        with pytest.raises(ConfigError):
            monitor.register(Slo(name="latency", signal="s", objective=1.0))

    def test_unknown_slo_rejected(self):
        _, monitor, _ = make_monitor()
        with pytest.raises(ConfigError):
            monitor.observe("nope", 1.0)
        with pytest.raises(ConfigError):
            monitor.burn_rates("nope")
        with pytest.raises(ConfigError):
            monitor.is_firing("nope")


class TestBurnRates:
    def test_empty_windows_burn_nothing(self):
        """Edge case: no observations at all — burn 0, never fires."""
        _, monitor, _ = make_monitor()
        assert monitor.burn_rates("latency") == (0.0, 0.0)
        assert monitor.evaluate() == []
        assert not monitor.is_firing("latency")

    def test_all_good_burns_nothing(self):
        clock, monitor, _ = make_monitor()
        for _ in range(10):
            monitor.observe("latency", 0.5)
            clock.advance(1.0)
        assert monitor.burn_rates("latency") == (0.0, 0.0)

    def test_all_bad_burns_at_inverse_budget(self):
        clock, monitor, _ = make_monitor()
        for _ in range(10):
            monitor.observe("latency", 5.0)
            clock.advance(1.0)
        short, long = monitor.burn_rates("latency")
        assert short == pytest.approx(10.0)  # bad fraction 1.0 / budget 0.1
        assert long == pytest.approx(10.0)

    def test_short_window_recovers_before_long(self):
        clock, monitor, _ = make_monitor()
        for _ in range(20):
            monitor.observe("latency", 5.0)
            clock.advance(1.0)
        for _ in range(15):
            monitor.observe("latency", 0.5)
            clock.advance(1.0)
        short, long = monitor.burn_rates("latency")
        assert short < 2.0      # recent window is clean
        assert long > 2.0       # long window still remembers the incident


class TestAlertEdges:
    def test_fires_once_then_resolves_once(self):
        clock, monitor, _ = make_monitor()
        # Burn hard: every observation bad.
        for _ in range(12):
            monitor.observe("latency", 9.0)
            clock.advance(1.0)
        first = monitor.evaluate()
        assert [a.state for a in first] == [ALERT_FIRING]
        assert monitor.is_firing("latency")
        # Still burning: steady state emits nothing (edge-triggered).
        monitor.observe("latency", 9.0)
        assert monitor.evaluate() == []
        # Recover fully; both windows must clean up before resolution.
        for _ in range(70):
            monitor.observe("latency", 0.1)
            clock.advance(1.0)
        resolved = monitor.evaluate()
        assert [a.state for a in resolved] == [ALERT_RESOLVED]
        assert not monitor.is_firing("latency")
        assert monitor.alerts_emitted == 2

    def test_alert_record_shape(self):
        clock, monitor, _ = make_monitor()
        for _ in range(12):
            monitor.observe("latency", 9.0)
            clock.advance(1.0)
        alert = monitor.evaluate()[0]
        payload = alert.as_dict()
        assert payload["slo"] == "latency"
        assert payload["signal"] == "p99_seconds"
        assert payload["state"] == ALERT_FIRING
        assert payload["burn_short"] >= 2.0
        assert payload["burn_long"] >= 2.0
        assert payload["timestamp"] == clock.now()
        assert "burn" in payload["reason"]

    def test_no_flapping_at_the_boundary(self):
        """Hysteresis: a signal hovering around the objective crosses each
        edge at most once per genuine incident, not once per sample."""
        clock, monitor, _ = make_monitor(
            error_budget=0.5, burn_threshold=1.6, clear_threshold=0.8
        )
        edges = []
        # Alternate bad/good forever: bad fraction hovers at 0.5, burn at
        # 1.0 — inside the hysteresis band [0.8, 1.6) whichever state we
        # are in, so after the initial settling nothing may flap.
        for i in range(200):
            monitor.observe("latency", 9.0 if i % 2 == 0 else 0.1)
            clock.advance(0.5)
            edges.extend(monitor.evaluate())
        assert len(edges) <= 1

    def test_burst_then_quiet_does_fire_and_resolve(self):
        clock, monitor, _ = make_monitor(
            error_budget=0.5, burn_threshold=1.6, clear_threshold=0.8
        )
        states = []
        for _ in range(30):  # hard incident
            monitor.observe("latency", 9.0)
            clock.advance(1.0)
            states.extend(a.state for a in monitor.evaluate())
        for _ in range(80):  # full recovery
            monitor.observe("latency", 0.1)
            clock.advance(1.0)
            states.extend(a.state for a in monitor.evaluate())
        assert states == [ALERT_FIRING, ALERT_RESOLVED]


class TestClockJumps:
    def test_forward_jump_empties_windows_and_resolves(self):
        """Edge case: a failover/checkpoint gap jumps the clock far ahead.
        The windows must empty (stale samples pruned), burn must read 0,
        and a firing alert must resolve rather than wedge."""
        clock, monitor, _ = make_monitor()
        for _ in range(12):
            monitor.observe("latency", 9.0)
            clock.advance(1.0)
        assert [a.state for a in monitor.evaluate()] == [ALERT_FIRING]
        clock.advance(10_000.0)  # the jump
        alerts = monitor.evaluate()
        assert [a.state for a in alerts] == [ALERT_RESOLVED]
        assert monitor.burn_rates("latency") == (0.0, 0.0)
        assert monitor.status()[0].samples == 0  # pruned

    def test_jump_without_incident_stays_quiet(self):
        clock, monitor, _ = make_monitor()
        monitor.observe("latency", 0.5)
        clock.advance(10_000.0)
        assert monitor.evaluate() == []

    def test_old_samples_prune_but_fresh_survive(self):
        clock, monitor, _ = make_monitor()
        monitor.observe("latency", 9.0)
        clock.advance(100.0)  # beyond the 60 s long window
        monitor.observe("latency", 9.0)
        monitor.evaluate()
        assert monitor.status()[0].samples == 1


class TestStandardSlos:
    def test_standard_set_covers_the_four_signals(self):
        names = {slo.name for slo in standard_slos()}
        assert names == {
            "freshness",
            "consumer_lag",
            "isr_availability",
            "standby_staleness",
        }

    def test_sampler_registers_and_samples(self):
        from repro.messaging.cluster import MessagingCluster

        cluster = MessagingCluster(num_brokers=1)
        cluster.create_topic("t", num_partitions=1, replication_factor=1)
        monitor = SloMonitor(cluster.clock)
        sampler = ClusterSloSampler(monitor, cluster)
        sampler.sample()
        status = {s.slo: s for s in monitor.status()}
        assert status["isr_availability"].samples == 1
        assert status["consumer_lag"].samples == 1
        # Healthy idle cluster: nothing burns.
        assert monitor.evaluate() == []

    def test_sampler_sees_runner_freshness_and_standbys(self):
        from repro.messaging.cluster import MessagingCluster
        from repro.messaging.producer import Producer
        from repro.processing.job import JobConfig, JobRunner, StoreConfig

        class _Counting:
            def init(self, context):
                self.store = context.store("counts")

            def process(self, record, collector):
                self.store.put(record.key, (self.store.get(record.key) or 0) + 1)

        cluster = MessagingCluster(num_brokers=1)
        cluster.create_topic("in", num_partitions=1, replication_factor=1)
        producer = Producer(cluster)
        for i in range(10):
            producer.send("in", {"i": i}, key=f"k{i % 3}")
        runner = JobRunner(
            JobConfig(
                name="job",
                inputs=["in"],
                task_factory=_Counting,
                stores=[StoreConfig("counts")],
                num_standby_replicas=1,
            ),
            cluster,
        )
        runner.run_until_idle()
        monitor = SloMonitor(cluster.clock)
        sampler = ClusterSloSampler(monitor, cluster, runners=[runner])
        sampler.sample()
        status = {s.slo: s for s in monitor.status()}
        assert status["freshness"].samples == 1
        assert status["standby_staleness"].samples == 1
        assert runner.freshness() >= 0.0
