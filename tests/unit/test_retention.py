"""Unit tests for log retention (§4.1)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.storage.log import LogConfig, PartitionLog
from repro.storage.retention import RetentionConfig, RetentionEnforcer


def filled_log(clock: SimClock, n=20, per_segment=5) -> PartitionLog:
    log = PartitionLog(
        "t-0", LogConfig(segment_max_messages=per_segment), clock=clock
    )
    for i in range(n):
        log.append("k", i, timestamp=clock.now())
        clock.advance(1.0)
    return log


class TestConfig:
    def test_disabled_by_default(self):
        assert not RetentionConfig().enabled

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigError):
            RetentionConfig(retention_seconds=-1)
        with pytest.raises(ConfigError):
            RetentionConfig(retention_bytes=-1)


class TestTimeRetention:
    def test_old_segments_deleted(self):
        clock = SimClock()
        log = filled_log(clock)  # messages at t=0..19, clock now 20
        enforcer = RetentionEnforcer(RetentionConfig(retention_seconds=8.0), clock)
        result = enforcer.enforce(log)
        # Segments whose newest record is older than t=12 go: segments
        # [0-4] (newest t=4) and [5-9] (newest t=9).
        assert result.segments_deleted == 2
        assert log.log_start_offset == 10

    def test_fresh_segments_kept(self):
        clock = SimClock()
        log = filled_log(clock)
        enforcer = RetentionEnforcer(RetentionConfig(retention_seconds=100.0), clock)
        result = enforcer.enforce(log)
        assert result.segments_deleted == 0

    def test_active_segment_never_deleted(self):
        clock = SimClock()
        log = filled_log(clock)
        clock.advance(1000.0)
        enforcer = RetentionEnforcer(RetentionConfig(retention_seconds=1.0), clock)
        enforcer.enforce(log)
        assert log.segment_count >= 1
        assert log.message_count == 5  # active segment's records survive

    def test_disabled_is_noop(self):
        clock = SimClock()
        log = filled_log(clock)
        enforcer = RetentionEnforcer(RetentionConfig(), clock)
        result = enforcer.enforce(log)
        assert result.segments_deleted == 0
        assert log.message_count == 20


class TestSizeRetention:
    def test_oldest_dropped_until_under_cap(self):
        clock = SimClock()
        log = filled_log(clock)
        cap = log.size_bytes // 2
        enforcer = RetentionEnforcer(RetentionConfig(retention_bytes=cap), clock)
        result = enforcer.enforce(log)
        assert result.segments_deleted > 0
        assert log.size_bytes <= cap

    def test_active_segment_survives_even_over_cap(self):
        clock = SimClock()
        log = filled_log(clock)
        enforcer = RetentionEnforcer(RetentionConfig(retention_bytes=1), clock)
        enforcer.enforce(log)
        assert log.message_count == 5

    def test_reads_work_after_retention(self):
        clock = SimClock()
        log = filled_log(clock)
        enforcer = RetentionEnforcer(
            RetentionConfig(retention_bytes=log.size_bytes // 2), clock
        )
        result = enforcer.enforce(log)
        batch = log.read(result.new_log_start_offset, max_messages=3).messages
        assert batch[0].offset == result.new_log_start_offset


class TestCombined:
    def test_both_bounds_apply(self):
        clock = SimClock()
        log = filled_log(clock)
        enforcer = RetentionEnforcer(
            RetentionConfig(retention_seconds=8.0, retention_bytes=1), clock
        )
        result = enforcer.enforce(log)
        assert result.segments_deleted == 3  # everything but active
        assert result.messages_deleted == 15
        assert result.bytes_deleted > 0
