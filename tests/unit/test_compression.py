"""Unit tests for the compressed batch wire format.

Covers the codec spec parser, frame construction/round-trip, stored-size
apportionment, the page-cache footprint of compressed segments, and the
observability surface (metric names + AdminClient snapshot).
"""

import pytest

from repro.common.clock import SimClock
from repro.common.compression import (
    BATCH_FRAME_HEADER_BYTES,
    BatchFrame,
    compress_entries,
    decompress_entries,
    parse_compression,
)
from repro.common.errors import ConfigError
from repro.common.records import TRACE_HEADER, TopicPartition, estimate_size
from repro.messaging.cluster import MessagingCluster
from repro.messaging.config import ConsumerConfig, ProducerConfig
from repro.messaging.consumer import Consumer
from repro.messaging.producer import Producer
from repro.storage.log import LogConfig, PartitionLog
from repro.storage.pagecache import PageCache
from repro.tools.admin import AdminClient


def entries(n, fanout=1, payload="x" * 120):
    return [(f"k{i % fanout}", f"{payload}-{i}", float(i), {}) for i in range(n)]


class TestParseCompression:
    def test_none(self):
        assert parse_compression("none") == ("none", 0)

    def test_zlib_default_level(self):
        assert parse_compression("zlib") == ("zlib", 6)

    def test_zlib_explicit_levels(self):
        for level in range(1, 10):
            assert parse_compression(f"zlib:{level}") == ("zlib", level)

    @pytest.mark.parametrize(
        "bad", ["gzip", "zlib:0", "zlib:10", "zlib:x", "none:3", "", 6]
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ConfigError):
            parse_compression(bad)


class TestBatchFrame:
    def test_none_codec_builds_no_frame(self):
        assert compress_entries(entries(5), "none", 0) is None

    def test_empty_batch_builds_no_frame(self):
        assert compress_entries([], "zlib", 6) is None

    def test_unpicklable_payload_falls_back(self):
        bad = [("k", lambda: None, 0.0, {})]
        assert compress_entries(bad, "zlib", 6) is None

    def test_round_trip(self):
        batch = entries(10)
        frame = compress_entries(batch, "zlib", 6)
        assert frame is not None
        assert not frame.inflated
        assert decompress_entries(frame) == batch
        assert frame.inflated

    def test_payload_bytes_match_uncompressed_accounting(self):
        batch = entries(7)
        frame = compress_entries(batch, "zlib", 6)
        expected = sum(
            estimate_size(k) + estimate_size(v) + estimate_size(h)
            for k, v, _ts, h in batch
        )
        assert frame.payload_bytes == expected
        assert frame.sizes == tuple(
            estimate_size(k) + estimate_size(v) + estimate_size(h)
            for k, v, _ts, h in batch
        )

    def test_wire_bytes_include_header(self):
        frame = compress_entries(entries(10), "zlib", 6)
        assert frame.wire_bytes == len(frame.payload) + BATCH_FRAME_HEADER_BYTES

    def test_compressible_batch_wins(self):
        frame = compress_entries(entries(50), "zlib", 6)
        assert frame.wire_bytes < frame.payload_bytes
        assert frame.ratio > 1.0

    def test_trace_headers_do_not_change_the_payload(self):
        plain = entries(5)
        traced = [
            (k, v, ts, {TRACE_HEADER: f"ctx-{i}"})
            for i, (k, v, ts, _h) in enumerate(plain)
        ]
        frame_plain = compress_entries(plain, "zlib", 6)
        frame_traced = compress_entries(traced, "zlib", 6)
        assert frame_traced.payload == frame_plain.payload
        assert frame_traced.wire_bytes == frame_plain.wire_bytes
        assert frame_traced.trace_contexts == tuple(
            f"ctx-{i}" for i in range(5)
        )
        assert frame_plain.trace_contexts == ()

    def test_stored_sizes_sum_and_floor(self):
        frame = compress_entries(entries(9), "zlib", 6)
        shares = frame.stored_sizes()
        assert len(shares) == frame.count
        assert sum(shares) == max(frame.wire_bytes, frame.count)
        assert all(s >= 1 for s in shares)
        assert max(shares) - min(shares) <= 1


class TestPageCacheFootprint:
    def test_compressed_segment_occupies_fewer_pages(self):
        """Identical records land as fewer pages when stored compressed."""

        def build(with_frame):
            clock = SimClock()
            cache = PageCache(clock=clock, capacity_bytes=64 * 1024 * 1024)
            log = PartitionLog(
                "twin-0",
                LogConfig(segment_max_messages=1000),
                clock=clock,
                page_cache=cache,
            )
            # Large enough that the uncompressed twin spans several 64 KiB
            # pages while the (highly repetitive) compressed frame fits in
            # far fewer.
            batch = entries(400, payload="compressible " * 60)
            frame = compress_entries(batch, "zlib", 6) if with_frame else None
            log.append_batch(batch, frame=frame)
            return cache, log

        plain_cache, plain_log = build(with_frame=False)
        packed_cache, packed_log = build(with_frame=True)
        assert packed_cache.resident_bytes() < plain_cache.resident_bytes()
        # The logical view is unchanged: same records, same logical sizes.
        plain = plain_log.read(0, 1000).messages
        packed = packed_log.read(0, 1000).messages
        assert [(m.key, m.value, m.size) for m in plain] == [
            (m.key, m.value, m.size) for m in packed
        ]
        assert sum(m.stored_size for m in packed) < sum(
            m.stored_size for m in plain
        )


def _drive_compressed_cluster():
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("t", num_partitions=1, replication_factor=3)
    producer = Producer(
        cluster,
        config=ProducerConfig(compression="zlib:6", linger_messages=10),
    )
    for i in range(60):
        producer.send("t", {"payload": "y" * 80, "i": i}, key=f"k{i % 3}")
    producer.flush()
    for _ in range(5):
        cluster.tick()
    consumer = Consumer(
        cluster,
        config=ConsumerConfig(
            auto_offset_reset="earliest", prefetch=True, max_poll_messages=16
        ),
    )
    consumer.assign([TopicPartition("t", 0)])
    drained = []
    for _ in range(50):
        batch = consumer.poll()
        if not batch:
            break
        drained.extend(batch)
        cluster.clock.advance(0.01)
    return cluster, drained


class TestObservability:
    def test_metric_names_and_values(self):
        cluster, drained = _drive_compressed_cluster()
        assert len(drained) == 60
        snapshot = cluster.metrics.snapshot()
        ratio = snapshot["messaging.producer.compression_ratio"]
        assert ratio["count"] > 0 and ratio["mean"] > 1.0
        assert snapshot["messaging.broker.bytes_saved"] > 0
        assert snapshot["messaging.cluster.bytes_on_wire"] > 0
        assert snapshot["messaging.consumer.prefetch_hits"] > 0

    def test_admin_surfaces_compression_stats(self):
        cluster, _drained = _drive_compressed_cluster()
        admin = AdminClient(cluster)
        stats = admin.compression_stats()
        assert sorted(stats) == [
            "bytes_on_wire",
            "bytes_saved",
            "compressed_batches",
            "mean_compression_ratio",
            "prefetch_hits",
        ]
        assert stats["mean_compression_ratio"] > 1.0
        assert stats["bytes_saved"] > 0
        assert stats["prefetch_hits"] > 0
        described = admin.describe_cluster()
        assert described["compression"] == stats

    def test_admin_stats_zero_on_quiet_cluster(self):
        cluster = MessagingCluster(num_brokers=1, clock=SimClock())
        stats = AdminClient(cluster).compression_stats()
        assert stats["mean_compression_ratio"] == 0.0
        assert stats["compressed_batches"] == 0.0
        assert stats["bytes_saved"] == 0.0
        assert stats["prefetch_hits"] == 0.0
