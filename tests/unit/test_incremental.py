"""Unit tests for incremental processing (§4.2, the E3 mechanism)."""

from repro.common.clock import SimClock
from repro.core.incremental import IncrementalFold
from repro.messaging.cluster import MessagingCluster


def make_cluster(n=50) -> MessagingCluster:
    cluster = MessagingCluster(num_brokers=1, clock=SimClock())
    cluster.create_topic("t", num_partitions=2, replication_factor=1)
    append(cluster, n)
    return cluster


def append(cluster, n, start=0):
    for i in range(start, start + n):
        cluster.produce("t", i % 2, [(f"k{i}", {"n": i}, None, {})])


def counting_fold(cluster) -> IncrementalFold:
    return IncrementalFold(
        cluster,
        "t",
        group="stats",
        init=lambda: {"count": 0, "sum": 0},
        fold=lambda s, r: {"count": s["count"] + 1, "sum": s["sum"] + r.value["n"]},
    )


class TestIncrementalUpdate:
    def test_first_update_reads_everything(self):
        cluster = make_cluster(50)
        fold = counting_fold(cluster)
        report = fold.update()
        assert report.records_read == 50
        assert fold.state["count"] == 50
        assert fold.state["sum"] == sum(range(50))

    def test_second_update_reads_only_delta(self):
        cluster = make_cluster(50)
        fold = counting_fold(cluster)
        fold.update()
        append(cluster, 5, start=50)
        report = fold.update()
        assert report.records_read == 5
        assert fold.state["count"] == 55

    def test_no_new_data_reads_nothing(self):
        cluster = make_cluster(10)
        fold = counting_fold(cluster)
        fold.update()
        report = fold.update()
        assert report.records_read == 0
        assert report.simulated_seconds == 0.0

    def test_positions_survive_process_restart(self):
        """§4.2: after failure, fetch offsets from the offset manager."""
        cluster = make_cluster(30)
        counting_fold(cluster).update()  # processed and checkpointed, then "dies"
        fresh = counting_fold(cluster)   # new process, same group
        append(cluster, 4, start=30)
        report = fresh.update()
        assert report.records_read == 4  # resumed, not restarted

    def test_checkpoints_carry_version(self):
        cluster = make_cluster(10)
        fold = IncrementalFold(
            cluster, "t", "stats", init=dict, fold=lambda s, r: s, version="v3"
        )
        fold.update()
        from repro.common.records import TopicPartition

        commit = cluster.offset_manager.fetch("stats", TopicPartition("t", 0))
        assert commit.metadata["software_version"] == "v3"


class TestFullRecompute:
    def test_recompute_reads_everything_again(self):
        cluster = make_cluster(50)
        fold = counting_fold(cluster)
        fold.update()
        report = fold.recompute_from_scratch()
        assert report.records_read == 50
        assert report.from_scratch
        assert fold.state["count"] == 50  # state equals incremental result

    def test_incremental_equals_recompute(self):
        cluster = make_cluster(40)
        incremental = counting_fold(cluster)
        incremental.update()
        append(cluster, 10, start=40)
        incremental.update()
        scratch = IncrementalFold(
            cluster, "t", "other-group",
            init=lambda: {"count": 0, "sum": 0},
            fold=lambda s, r: {
                "count": s["count"] + 1, "sum": s["sum"] + r.value["n"]
            },
        )
        scratch.recompute_from_scratch()
        assert incremental.state == scratch.state

    def test_recompute_cost_grows_with_history_incremental_does_not(self):
        """The paper's claim: full-recompute cost "would increase linearly
        with data size" while incremental cost tracks only the delta."""
        costs = {}
        for history in (1000, 4000):
            cluster = make_cluster(history)
            fold = counting_fold(cluster)
            fold.update()
            append(cluster, 10, start=history)
            incremental = fold.update().simulated_seconds
            recompute = fold.recompute_from_scratch().simulated_seconds
            costs[history] = (incremental, recompute)
        # Recompute scales with history (4x data -> >2x cost)...
        assert costs[4000][1] > 2 * costs[1000][1]
        # ...incremental does not (same 10-record delta, similar cost).
        assert costs[4000][0] < 2 * costs[1000][0]
        # And at the larger history, incremental decisively wins.
        assert costs[4000][1] > 5 * costs[4000][0]
