"""Unit tests for the failpoint registry and its hot-path hooks."""

import random

import pytest

from repro.chaos.failpoints import (
    SKIP,
    FailpointRegistry,
    failpoint,
    raising,
    registry,
    skipping,
)
from repro.common.clock import SimClock
from repro.common.errors import BrokerUnavailableError, ConfigError
from repro.messaging.cluster import MessagingCluster
from repro.tools.lint_failpoints import find_static_offenders, main


@pytest.fixture(autouse=True)
def clean_registry():
    registry().disarm_all()
    registry().reset_counters()
    yield
    registry().disarm_all()
    registry().reset_counters()


class TestRegistry:
    def test_disarmed_hit_returns_none(self):
        assert failpoint("never.armed") is None
        assert registry().fires("never.armed") == 0

    def test_armed_action_fires_at_call_site(self):
        registry().arm("fp", raising(lambda: BrokerUnavailableError("boom")))
        with pytest.raises(BrokerUnavailableError):
            failpoint("fp")

    def test_skip_sentinel(self):
        registry().arm("fp", skipping)
        assert failpoint("fp") is SKIP

    def test_action_receives_context(self):
        seen = {}

        def action(**ctx):
            seen.update(ctx)

        registry().arm("fp", action)
        failpoint("fp", broker=3)
        assert seen == {"name": "fp", "broker": 3}

    def test_times_auto_disarms(self):
        registry().arm("fp", times=2)
        failpoint("fp")
        failpoint("fp")
        assert not registry().is_armed("fp")
        assert failpoint("fp") is None
        assert registry().fires("fp") == 2

    def test_probability_requires_rng(self):
        with pytest.raises(ConfigError):
            registry().arm("fp", probability=0.5)

    def test_probability_gate_is_seed_deterministic(self):
        def pattern(seed):
            reg = FailpointRegistry()
            reg.arm("fp", probability=0.5, rng=random.Random(seed))
            fires = []
            for _ in range(20):
                reg.hit("fp", {})
                fires.append(reg.fires("fp"))
            return fires

        assert pattern(7) == pattern(7)
        assert 0 < pattern(7)[-1] < 20

    def test_probability_only_counts_fires(self):
        reg = FailpointRegistry()
        reg.arm("fp", times=3, probability=0.5, rng=random.Random(1))
        for _ in range(50):
            reg.hit("fp", {})
        assert reg.fires("fp") == 3
        assert not reg.is_armed("fp")

    def test_scoped_restores_disarmed_state(self):
        with registry().scoped("fp", skipping):
            assert failpoint("fp") is SKIP
        assert failpoint("fp") is None

    def test_scoped_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with registry().scoped("fp", skipping):
                raise RuntimeError("bail")
        assert not registry().is_armed("fp")

    def test_disarm_is_idempotent(self):
        registry().arm("fp")
        assert registry().disarm("fp") is True
        assert registry().disarm("fp") is False

    def test_invalid_times_rejected(self):
        with pytest.raises(ConfigError):
            registry().arm("fp", times=0)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigError):
            registry().arm("fp", probability=1.5, rng=random.Random(0))


class TestHotPathHooks:
    """The declared failpoints are actually reachable from client calls."""

    def make_cluster(self):
        cluster = MessagingCluster(num_brokers=1, clock=SimClock())
        cluster.create_topic("t", num_partitions=1, replication_factor=1)
        return cluster

    def test_cluster_produce_hook(self):
        cluster = self.make_cluster()
        registry().arm(
            "cluster.produce", raising(lambda: BrokerUnavailableError("chaos"))
        )
        with pytest.raises(BrokerUnavailableError):
            cluster.produce("t", 0, [("k", "v", None, {})])
        registry().disarm("cluster.produce")
        cluster.produce("t", 0, [("k", "v", None, {})])

    def test_cluster_fetch_hook(self):
        cluster = self.make_cluster()
        cluster.produce("t", 0, [("k", "v", None, {})])
        registry().arm("cluster.fetch", times=1)
        cluster.fetch("t", 0, 0)
        assert registry().fires("cluster.fetch") == 1

    def test_broker_and_log_hooks_fire_on_produce_path(self):
        cluster = self.make_cluster()
        registry().arm("broker.produce")
        registry().arm("log.append")
        cluster.produce("t", 0, [("k", "v", None, {})])
        assert registry().fires("broker.produce") == 1
        assert registry().fires("log.append") == 1

    def test_log_read_hook_fires_on_fetch_path(self):
        cluster = self.make_cluster()
        cluster.produce("t", 0, [("k", "v", None, {})])
        registry().arm("log.read")
        cluster.fetch("t", 0, 0)
        assert registry().fires("log.read") >= 1

    def test_replication_sync_skip_stalls_follower(self):
        cluster = MessagingCluster(num_brokers=2, clock=SimClock())
        cluster.create_topic("r", num_partitions=1, replication_factor=2)
        cluster.produce("r", 0, [(None, i, None, {}) for i in range(5)])
        with registry().scoped("replication.sync", skipping):
            stats = cluster.tick(0.0)
            assert stats.messages_copied == 0
        stats = cluster.tick(0.0)
        assert stats.messages_copied >= 5


class TestLint:
    def test_library_code_never_arms(self):
        import repro

        src_root = __import__("pathlib").Path(repro.__file__).parents[1]
        assert find_static_offenders(src_root) == []

    def test_lint_main_is_clean(self, capsys):
        assert main([]) == 0
        assert "OK" in capsys.readouterr().out

    def test_lint_flags_arm_calls(self, tmp_path):
        bad = tmp_path / "repro" / "storage"
        bad.mkdir(parents=True)
        (bad / "evil.py").write_text("registry().arm('x')\n")
        offenders = find_static_offenders(tmp_path)
        assert len(offenders) == 1
        assert "evil.py:1" in offenders[0]
