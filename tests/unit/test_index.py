"""Unit tests for the sparse offset index."""

import pytest

from repro.common.errors import ConfigError
from repro.storage.index import SparseOffsetIndex


class TestMaybeAdd:
    def test_first_record_always_indexed(self):
        index = SparseOffsetIndex(interval_bytes=1000)
        assert index.maybe_add(0, 0, 100) is True

    def test_entries_respect_interval(self):
        index = SparseOffsetIndex(interval_bytes=250)
        added = [index.maybe_add(i, i * 100, 100) for i in range(10)]
        # First always; then one every ceil(250/100)=3 records.
        assert added[0] is True
        assert sum(added) == pytest.approx(1 + 3)

    def test_offsets_must_increase(self):
        index = SparseOffsetIndex()
        index.maybe_add(5, 0, 10)
        with pytest.raises(ConfigError):
            index.maybe_add(5, 10, 10)

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ConfigError):
            SparseOffsetIndex(interval_bytes=0)


class TestLookup:
    def _filled(self) -> SparseOffsetIndex:
        index = SparseOffsetIndex(interval_bytes=200)
        position = 0
        for offset in range(0, 20, 2):
            index.maybe_add(offset, position, 100)
            position += 100
        return index

    def test_exact_hit(self):
        index = self._filled()
        assert index.lookup(0) == 0

    def test_between_entries_returns_floor(self):
        index = self._filled()
        floor_for_1 = index.lookup(1)
        assert floor_for_1 == index.lookup(0)

    def test_before_first_entry_returns_zero(self):
        index = SparseOffsetIndex(interval_bytes=10)
        index.maybe_add(100, 5000, 10)
        assert index.lookup(50) == 0

    def test_past_last_entry_returns_last(self):
        index = self._filled()
        assert index.lookup(10_000) == index.lookup(18)


class TestRebuild:
    def test_rebuild_replaces_entries(self):
        index = SparseOffsetIndex(interval_bytes=100)
        index.maybe_add(0, 0, 100)
        index.maybe_add(1, 100, 100)
        index.rebuild([(10, 0, 100), (11, 100, 100)])
        assert index.lookup(10) == 0
        assert index.lookup(11) == 100

    def test_size_bytes(self):
        index = SparseOffsetIndex(interval_bytes=1)
        index.maybe_add(0, 0, 10)
        index.maybe_add(1, 10, 10)
        assert index.size_bytes() == 32
        assert index.entry_count == 2
