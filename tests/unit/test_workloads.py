"""Unit tests for the synthetic workload generators."""

import pytest

import networkx as nx

from repro.common.errors import ConfigError
from repro.workloads import (
    CDNS,
    METRICS,
    CallGraphEventGenerator,
    CdnDegradation,
    ErrorBurst,
    EventClock,
    KeyPool,
    OperationalEventGenerator,
    ProfileUpdateGenerator,
    RumEventGenerator,
    SlowService,
    assemble_call_tree,
    critical_path_ms,
    zipf_weights,
)


class TestGenerators:
    def test_zipf_weights_decrease(self):
        weights = zipf_weights(10, skew=1.0)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0

    def test_zipf_zero_skew_uniform(self):
        assert set(zipf_weights(5, skew=0.0)) == {1.0}

    def test_zipf_validation(self):
        with pytest.raises(ConfigError):
            zipf_weights(0)
        with pytest.raises(ConfigError):
            zipf_weights(5, skew=-1)

    def test_keypool_deterministic(self):
        a = KeyPool(100, seed=5)
        b = KeyPool(100, seed=5)
        assert [a.pick() for _ in range(20)] == [b.pick() for _ in range(20)]

    def test_keypool_skew_concentrates(self):
        pool = KeyPool(100, skew=1.5, seed=1)
        picks = pool.pick_many(2000)
        top = max(set(picks), key=picks.count)
        assert picks.count(top) > 2000 / 100 * 5  # way above uniform share

    def test_event_clock_monotonic(self):
        event_clock = EventClock(rate_per_second=10.0, seed=3)
        stamps = [event_clock.next_timestamp() for _ in range(50)]
        assert stamps == sorted(stamps)
        assert all(s > 0 for s in stamps)

    def test_event_clock_rate(self):
        event_clock = EventClock(rate_per_second=100.0, seed=3)
        stamps = [event_clock.next_timestamp() for _ in range(1000)]
        assert stamps[-1] == pytest.approx(10.0, rel=0.3)


class TestRum:
    def test_schema(self):
        event = next(RumEventGenerator().events(1))
        assert set(event) == {
            "user", "page", "load_time_ms", "region", "cdn", "timestamp"
        }
        assert event["cdn"] in CDNS

    def test_deterministic_across_runs(self):
        a = list(RumEventGenerator(seed=9).events(50))
        b = list(RumEventGenerator(seed=9).events(50))
        assert a == b

    def test_degradation_slows_target_cdn_after_time(self):
        degraded = CdnDegradation("cdn-fastly", at_time=5.0, factor=10.0)
        generator = RumEventGenerator(
            rate_per_second=100.0, degradation=degraded, seed=4
        )
        events = list(generator.events(3000))
        before = [
            e["load_time_ms"] for e in events
            if e["cdn"] == "cdn-fastly" and e["timestamp"] < 5.0
        ]
        after = [
            e["load_time_ms"] for e in events
            if e["cdn"] == "cdn-fastly" and e["timestamp"] >= 5.0
        ]
        others = [
            e["load_time_ms"] for e in events if e["cdn"] != "cdn-fastly"
        ]
        assert sum(after) / len(after) > 5 * sum(before) / len(before)
        assert sum(after) / len(after) > 5 * sum(others) / len(others)

    def test_degradation_validation(self):
        with pytest.raises(ConfigError):
            CdnDegradation("cdn-unknown", at_time=0.0)
        with pytest.raises(ConfigError):
            CdnDegradation("cdn-fastly", at_time=0.0, factor=0.5)


class TestCallGraph:
    def test_spans_form_a_tree(self):
        generator = CallGraphEventGenerator(seed=11)
        for spans in generator.requests(20):
            tree = assemble_call_tree(spans)
            assert nx.is_tree(tree) or len(spans) == 1
            roots = [n for n, d in tree.in_degree() if d == 0]
            assert len(roots) == 1

    def test_all_spans_share_request_id(self):
        generator = CallGraphEventGenerator(seed=11)
        spans = next(generator.requests(1))
        assert len({s["request_id"] for s in spans}) == 1

    def test_request_ids_unique_across_requests(self):
        generator = CallGraphEventGenerator(seed=11)
        ids = [spans[0]["request_id"] for spans in generator.requests(10)]
        assert len(set(ids)) == 10

    def test_root_is_frontend(self):
        generator = CallGraphEventGenerator(seed=11)
        spans = next(generator.requests(1))
        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 1
        assert roots[0]["service"] == "frontend"

    def test_slow_service_inflates_durations(self):
        slow = CallGraphEventGenerator(
            seed=11, slow=SlowService("search-svc", factor=50.0)
        )
        spans = [s for spans in slow.requests(100) for s in spans]
        search = [s["duration_ms"] for s in spans if s["service"] == "search-svc"]
        other = [s["duration_ms"] for s in spans if s["service"] != "search-svc"]
        assert sum(search) / len(search) > 10 * sum(other) / len(other)

    def test_critical_path_at_least_root_duration(self):
        generator = CallGraphEventGenerator(seed=11)
        spans = next(generator.requests(1))
        tree = assemble_call_tree(spans)
        root = [s for s in spans if s["parent_id"] is None][0]
        assert critical_path_ms(tree) >= root["duration_ms"]

    def test_assemble_rejects_mixed_requests(self):
        generator = CallGraphEventGenerator(seed=11)
        trees = list(generator.requests(2))
        with pytest.raises(ConfigError):
            assemble_call_tree(trees[0] + trees[1])

    def test_assemble_rejects_empty(self):
        with pytest.raises(ConfigError):
            assemble_call_tree([])


class TestProfiles:
    def test_snapshot_covers_all_users(self):
        generator = ProfileUpdateGenerator(users=50)
        snapshot = list(generator.snapshot())
        assert len(snapshot) == 50
        assert len({p["user"] for p in snapshot}) == 50

    def test_delta_is_small_fraction(self):
        generator = ProfileUpdateGenerator(users=1000, churn_fraction=0.02)
        delta = list(generator.delta(1.0))
        assert len(delta) == 20

    def test_delta_records_are_partial(self):
        generator = ProfileUpdateGenerator(users=100)
        delta = list(generator.delta(1.0))
        for update in delta:
            assert "user" in update and "timestamp" in update
            assert len(update) == 3  # user, timestamp, exactly one field

    def test_validation(self):
        with pytest.raises(ConfigError):
            ProfileUpdateGenerator(users=0)
        with pytest.raises(ConfigError):
            ProfileUpdateGenerator(churn_fraction=0)


class TestOplogs:
    def test_event_types(self):
        generator = OperationalEventGenerator(mobile_crash_fraction=0.05, seed=2)
        events = list(generator.events(500))
        types = {e["type"] for e in events}
        assert types == {"metric", "log", "mobile_crash"}
        metrics = [e for e in events if e["type"] == "metric"]
        assert all(e["metric"] in METRICS for e in metrics)

    def test_burst_host_dominated_by_errors(self):
        burst = ErrorBurst("host-000", at_time=0.0, error_rate=0.95)
        generator = OperationalEventGenerator(hosts=5, burst=burst, seed=2)
        logs = [e for e in generator.events(2000) if e["type"] == "log"]
        burst_logs = [e for e in logs if e["host"] == "host-000"]
        error_rate = sum(
            1 for e in burst_logs if e["severity"] == "ERROR"
        ) / len(burst_logs)
        assert error_rate > 0.8

    def test_validation(self):
        with pytest.raises(ConfigError):
            ErrorBurst("h", at_time=0.0, error_rate=0)
        with pytest.raises(ConfigError):
            OperationalEventGenerator(hosts=0)
