"""Unit tests for the producer client."""

import pytest

from repro.chaos.failpoints import raising, registry
from repro.common.clock import SimClock
from repro.common.errors import (
    BrokerUnavailableError,
    ConfigError,
    MessagingError,
    ProducerFlushError,
)
from repro.common.records import TopicPartition
from repro.common.partitioning import stable_hash
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.producer import Producer


@pytest.fixture(autouse=True)
def clean_failpoints():
    registry().disarm_all()
    yield
    registry().disarm_all()


def make_cluster(partitions=4, **kwargs) -> MessagingCluster:
    cluster = MessagingCluster(num_brokers=3, clock=SimClock(), **kwargs)
    cluster.create_topic("t", num_partitions=partitions, replication_factor=3)
    return cluster


class TestPartitioning:
    def test_same_key_same_partition(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        acks = [producer.send("t", i, key="stable") for i in range(10)]
        partitions = {a.partition.partition for a in acks}
        assert len(partitions) == 1

    def test_hash_matches_stable_hash(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        ack = producer.send("t", "v", key="abc")
        assert ack.partition.partition == stable_hash("abc") % 4

    def test_keyless_round_robins(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        acks = [producer.send("t", i) for i in range(8)]
        partitions = [a.partition.partition for a in acks]
        assert partitions == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_round_robin_partitioner_ignores_keys(self):
        cluster = make_cluster()
        producer = Producer(cluster, partitioner="round_robin")
        acks = [producer.send("t", i, key="same") for i in range(4)]
        assert [a.partition.partition for a in acks] == [0, 1, 2, 3]

    def test_custom_partitioner(self):
        cluster = make_cluster()
        producer = Producer(cluster, partitioner=lambda key, n: 2)
        ack = producer.send("t", "v", key="anything")
        assert ack.partition.partition == 2

    def test_explicit_partition_wins(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        ack = producer.send("t", "v", key="k", partition=3)
        assert ack.partition.partition == 3

    def test_out_of_range_partition_rejected(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        with pytest.raises(ConfigError):
            producer.send("t", "v", partition=4)

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(ConfigError):
            Producer(make_cluster(), partitioner="random")


class TestBatching:
    def test_unbatched_sends_immediately(self):
        producer = Producer(make_cluster())
        assert producer.send("t", "v") is not None
        assert producer.pending() == 0

    def test_batched_buffers_until_linger(self):
        producer = Producer(make_cluster(partitions=1), linger_messages=3)
        assert producer.send("t", 1) is None
        assert producer.send("t", 2) is None
        assert producer.pending() == 2
        ack = producer.send("t", 3)
        assert ack is not None
        assert ack.last_offset - ack.base_offset == 2
        assert producer.pending() == 0

    def test_flush_sends_partial_batches(self):
        producer = Producer(make_cluster(partitions=2), linger_messages=10)
        producer.send("t", 1, partition=0)
        producer.send("t", 2, partition=1)
        acks = producer.flush()
        assert len(acks) == 2
        assert producer.pending() == 0

    def test_invalid_linger_rejected(self):
        with pytest.raises(ConfigError):
            Producer(make_cluster(), linger_messages=0)


class TestRetries:
    def test_retry_succeeds_after_failover(self):
        cluster = make_cluster(partitions=1)
        producer = Producer(cluster, max_retries=3)
        producer.send("t", "before")
        leader = cluster.leader_of("t", 0)
        cluster.kill_broker(leader)
        ack = producer.send("t", "after")
        assert ack is not None
        assert producer.retries == 0  # controller already moved leadership

    def test_retry_on_stale_leader_view(self):
        cluster = make_cluster(partitions=1)
        producer = Producer(cluster, max_retries=3)
        leader = cluster.leader_of("t", 0)
        # Crash the machine without the controller noticing yet: the first
        # attempt hits the dead broker and is retried after the session
        # expiry (modelled here by the kill during the retry's tick).
        cluster.broker(leader).shutdown()
        original_tick = cluster.tick

        def tick_and_fail(dt=0.0, **kwargs):
            cluster.controller.broker_failed(leader)
            cluster.tick = original_tick
            return original_tick(dt, **kwargs)

        cluster.tick = tick_and_fail
        ack = producer.send("t", "after")
        assert ack is not None
        assert producer.retries >= 1

    def test_retries_exhausted_raises(self):
        cluster = make_cluster(partitions=1)
        producer = Producer(cluster, max_retries=1)
        # Kill all brokers: nothing can lead.
        for broker_id in range(3):
            cluster.kill_broker(broker_id)
        with pytest.raises(MessagingError):
            producer.send("t", "v")

    def test_backoff_is_capped_and_jitter_deterministic(self):
        def delays(seed):
            producer = Producer(
                make_cluster(),
                retry_backoff=0.1,
                retry_backoff_max=0.5,
                retry_jitter_seed=seed,
            )
            return [producer._backoff(attempts) for attempts in range(1, 10)]

        a, b = delays(7), delays(7)
        assert a == b
        assert delays(7) != delays(8)
        assert all(d <= 0.5 for d in a)
        assert all(0.05 <= d for d in a)  # never collapses to zero

    def test_invalid_backoff_rejected(self):
        with pytest.raises(ConfigError):
            Producer(make_cluster(), retry_backoff=1.0, retry_backoff_max=0.5)


class TestFailureRebuffering:
    """Regression: a batch that exhausts retries must stay in the producer.

    Pre-fix, ``send``/``flush`` raised with the batch already popped from the
    buffer — the records were silently gone, and a later flush() had nothing
    to retry.
    """

    def test_failed_send_is_rebuffered_and_redelivered(self):
        cluster = make_cluster(partitions=1)
        producer = Producer(cluster, max_retries=0)
        with pytest.raises(MessagingError, match="re-buffered"):
            with registry().scoped(
                "cluster.produce",
                raising(lambda: BrokerUnavailableError("chaos")),
            ):
                producer.send("t", "precious")
        assert producer.pending() == 1  # nothing lost
        acks = producer.flush()
        assert len(acks) == 1
        assert producer.pending() == 0
        cluster.run_until_replicated()
        records = cluster.fetch("t", 0, 0).records
        assert [r.value for r in records] == ["precious"]

    def test_flush_failure_keeps_batch_and_reports_partial_acks(self):
        cluster = make_cluster(partitions=2)
        producer = Producer(cluster, linger_messages=10, max_retries=0)
        producer.send("t", "doomed", partition=0)
        producer.send("t", "fine", partition=1)

        def fail_partition_0(name, partition, **ctx):
            if partition.partition == 0:
                raise BrokerUnavailableError("chaos")

        registry().arm("cluster.produce", fail_partition_0)
        with pytest.raises(ProducerFlushError) as info:
            producer.flush()
        # Partial result: partition 1 acked, partition 0 parked, not lost.
        assert len(info.value.acks) == 1
        assert [tp for tp, _exc in info.value.failures] == [
            TopicPartition("t", 0)
        ]
        assert producer.pending() == 1
        registry().disarm("cluster.produce")
        producer.flush()
        assert producer.pending() == 0
        cluster.run_until_replicated()
        assert [r.value for r in cluster.fetch("t", 0, 0).records] == ["doomed"]

    def test_sends_behind_a_parked_batch_hold_order(self):
        cluster = make_cluster(partitions=1)
        producer = Producer(cluster, max_retries=0)
        producer.send("t", "v0")
        with pytest.raises(MessagingError):
            with registry().scoped(
                "cluster.produce",
                raising(lambda: BrokerUnavailableError("chaos")),
            ):
                producer.send("t", "v1")
        # While v1 is parked, v2 must queue behind it, not jump ahead.
        assert producer.send("t", "v2") is None
        assert producer.pending() == 2
        producer.flush()
        cluster.run_until_replicated()
        records = cluster.fetch("t", 0, 0).records
        assert [r.value for r in records] == ["v0", "v1", "v2"]

    def test_idempotent_retry_of_standing_append_dedupes(self):
        """acks=all failed after the leader append stood: the parked batch
        retries under its original sequence and the broker dedupes."""
        cluster = MessagingCluster(num_brokers=3, clock=SimClock())
        cluster.create_topic(
            "t", num_partitions=1, replication_factor=3, min_insync_replicas=2
        )
        producer = Producer(
            cluster, acks=ACKS_ALL, idempotent=True, max_retries=0
        )
        leader = cluster.leader_of("t", 0)
        followers = [b for b in range(3) if b != leader]
        for follower in followers:
            cluster.broker(follower).shutdown()  # sessions still alive
        with pytest.raises(MessagingError):
            producer.send("t", "exactly-once")
        assert producer.pending() == 1
        # Leader append stood even though the produce failed.
        assert cluster.log_end_offset(TopicPartition("t", 0)) == 1
        for follower in followers:
            cluster.controller.broker_failed(follower)
            cluster.restart_broker(follower)
        cluster.run_until_replicated()
        (ack,) = producer.flush()
        assert ack.duplicate  # broker recognized the replayed sequence
        records = cluster.fetch("t", 0, 0).records
        assert [r.value for r in records] == ["exactly-once"]


class TestIdempotent:
    def test_sequences_advance_per_partition(self):
        cluster = make_cluster(partitions=2)
        producer = Producer(cluster, idempotent=True)
        producer.send("t", 1, partition=0)
        producer.send("t", 2, partition=0)
        producer.send("t", 3, partition=1)
        assert producer._sequences[
            [tp for tp in producer._sequences if tp.partition == 0][0]
        ] == 1

    def test_acks_counted(self):
        producer = Producer(make_cluster(), acks=ACKS_ALL)
        for i in range(5):
            producer.send("t", i)
        assert producer.acks_received == 5
