"""Unit tests for the producer client."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.producer import Producer, _stable_hash


def make_cluster(partitions=4, **kwargs) -> MessagingCluster:
    cluster = MessagingCluster(num_brokers=3, clock=SimClock(), **kwargs)
    cluster.create_topic("t", num_partitions=partitions, replication_factor=3)
    return cluster


class TestPartitioning:
    def test_same_key_same_partition(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        acks = [producer.send("t", i, key="stable") for i in range(10)]
        partitions = {a.partition.partition for a in acks}
        assert len(partitions) == 1

    def test_hash_matches_stable_hash(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        ack = producer.send("t", "v", key="abc")
        assert ack.partition.partition == _stable_hash("abc") % 4

    def test_keyless_round_robins(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        acks = [producer.send("t", i) for i in range(8)]
        partitions = [a.partition.partition for a in acks]
        assert partitions == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_round_robin_partitioner_ignores_keys(self):
        cluster = make_cluster()
        producer = Producer(cluster, partitioner="round_robin")
        acks = [producer.send("t", i, key="same") for i in range(4)]
        assert [a.partition.partition for a in acks] == [0, 1, 2, 3]

    def test_custom_partitioner(self):
        cluster = make_cluster()
        producer = Producer(cluster, partitioner=lambda key, n: 2)
        ack = producer.send("t", "v", key="anything")
        assert ack.partition.partition == 2

    def test_explicit_partition_wins(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        ack = producer.send("t", "v", key="k", partition=3)
        assert ack.partition.partition == 3

    def test_out_of_range_partition_rejected(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        with pytest.raises(ConfigError):
            producer.send("t", "v", partition=4)

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(ConfigError):
            Producer(make_cluster(), partitioner="random")


class TestBatching:
    def test_unbatched_sends_immediately(self):
        producer = Producer(make_cluster())
        assert producer.send("t", "v") is not None
        assert producer.pending() == 0

    def test_batched_buffers_until_linger(self):
        producer = Producer(make_cluster(partitions=1), linger_messages=3)
        assert producer.send("t", 1) is None
        assert producer.send("t", 2) is None
        assert producer.pending() == 2
        ack = producer.send("t", 3)
        assert ack is not None
        assert ack.last_offset - ack.base_offset == 2
        assert producer.pending() == 0

    def test_flush_sends_partial_batches(self):
        producer = Producer(make_cluster(partitions=2), linger_messages=10)
        producer.send("t", 1, partition=0)
        producer.send("t", 2, partition=1)
        acks = producer.flush()
        assert len(acks) == 2
        assert producer.pending() == 0

    def test_invalid_linger_rejected(self):
        with pytest.raises(ConfigError):
            Producer(make_cluster(), linger_messages=0)


class TestRetries:
    def test_retry_succeeds_after_failover(self):
        cluster = make_cluster(partitions=1)
        producer = Producer(cluster, max_retries=3)
        producer.send("t", "before")
        leader = cluster.leader_of("t", 0)
        cluster.kill_broker(leader)
        ack = producer.send("t", "after")
        assert ack is not None
        assert producer.retries == 0  # controller already moved leadership

    def test_retry_on_stale_leader_view(self):
        cluster = make_cluster(partitions=1)
        producer = Producer(cluster, max_retries=3)
        leader = cluster.leader_of("t", 0)
        # Crash the machine without the controller noticing yet: the first
        # attempt hits the dead broker and is retried after the session
        # expiry (modelled here by the kill during the retry's tick).
        cluster.broker(leader).shutdown()
        original_tick = cluster.tick

        def tick_and_fail(dt=0.0, **kwargs):
            cluster.controller.broker_failed(leader)
            cluster.tick = original_tick
            return original_tick(dt, **kwargs)

        cluster.tick = tick_and_fail
        ack = producer.send("t", "after")
        assert ack is not None
        assert producer.retries >= 1

    def test_retries_exhausted_raises(self):
        cluster = make_cluster(partitions=1)
        producer = Producer(cluster, max_retries=1)
        # Kill all brokers: nothing can lead.
        for broker_id in range(3):
            cluster.kill_broker(broker_id)
        from repro.common.errors import MessagingError

        with pytest.raises(MessagingError):
            producer.send("t", "v")


class TestIdempotent:
    def test_sequences_advance_per_partition(self):
        cluster = make_cluster(partitions=2)
        producer = Producer(cluster, idempotent=True)
        producer.send("t", 1, partition=0)
        producer.send("t", 2, partition=0)
        producer.send("t", 3, partition=1)
        assert producer._sequences[
            [tp for tp in producer._sequences if tp.partition == 0][0]
        ] == 1

    def test_acks_counted(self):
        producer = Producer(make_cluster(), acks=ACKS_ALL)
        for i in range(5):
            producer.send("t", i)
        assert producer.acks_received == 5
