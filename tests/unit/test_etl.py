"""Unit tests for the reusable ETL task library."""

import pytest

from repro.common.errors import ConfigError
from repro.common.records import ConsumerRecord
from repro.core.etl import (
    AnomalyDetectorTask,
    CleaningTask,
    EnrichTask,
    FilterTask,
    GroupCountTask,
    MapTask,
    RouterTask,
)
from repro.processing.state import KeyValueState
from repro.processing.store import InMemoryStore
from repro.processing.task import MessageCollector, TaskContext


def record(value, key="k", timestamp=1.0, offset=0) -> ConsumerRecord:
    return ConsumerRecord("in", 0, offset, key, value, timestamp)


def run_task(task, values, stores=None):
    """Drive a task over values; returns emitted Emit list."""
    if stores is not None:
        from repro.common.clock import SimClock

        context = TaskContext("test", 0, SimClock(), stores)
        task.init(context)
    collector = MessageCollector()
    for i, value in enumerate(values):
        task.process(record(value, offset=i), collector)
    return collector.drain()


class TestMapTask:
    def test_identity_preserves_value_and_timestamp(self):
        emits = run_task(MapTask("out"), [{"a": 1}])
        assert emits[0].topic == "out"
        assert emits[0].value == {"a": 1}
        assert emits[0].timestamp == 1.0

    def test_function_applied(self):
        emits = run_task(MapTask("out", fn=lambda v: v * 2), [3])
        assert emits[0].value == 6

    def test_timestamp_not_preserved_when_disabled(self):
        emits = run_task(MapTask("out", preserve_timestamp=False), [1])
        assert emits[0].timestamp is None


class TestFilterTask:
    def test_predicate_filters(self):
        emits = run_task(FilterTask("out", lambda v: v % 2 == 0), [1, 2, 3, 4])
        assert [e.value for e in emits] == [2, 4]


class TestCleaningTask:
    def test_rules_applied_and_version_stamped(self):
        task = CleaningTask("out", {"name": str.strip}, version="v3")
        emits = run_task(task, [{"name": "  Bob  ", "other": 1}])
        assert emits[0].value == {"name": "Bob", "other": 1}
        assert emits[0].headers == {"cleaned_by": "v3"}

    def test_missing_column_passes_through(self):
        task = CleaningTask("out", {"name": str.strip})
        emits = run_task(task, [{"other": 1}])
        assert emits[0].value == {"other": 1}

    def test_malformed_dropped_and_counted(self):
        task = CleaningTask("out", {"n": int})
        emits = run_task(task, [{"n": "12"}, {"n": "not-a-number"}, "not-a-dict"])
        assert len(emits) == 1
        assert emits[0].value["n"] == 12
        assert task.dropped == 2

    def test_strict_mode_raises(self):
        task = CleaningTask("out", {"n": int}, drop_malformed=False)
        with pytest.raises((ValueError, ConfigError)):
            run_task(task, [{"n": "bad"}])

    def test_original_value_not_mutated(self):
        task = CleaningTask("out", {"name": str.strip})
        original = {"name": "  x "}
        run_task(task, [original])
        assert original == {"name": "  x "}


class TestEnrichTask:
    def _stores(self):
        state = KeyValueState("reference", InMemoryStore())
        state.put("r1", {"region": "eu"})
        return {"reference": state}

    def test_match_merges(self):
        task = EnrichTask(
            "out",
            lookup_key=lambda v: v["ref"],
            merge=lambda v, r: {**v, **r},
        )
        emits = run_task(task, [{"ref": "r1", "x": 1}], stores=self._stores())
        assert emits[0].value == {"ref": "r1", "x": 1, "region": "eu"}

    def test_no_match_flags(self):
        task = EnrichTask(
            "out", lookup_key=lambda v: v["ref"], merge=lambda v, r: v
        )
        emits = run_task(task, [{"ref": "ghost"}], stores=self._stores())
        assert emits[0].value["enriched"] is False


class TestGroupCountTask:
    def test_running_counts_per_group(self):
        stores = {"counts": KeyValueState("counts", InMemoryStore())}
        task = GroupCountTask("out", lambda v: v["dim"])
        emits = run_task(
            task, [{"dim": "a"}, {"dim": "b"}, {"dim": "a"}], stores=stores
        )
        assert [(e.value["group"], e.value["count"]) for e in emits] == [
            ("a", 1), ("b", 1), ("a", 2),
        ]
        assert stores["counts"].get("a") == 2


class TestRouterTask:
    def test_routes_by_function(self):
        task = RouterTask(lambda v: f"out-{v['kind']}" if v["kind"] else None)
        emits = run_task(task, [{"kind": "x"}, {"kind": ""}, {"kind": "y"}])
        assert [e.topic for e in emits] == ["out-x", "out-y"]


class TestAnomalyDetector:
    def _task(self, **kwargs):
        defaults = dict(
            metric_fn=lambda v: v["ms"],
            key_fn=lambda v: v["svc"],
            threshold=3.0,
            min_samples=3,
        )
        defaults.update(kwargs)
        return AnomalyDetectorTask("alerts", **defaults)

    def _stores(self):
        return {"baselines": KeyValueState("baselines", InMemoryStore())}

    def test_no_alert_during_warmup(self):
        emits = run_task(
            self._task(), [{"svc": "a", "ms": 1000}] * 2, stores=self._stores()
        )
        assert emits == []

    def test_spike_alerts_after_warmup(self):
        values = [{"svc": "a", "ms": 10}] * 5 + [{"svc": "a", "ms": 100}]
        emits = run_task(self._task(), values, stores=self._stores())
        assert len(emits) == 1
        assert emits[0].value["key"] == "a"
        assert emits[0].value["factor"] > 3

    def test_steady_traffic_never_alerts(self):
        values = [{"svc": "a", "ms": 10}] * 20
        emits = run_task(self._task(), values, stores=self._stores())
        assert emits == []

    def test_keys_have_independent_baselines(self):
        values = (
            [{"svc": "slow", "ms": 1000}] * 5
            + [{"svc": "fast", "ms": 10}] * 5
            + [{"svc": "fast", "ms": 100}]
        )
        emits = run_task(self._task(), values, stores=self._stores())
        assert len(emits) == 1
        assert emits[0].value["key"] == "fast"

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            self._task(threshold=0.5)
        with pytest.raises(ConfigError):
            self._task(alpha=0)
