"""Unit tests for the replication loop and ISR maintenance (§4.3)."""

from repro.common.clock import SimClock
from repro.common.records import TopicPartition
from repro.messaging.cluster import ACKS_LEADER, MessagingCluster
from repro.messaging.replication import ReplicationManager

TP = TopicPartition("t", 0)


def make_cluster(max_lag=4) -> MessagingCluster:
    cluster = MessagingCluster(
        num_brokers=3, clock=SimClock(), replication_max_lag=max_lag
    )
    cluster.create_topic("t", num_partitions=1, replication_factor=3)
    return cluster


def entries(n):
    return [(f"k{i}", i, None, {}) for i in range(n)]


class TestCopying:
    def test_poll_copies_to_all_followers(self):
        cluster = make_cluster()
        cluster.produce("t", 0, entries(5), acks=ACKS_LEADER)
        stats = cluster.replication.poll()
        assert stats.messages_copied == 10  # 5 records x 2 followers
        for broker in cluster.brokers():
            assert broker.replica(TP).log_end_offset == 5

    def test_poll_advances_follower_hw(self):
        cluster = make_cluster()
        cluster.produce("t", 0, entries(5), acks=ACKS_LEADER)
        cluster.replication.poll()
        cluster.replication.poll()  # second pass piggybacks the leader HW
        for broker in cluster.brokers():
            assert broker.replica(TP).high_watermark == 5

    def test_idle_poll_copies_nothing(self):
        cluster = make_cluster()
        cluster.produce("t", 0, entries(3), acks=ACKS_LEADER)
        cluster.replication.poll()
        stats = cluster.replication.poll()
        assert stats.messages_copied == 0

    def test_max_fetch_bounds_catchup_bandwidth(self):
        cluster = make_cluster()
        cluster.replication.max_fetch = 2
        cluster.produce("t", 0, entries(10), acks=ACKS_LEADER)
        stats = cluster.replication.poll()
        assert stats.messages_copied == 4  # 2 per follower

    def test_offline_follower_skipped(self):
        cluster = make_cluster()
        leader = cluster.leader_of("t", 0)
        follower = [b for b in range(3) if b != leader][0]
        cluster.kill_broker(follower)
        cluster.produce("t", 0, entries(4), acks=ACKS_LEADER)
        stats = cluster.replication.poll()
        assert stats.messages_copied == 4  # only the live follower


class TestIsrMaintenance:
    def test_lagging_follower_shrunk(self):
        cluster = make_cluster(max_lag=2)
        cluster.replication.max_fetch = 1  # throttle: follower can't keep up
        cluster.produce("t", 0, entries(10), acks=ACKS_LEADER)
        stats = cluster.replication.poll()
        assert stats.isr_shrinks
        isr = cluster.controller.isr_for(TP)
        assert len(isr) == 1

    def test_caught_up_follower_re_expanded(self):
        cluster = make_cluster(max_lag=2)
        cluster.replication.max_fetch = 1
        cluster.produce("t", 0, entries(10), acks=ACKS_LEADER)
        cluster.replication.poll()  # shrinks
        cluster.replication.max_fetch = 1000
        stats = cluster.replication.poll()  # catches up fully
        assert stats.isr_expansions
        assert len(cluster.controller.isr_for(TP)) == 3

    def test_shrink_advances_leader_hw(self):
        cluster = make_cluster(max_lag=2)
        cluster.replication.max_fetch = 1
        cluster.produce("t", 0, entries(10), acks=ACKS_LEADER)
        cluster.replication.poll()
        leader = cluster.broker(cluster.leader_of("t", 0)).replica(TP)
        # With laggards out of the ISR, the HW no longer waits for them.
        assert leader.high_watermark == 10


class TestDivergenceReconciliation:
    def test_follower_truncates_longer_log(self):
        cluster = make_cluster()
        leader_id = cluster.leader_of("t", 0)
        follower_id = [b for b in range(3) if b != leader_id][0]
        cluster.produce("t", 0, entries(5), acks=ACKS_LEADER)
        cluster.replication.poll()
        # Simulate divergence: the follower has an un-replicated tail the
        # (new) leader never saw.
        follower = cluster.broker(follower_id).replica(TP)
        follower.log.append("zombie", {"extra": True})
        assert follower.log_end_offset == 6
        stats = cluster.replication.poll()
        assert (TP, follower_id, 1) in stats.truncations
        assert follower.log_end_offset == 5

    def test_follower_adopts_new_epoch(self):
        cluster = make_cluster()
        old_leader = cluster.leader_of("t", 0)
        cluster.produce("t", 0, entries(3), acks=ACKS_LEADER)
        cluster.replication.poll()
        cluster.kill_broker(old_leader)
        cluster.produce("t", 0, entries(2), acks=ACKS_LEADER)
        cluster.replication.poll()
        new_leader = cluster.leader_of("t", 0)
        survivor = [b for b in range(3) if b not in (old_leader, new_leader)][0]
        replica = cluster.broker(survivor).replica(TP)
        assert replica.leader_epoch == cluster.controller.epoch_for(TP)
