"""Unit tests for topic configuration."""

import pytest

from repro.common.errors import ConfigError
from repro.messaging.topic import CLEANUP_COMPACT, CLEANUP_DELETE, TopicConfig


class TestValidation:
    def test_defaults(self):
        config = TopicConfig(name="t")
        assert config.num_partitions == 1
        assert config.replication_factor == 1
        assert config.cleanup_policy == CLEANUP_DELETE
        assert not config.compacted

    def test_compacted_flag(self):
        config = TopicConfig(name="t", cleanup_policy=CLEANUP_COMPACT)
        assert config.compacted

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "a/b"},
            {"name": "t", "num_partitions": 0},
            {"name": "t", "replication_factor": 0},
            {"name": "t", "cleanup_policy": "vacuum"},
            {"name": "t", "min_insync_replicas": 0},
            {"name": "t", "min_insync_replicas": 2},  # > replication_factor
            {"name": "t", "flush_timeout": -1.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TopicConfig(**kwargs)

    def test_min_insync_within_replication(self):
        config = TopicConfig(name="t", replication_factor=3, min_insync_replicas=2)
        assert config.min_insync_replicas == 2

    def test_frozen(self):
        config = TopicConfig(name="t")
        with pytest.raises(AttributeError):
            config.name = "other"
