"""Unit tests for windowed aggregation helpers."""

import pytest

from repro.common.errors import ConfigError
from repro.processing.windows import SessionWindow, SlidingWindow, TumblingWindow


def counting_tumbling(size=10.0) -> TumblingWindow:
    return TumblingWindow(size=size, init=lambda: 0, fold=lambda acc, e: acc + e)


class TestTumbling:
    def test_events_accumulate_within_window(self):
        window = counting_tumbling()
        assert window.add("k", 1.0, 5) == []
        assert window.add("k", 9.0, 3) == []
        results = window.flush()
        assert len(results) == 1
        assert results[0].value == 8
        assert results[0].count == 2
        assert (results[0].window_start, results[0].window_end) == (0.0, 10.0)

    def test_crossing_boundary_closes_window(self):
        window = counting_tumbling()
        window.add("k", 1.0, 5)
        closed = window.add("k", 11.0, 7)
        assert len(closed) == 1
        assert closed[0].value == 5
        assert window.flush()[0].value == 7

    def test_keys_independent(self):
        window = counting_tumbling()
        window.add("a", 1.0, 1)
        closed = window.add("b", 11.0, 2)  # b's first event closes nothing
        assert closed == []
        assert window.open_windows() == 2

    def test_bucket_alignment(self):
        window = counting_tumbling(size=10.0)
        window.add("k", 25.0, 1)
        results = window.flush()
        assert (results[0].window_start, results[0].window_end) == (20.0, 30.0)

    def test_flush_empties(self):
        window = counting_tumbling()
        window.add("k", 1.0, 1)
        window.flush()
        assert window.flush() == []
        assert window.open_windows() == 0

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigError):
            counting_tumbling(size=0)


class TestSliding:
    def make(self, size=10.0, step=5.0) -> SlidingWindow:
        return SlidingWindow(
            size=size, step=step,
            init=lambda: 0,
            fold=lambda acc, e: acc + e,
            merge=lambda a, b: a + b,
        )

    def test_overlapping_windows_share_events(self):
        window = self.make()
        window.add("k", 1.0, 10)   # pane [0,5)
        window.add("k", 6.0, 20)   # pane [5,10)
        closed = window.add("k", 12.0, 30)  # pane [10,15) -> closes [0,10)
        assert len(closed) == 1
        assert closed[0].value == 30  # 10 + 20
        closed = window.add("k", 17.0, 1)  # closes window [5,15): 20+30
        assert closed[0].value == 50

    def test_size_must_be_multiple_of_step(self):
        with pytest.raises(ConfigError):
            self.make(size=10.0, step=3.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            self.make(size=0)


class TestSession:
    def make(self, gap=5.0) -> SessionWindow:
        return SessionWindow(
            gap=gap, init=lambda: 0, fold=lambda acc, e: acc + 1
        )

    def test_events_within_gap_extend_session(self):
        window = self.make()
        window.add("u", 0.0, None)
        window.add("u", 4.0, None)
        window.add("u", 8.0, None)
        assert window.open_sessions() == 1
        closed = window.expire_idle(100.0)
        assert closed[0].count == 3
        assert (closed[0].window_start, closed[0].window_end) == (0.0, 8.0)

    def test_gap_closes_session(self):
        window = self.make(gap=5.0)
        window.add("u", 0.0, None)
        closed = window.add("u", 10.0, None)  # 10 > 0 + 5
        assert len(closed) == 1
        assert closed[0].count == 1
        assert window.open_sessions() == 1  # the new session

    def test_expire_idle_only_closes_stale(self):
        window = self.make(gap=5.0)
        window.add("old", 0.0, None)
        window.add("fresh", 9.0, None)
        closed = window.expire_idle(10.0)
        assert [c.key for c in closed] == ["old"]
        assert window.open_sessions() == 1

    def test_users_independent(self):
        window = self.make(gap=5.0)
        window.add("a", 0.0, None)
        window.add("b", 100.0, None)  # different key: no close for a
        assert window.open_sessions() == 2

    def test_invalid_gap_rejected(self):
        with pytest.raises(ConfigError):
            self.make(gap=0)
