"""Unit tests for the failure injector."""

from repro.cluster.failures import FailureInjector
from repro.common.clock import SimClock


class FakeCluster:
    def __init__(self):
        self.killed = []
        self.restarted = []
        self._leader = 2

    def kill_broker(self, broker_id):
        self.killed.append(broker_id)

    def restart_broker(self, broker_id):
        self.restarted.append(broker_id)

    def leader_of(self, topic, partition):
        return self._leader


class TestScheduling:
    def test_at_fires_at_time(self):
        clock = SimClock()
        injector = FailureInjector(clock)
        fired = []
        injector.at(5.0, lambda: fired.append("x"), label="test")
        clock.advance(4.0)
        assert fired == []
        clock.advance(2.0)
        assert fired == ["x"]

    def test_after_is_relative(self):
        clock = SimClock(start=10.0)
        injector = FailureInjector(clock)
        fired = []
        injector.after(2.0, lambda: fired.append("x"))
        clock.advance(2.0)
        assert fired == ["x"]

    def test_timeline_records_fire_times(self):
        clock = SimClock()
        injector = FailureInjector(clock)
        injector.at(3.0, lambda: None, label="boom")
        clock.advance(5.0)
        assert injector.events() == [(3.0, "boom")]


class TestConvenience:
    def test_kill_and_restart_broker(self):
        clock = SimClock()
        cluster = FakeCluster()
        injector = FailureInjector(clock)
        injector.kill_broker_at(1.0, cluster, 7)
        injector.restart_broker_at(2.0, cluster, 7)
        clock.advance(3.0)
        assert cluster.killed == [7]
        assert cluster.restarted == [7]

    def test_kill_leader_resolves_at_fire_time(self):
        clock = SimClock()
        cluster = FakeCluster()
        injector = FailureInjector(clock)
        injector.kill_leader_at(1.0, cluster, "t", 0)
        cluster._leader = 5  # leadership moved before the fault fires
        clock.advance(1.0)
        assert cluster.killed == [5]

    def test_kill_leader_noop_when_offline(self):
        clock = SimClock()
        cluster = FakeCluster()
        cluster._leader = None
        injector = FailureInjector(clock)
        injector.kill_leader_at(1.0, cluster, "t", 0)
        clock.advance(1.0)
        assert cluster.killed == []
