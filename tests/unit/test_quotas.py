"""Unit tests for messaging-layer client quotas (§4.5 multi-tenancy)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.messaging.cluster import MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.producer import Producer
from repro.messaging.quotas import ClientQuota, QuotaManager


def make_manager(window=1.0) -> tuple[SimClock, QuotaManager]:
    clock = SimClock()
    return clock, QuotaManager(clock, window_seconds=window)


class TestQuotaManager:
    def test_unknown_client_never_throttled(self):
        _clock, manager = make_manager()
        assert manager.record_produce("anon", 10**9) == 0.0
        assert manager.record_produce(None, 10**9) == 0.0

    def test_under_quota_no_delay(self):
        _clock, manager = make_manager()
        manager.set_quota("app", ClientQuota(produce_bytes_per_sec=1000))
        assert manager.record_produce("app", 500) == 0.0

    def test_over_quota_delay_matches_formula(self):
        _clock, manager = make_manager(window=1.0)
        manager.set_quota("app", ClientQuota(produce_bytes_per_sec=1000))
        delay = manager.record_produce("app", 3000)
        # 3000 bytes over a (1.0 + delay)s window == 1000 B/s -> delay = 2.0
        assert delay == pytest.approx(2.0)
        assert manager.throttle_events == 1

    def test_rate_window_slides(self):
        clock, manager = make_manager(window=1.0)
        manager.set_quota("app", ClientQuota(produce_bytes_per_sec=1000))
        manager.record_produce("app", 900)
        clock.advance(2.0)  # old sample expires
        assert manager.record_produce("app", 900) == 0.0

    def test_produce_and_fetch_tracked_separately(self):
        _clock, manager = make_manager()
        manager.set_quota(
            "app",
            ClientQuota(produce_bytes_per_sec=100, fetch_bytes_per_sec=10**9),
        )
        assert manager.record_fetch("app", 10**6) == 0.0
        assert manager.record_produce("app", 10**4) > 0.0

    def test_observed_rates(self):
        clock, manager = make_manager(window=2.0)
        manager.set_quota("app", ClientQuota(produce_bytes_per_sec=10**9))
        manager.record_produce("app", 1000)
        assert manager.observed_produce_rate("app") == pytest.approx(500.0)
        assert manager.observed_fetch_rate("app") == 0.0

    def test_remove_quota(self):
        _clock, manager = make_manager()
        manager.set_quota("app", ClientQuota(produce_bytes_per_sec=1))
        manager.remove_quota("app")
        assert manager.record_produce("app", 10**6) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClientQuota(produce_bytes_per_sec=0)
        with pytest.raises(ConfigError):
            make_manager(window=0)
        _clock, manager = make_manager()
        with pytest.raises(ConfigError):
            manager.set_quota("", ClientQuota())


class TestClusterIntegration:
    def _cluster(self) -> MessagingCluster:
        cluster = MessagingCluster(num_brokers=1, clock=SimClock())
        cluster.create_topic("t", num_partitions=1, replication_factor=1)
        return cluster

    def test_throttled_producer_pays_latency(self):
        cluster = self._cluster()
        cluster.quotas.set_quota("hog", ClientQuota(produce_bytes_per_sec=100))
        fast = Producer(cluster, client_id=None)
        slow = Producer(cluster, client_id="hog")
        payload = {"data": "x" * 500}
        fast_latency = fast.send("t", payload).latency
        slow_latency = slow.send("t", payload).latency
        assert slow_latency > 2 * fast_latency

    def test_other_clients_unaffected_by_hogs_quota(self):
        cluster = self._cluster()
        cluster.quotas.set_quota("hog", ClientQuota(produce_bytes_per_sec=10))
        hog = Producer(cluster, client_id="hog")
        neighbour = Producer(cluster, client_id="polite")
        hog.send("t", {"data": "x" * 1000})
        latency = neighbour.send("t", {"data": "y"}).latency
        assert latency < 0.01  # normal intra-DC produce cost

    def test_throttled_consumer_pays_latency(self):
        cluster = self._cluster()
        producer = Producer(cluster)
        for i in range(50):
            producer.send("t", {"data": "x" * 200})
        cluster.tick(0.0)
        cluster.quotas.set_quota("reader", ClientQuota(fetch_bytes_per_sec=100))
        from repro.common.records import TopicPartition

        throttled = Consumer(cluster, client_id="reader")
        throttled.assign([TopicPartition("t", 0)])
        throttled.poll(50)
        unlimited = Consumer(cluster)
        unlimited.assign([TopicPartition("t", 0)])
        unlimited.poll(50)
        assert throttled.last_poll_latency > 10 * unlimited.last_poll_latency
