"""Unit tests for the Lambda architecture baseline (§2.2)."""

import pytest

from repro.common.errors import ConfigError
from repro.baselines.lambda_arch import LambdaArchitecture


def word_counter() -> LambdaArchitecture:
    lam = LambdaArchitecture(ingest_batch_size=100)
    lam.register_stream_logic(
        lambda view, e: view.__setitem__(e["w"], view.get(e["w"], 0) + 1)
    )
    lam.register_batch_logic(
        lambda e: [(e["w"], 1)], lambda key, values: sum(values)
    )
    return lam


def events(n, words=3):
    return [{"w": f"w{i % words}"} for i in range(n)]


class TestDualRegistration:
    def test_both_implementations_required(self):
        lam = LambdaArchitecture()
        lam.register_stream_logic(lambda view, e: None)
        with pytest.raises(ConfigError):
            lam.run_speed_layer()
        with pytest.raises(ConfigError):
            lam.run_batch_layer()

    def test_code_paths_is_two(self):
        assert word_counter().metrics().code_paths == 2

    def test_re_registration_does_not_double_count(self):
        lam = word_counter()
        lam.register_stream_logic(lambda view, e: None)
        assert lam.code_paths == 2


class TestServing:
    def test_speed_layer_serves_fresh_data(self):
        lam = word_counter()
        lam.ingest(events(300))
        assert lam.run_speed_layer() == 300
        assert lam.query("w0") == 100

    def test_batch_layer_absorbs_realtime(self):
        lam = word_counter()
        lam.ingest(events(300))
        lam.run_speed_layer()
        lam.run_batch_layer()
        assert lam.realtime_view == {}
        assert lam.query("w0") == 100  # now answered by the batch view

    def test_merge_combines_views(self):
        lam = word_counter()
        lam.ingest(events(300))
        lam.run_speed_layer()
        lam.run_batch_layer()
        lam.ingest(events(30))
        lam.run_speed_layer()
        assert lam.query("w0") == 110  # 100 batch + 10 realtime

    def test_unseen_key_is_none(self):
        lam = word_counter()
        assert lam.query("ghost") is None

    def test_custom_merge(self):
        lam = word_counter()
        lam.batch_view = {"k": 5}
        lam.realtime_view = {"k": 7}
        assert lam.query("k", merge=max) == 7


class TestFootprint:
    def test_data_stored_twice(self):
        lam = word_counter()
        lam.ingest(events(500))
        lam.flush_staging()
        assert lam.dfs.total_stored_bytes() > 0
        assert lam.stream.stats()["stored_bytes"] > 0

    def test_batch_compute_dominates(self):
        lam = word_counter()
        lam.ingest(events(500))
        lam.run_speed_layer()
        lam.run_batch_layer()
        metrics = lam.metrics()
        # MR startup makes the batch path orders of magnitude costlier.
        assert metrics.batch_compute_seconds > 100 * metrics.speed_compute_seconds

    def test_staleness_grows_until_next_batch_run(self):
        lam = word_counter()
        lam.ingest(events(100))
        lam.run_speed_layer()
        lam.run_batch_layer()
        first = lam.staleness()
        lam.clock.advance(100.0)
        assert lam.staleness() == pytest.approx(first + 100.0)
        lam.run_batch_layer()
        assert lam.staleness() == 0.0
