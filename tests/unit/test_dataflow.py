"""Unit tests for dataflow graphs of jobs."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import JobConfigError
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.dataflow import Dataflow
from repro.processing.job import JobConfig


class Forward:
    def __init__(self, output):
        self.output = output

    def process(self, record, collector):
        collector.send(self.output, record.value, key=record.key)


def make_env(topics=("a", "b", "c")):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=1, clock=clock)
    for topic in topics:
        cluster.create_topic(topic, num_partitions=1, replication_factor=1)
    return clock, cluster


class TestTopology:
    def test_stages_in_topological_order(self):
        _clock, cluster = make_env()
        flow = Dataflow(cluster)
        flow.add_job(
            JobConfig(name="second", inputs=["b"],
                      task_factory=lambda: Forward("c")),
            outputs=["c"],
        )
        flow.add_job(
            JobConfig(name="first", inputs=["a"],
                      task_factory=lambda: Forward("b")),
            outputs=["b"],
        )
        assert flow.stages() == [["first"], ["second"]]

    def test_cycle_rejected(self):
        _clock, cluster = make_env()
        flow = Dataflow(cluster)
        flow.add_job(
            JobConfig(name="x", inputs=["a"], task_factory=lambda: Forward("b")),
            outputs=["b"],
        )
        flow.add_job(
            JobConfig(name="y", inputs=["b"], task_factory=lambda: Forward("a")),
            outputs=["a"],
        )
        with pytest.raises(JobConfigError, match="cycle"):
            flow.validate()

    def test_duplicate_job_rejected(self):
        _clock, cluster = make_env()
        flow = Dataflow(cluster)
        config = JobConfig(name="x", inputs=["a"], task_factory=lambda: Forward("b"))
        flow.add_job(config)
        with pytest.raises(JobConfigError):
            flow.add_job(config)

    def test_unknown_runner_rejected(self):
        _clock, cluster = make_env()
        with pytest.raises(JobConfigError):
            Dataflow(cluster).runner("ghost")


class TestExecution:
    def test_two_stage_pipeline_drains(self):
        _clock, cluster = make_env()
        flow = Dataflow(cluster)
        flow.add_job(
            JobConfig(name="first", inputs=["a"],
                      task_factory=lambda: Forward("b")),
            outputs=["b"],
        )
        flow.add_job(
            JobConfig(name="second", inputs=["b"],
                      task_factory=lambda: Forward("c")),
            outputs=["c"],
        )
        producer = Producer(cluster)
        for i in range(10):
            producer.send("a", i)
        total = flow.run_until_idle()
        assert total == 20  # 10 per stage
        from repro.common.records import TopicPartition

        assert cluster.end_offset(TopicPartition("c", 0)) == 10

    def test_backlog_reaches_zero(self):
        _clock, cluster = make_env()
        flow = Dataflow(cluster)
        flow.add_job(
            JobConfig(name="first", inputs=["a"],
                      task_factory=lambda: Forward("b")),
            outputs=["b"],
        )
        producer = Producer(cluster)
        for i in range(5):
            producer.send("a", i)
        assert flow.backlog() == 5
        flow.run_until_idle()
        assert flow.backlog() == 0

    def test_checkpoint_all(self):
        _clock, cluster = make_env()
        flow = Dataflow(cluster)
        flow.add_job(
            JobConfig(name="first", inputs=["a"],
                      task_factory=lambda: Forward("b")),
            outputs=["b"],
        )
        producer = Producer(cluster)
        producer.send("a", 1)
        flow.run_until_idle()
        flow.checkpoint_all()
        from repro.common.records import TopicPartition

        commit = cluster.offset_manager.fetch("job-first", TopicPartition("a", 0))
        assert commit.offset == 1
