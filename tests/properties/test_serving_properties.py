"""Property-based tests: routed queries agree with a model of the state.

The router's core promise is that a query for key *k* returns exactly what
the job's state holds for *k* — no matter how keys hash across shards, how
many partitions the job runs, or in what order puts and deletes arrived.
The model is a plain dict applying the same ops in order.
"""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.partitioning import partition_for_key
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobRunner, StoreConfig
from repro.serving import StateQueryRouter

KEYS = [f"k{i}" for i in range(8)]

ops = st.lists(
    st.tuples(
        st.sampled_from(KEYS),
        st.one_of(st.none(), st.integers(-100, 100)),
    ),
    min_size=1,
    max_size=40,
)
partition_counts = st.integers(min_value=1, max_value=4)


class UpsertDeleteTask:
    def init(self, context):
        self.store = context.store("table")

    def process(self, record, collector):
        if record.value is None:
            self.store.delete(record.key)
        else:
            self.store.put(record.key, record.value)


def build(data, partitions):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=1, clock=clock)
    cluster.create_topic("in", num_partitions=partitions, replication_factor=1)
    producer = Producer(cluster)
    for key, value in data:
        producer.send("in", value, key=key)
    runner = JobRunner(
        JobConfig(
            name="prop",
            inputs=["in"],
            task_factory=UpsertDeleteTask,
            stores=[StoreConfig("table")],
        ),
        cluster,
    )
    runner.run_until_idle()
    runner.checkpoint()
    model: dict = {}
    for key, value in data:
        if value is None:
            model.pop(key, None)
        else:
            model[key] = value
    return runner, model


class TestRoutedQueriesMatchModel:
    @given(ops, partition_counts)
    @settings(max_examples=25, deadline=None)
    def test_get_agrees_with_model_and_direct_read(self, data, partitions):
        runner, model = build(data, partitions)
        router = StateQueryRouter(runner)
        for key in KEYS:
            result = router.get("table", key)
            assert result.value == model.get(key)
            assert result.found == (key in model)
            # ...and with the owning shard's raw store, byte-for-byte.
            task_id = partition_for_key(key, runner.num_tasks)
            assert result.value == runner.task(task_id).stores["table"].get(key)

    @given(ops, partition_counts)
    @settings(max_examples=25, deadline=None)
    def test_range_is_the_sorted_model(self, data, partitions):
        runner, model = build(data, partitions)
        result = StateQueryRouter(runner).range("table")
        expected = sorted(model.items(), key=lambda kv: repr(kv[0]))
        assert list(result.value) == expected

    @given(ops, partition_counts)
    @settings(max_examples=25, deadline=None)
    def test_count_is_the_model_cardinality(self, data, partitions):
        runner, model = build(data, partitions)
        result = StateQueryRouter(runner).approximate_count("table")
        assert result.value == len(model)
