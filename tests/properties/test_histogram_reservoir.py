"""Property: the bounded histogram reservoir is exact until it decimates.

``Histogram(max_samples=K)`` keeps memory bounded by keep-every-k
decimation.  Two guarantees are pinned here:

1. **Undecimated == unbounded.**  While fewer than K samples have
   arrived, the bounded histogram is *byte-identical* to an unbounded
   one: same percentiles at every rank, same snapshot.  Decimation must
   be invisible until it actually happens.
2. **Bounded-mode sanity.**  After decimation the scalar aggregates
   (count, total, mean, min, max) stay exact — they are maintained
   outside the reservoir — the retained sample count respects the bound,
   and percentiles still fall inside [min, max].
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.metrics import Histogram

samples = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=200,
)
percentiles = st.sampled_from([0, 1, 25, 50, 75, 90, 99, 99.9, 100])


@settings(max_examples=60, deadline=None)
@given(values=samples, pct=percentiles)
def test_undecimated_bounded_matches_unbounded_exactly(values, pct):
    unbounded = Histogram("h")
    bounded = Histogram("h", max_samples=len(values) + 1)  # never decimates
    unbounded.observe_many(values)
    bounded.observe_many(values)
    assert bounded.percentile(pct) == unbounded.percentile(pct)
    assert bounded.snapshot() == unbounded.snapshot()
    assert bounded.count == unbounded.count
    assert bounded.total == unbounded.total


@settings(max_examples=60, deadline=None)
@given(values=samples, max_samples=st.sampled_from([2, 4, 8, 16]))
def test_decimated_scalars_stay_exact(values, max_samples):
    bounded = Histogram("h", max_samples=max_samples)
    bounded.observe_many(values)
    assert bounded.count == len(values)
    # While the reservoir has never decimated it still holds every sample
    # and total is the exactly-rounded fsum (the byte-identity guarantee);
    # after the first decimation the naive arrival-order accumulator takes
    # over, which matches sum() exactly (same fold order from 0.0).
    decimated = bounded._keep_every > 1
    expected_total = sum(values) if decimated else math.fsum(values)
    assert bounded.total == expected_total
    assert bounded.min == min(values)
    assert bounded.max == max(values)
    assert bounded.mean == expected_total / len(values)


@settings(max_examples=60, deadline=None)
@given(values=samples, max_samples=st.sampled_from([2, 4, 8, 16]))
def test_reservoir_respects_the_bound(values, max_samples):
    bounded = Histogram("h", max_samples=max_samples)
    bounded.observe_many(values)
    assert len(bounded._values) <= max_samples


@settings(max_examples=60, deadline=None)
@given(
    values=samples,
    max_samples=st.sampled_from([2, 4, 8, 16]),
    pct=percentiles,
)
def test_decimated_percentiles_stay_in_range(values, max_samples, pct):
    bounded = Histogram("h", max_samples=max_samples)
    bounded.observe_many(values)
    estimate = bounded.percentile(pct)
    assert min(values) <= estimate <= max(values)


@settings(max_examples=40, deadline=None)
@given(values=samples, max_samples=st.sampled_from([4, 8]))
def test_decimation_is_deterministic(values, max_samples):
    """Same inputs, same reservoir — keep-every-k is not sampling."""
    a = Histogram("h", max_samples=max_samples)
    b = Histogram("h", max_samples=max_samples)
    a.observe_many(values)
    b.observe_many(values)
    assert a._values == b._values
    assert a.snapshot() == b.snapshot()


@settings(max_examples=40, deadline=None)
@given(values=samples)
def test_delta_snapshot_is_invisible_to_percentiles(values):
    """Arming delta tracking (what the exporter does) must not change
    what percentile() reports — deltas are tracked out-of-band."""
    plain = Histogram("h")
    tracked = Histogram("h")
    tracked.delta_snapshot()  # arm
    split = len(values) // 2
    tracked.observe_many(values[:split])
    tracked.delta_snapshot()  # consume a window mid-stream
    tracked.observe_many(values[split:])
    plain.observe_many(values)
    assert tracked.percentile(99) == plain.percentile(99)
    assert tracked.snapshot() == plain.snapshot()
