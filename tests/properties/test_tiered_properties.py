"""Property-based tests for tiered storage equivalence (§2.2 rewindability).

The headline invariant: a retention-truncated log *with archiving* is
observationally identical to an unbounded log — every read, from any offset,
returns byte-identical records at identical offsets, no matter how produces,
retention passes and rewinds interleave.
"""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.compression import compress_entries
from repro.storage.log import LogConfig, PartitionLog
from repro.storage.retention import RetentionConfig, RetentionEnforcer
from repro.storage.tiered import (
    ColdTier,
    InMemoryObjectStore,
    TieredConfig,
)

# An interleaving step: produce a batch, let time pass + run retention, or
# rewind-read from a chosen point of the history.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("produce"), st.integers(min_value=1, max_value=8)),
        st.tuples(st.just("retain"), st.floats(min_value=0.5, max_value=30.0)),
        st.tuples(st.just("read"), st.floats(min_value=0.0, max_value=1.0)),
    ),
    min_size=1,
    max_size=40,
)
segment_sizes = st.integers(min_value=1, max_value=7)
cache_caps = st.integers(min_value=1, max_value=1 << 20)


def build_pair(per_segment, cache_bytes):
    clock = SimClock()
    tiered_log = PartitionLog(
        "t-0", LogConfig(segment_max_messages=per_segment), clock=clock
    )
    reference = PartitionLog(
        "ref-0", LogConfig(segment_max_messages=per_segment), clock=clock
    )
    tier = ColdTier(
        tiered_log,
        InMemoryObjectStore(),
        namespace="t/0",
        config=TieredConfig(hydration_cache_bytes=cache_bytes),
    )
    return clock, tiered_log, reference, tier


def read_all(reader, start, end):
    """Drain ``reader`` from ``start`` with small batches (exercises paging)."""
    out = []
    offset = start
    while offset < end:
        result = reader(offset, 7)
        if not result.messages:
            break
        out.extend(result.messages)
        offset = result.next_offset
    return out


class TestTieredEquivalence:
    @given(steps, segment_sizes, cache_caps)
    @settings(max_examples=40, deadline=None)
    def test_archived_log_is_byte_identical_to_unbounded(
        self, script, per_segment, cache_bytes
    ):
        clock, tiered_log, reference, tier = build_pair(per_segment, cache_bytes)
        produced = 0
        for op, arg in script:
            if op == "produce":
                for _ in range(arg):
                    now = clock.now()
                    tiered_log.append(f"k{produced}", f"v{produced}", timestamp=now)
                    reference.append(f"k{produced}", f"v{produced}", timestamp=now)
                    produced += 1
                    clock.advance(1.0)
            elif op == "retain":
                enforcer = RetentionEnforcer(
                    RetentionConfig(retention_seconds=arg),
                    clock,
                    archiver=tier.archiver,
                )
                enforcer.enforce(tiered_log)
            else:  # rewind-read from a fractional point of the history
                if produced == 0:
                    continue
                start = min(int(arg * produced), produced - 1)
                got = read_all(tier.read_through, start, produced)
                want = read_all(reference.read, start, produced)
                assert [m.offset for m in got] == [m.offset for m in want]
                assert [(m.key, m.value, m.timestamp, m.size) for m in got] == [
                    (m.key, m.value, m.timestamp, m.size) for m in want
                ]
        # Final full-history rewind must always reproduce the reference.
        got = read_all(tier.read_through, 0, produced)
        want = read_all(reference.read, 0, produced)
        assert [m.offset for m in got] == list(range(produced))
        assert [(m.key, m.value) for m in got] == [
            (m.key, m.value) for m in want
        ]

    @given(steps, segment_sizes, cache_caps)
    @settings(max_examples=25, deadline=None)
    def test_archived_log_is_byte_identical_with_compressed_frames(
        self, script, per_segment, cache_bytes
    ):
        """Tiered equivalence with the wire format armed: batches land as
        compressed frames, the archiver ships the frames' stored footprint,
        and rewinds through the cold tier still reproduce the unbounded
        reference record-for-record (offsets, payloads, stored sizes)."""
        clock, tiered_log, reference, tier = build_pair(per_segment, cache_bytes)
        produced = 0
        for op, arg in script:
            if op == "produce":
                now = clock.now()
                entries = [
                    (f"k{produced + i}", f"v{produced + i}" * 4, now, {})
                    for i in range(arg)
                ]
                frame = compress_entries(entries, "zlib", 6)
                tiered_log.append_batch(entries, frame=frame)
                # The reference gets its own (identical) frame object: frame
                # registries are per-log, byte accounting must still agree.
                reference.append_batch(
                    entries, frame=compress_entries(entries, "zlib", 6)
                )
                produced += arg
                clock.advance(float(arg))
            elif op == "retain":
                RetentionEnforcer(
                    RetentionConfig(retention_seconds=arg),
                    clock,
                    archiver=tier.archiver,
                ).enforce(tiered_log)
            else:
                if produced == 0:
                    continue
                start = min(int(arg * produced), produced - 1)
                got = read_all(tier.read_through, start, produced)
                want = read_all(reference.read, start, produced)
                assert [m.offset for m in got] == [m.offset for m in want]
                assert [
                    (m.key, m.value, m.timestamp, m.size, m.stored_size)
                    for m in got
                ] == [
                    (m.key, m.value, m.timestamp, m.size, m.stored_size)
                    for m in want
                ]
        got = read_all(tier.read_through, 0, produced)
        want = read_all(reference.read, 0, produced)
        assert [m.offset for m in got] == list(range(produced))
        assert [(m.key, m.value, m.stored_size) for m in got] == [
            (m.key, m.value, m.stored_size) for m in want
        ]
        # Compression actually engaged somewhere in the run.
        if produced:
            assert any(m.stored_size != m.size for m in want)

    @given(steps, segment_sizes)
    @settings(max_examples=40, deadline=None)
    def test_manifest_bookkeeping_invariants(self, script, per_segment):
        clock, tiered_log, reference, tier = build_pair(per_segment, 1 << 20)
        produced = 0
        for op, arg in script:
            if op == "produce":
                for _ in range(arg):
                    tiered_log.append(f"k{produced}", produced, timestamp=clock.now())
                    produced += 1
                    clock.advance(1.0)
            elif op == "retain":
                RetentionEnforcer(
                    RetentionConfig(retention_seconds=arg),
                    clock,
                    archiver=tier.archiver,
                ).enforce(tiered_log)
            entries = tier.manifest.entries()
            # Ordered, disjoint, contiguous with the hot tier.
            for a, b in zip(entries, entries[1:]):
                assert a.last_offset < b.first_offset
            if entries:
                assert tier.manifest.start_offset == entries[0].first_offset
                assert tier.manifest.end_offset == entries[-1].last_offset + 1
                # Archive ends exactly where the hot log begins: no record is
                # ever in both tiers, and none falls in between.
                assert tier.manifest.end_offset == tiered_log.log_start_offset
            assert tier.manifest.total_messages == sum(
                e.message_count for e in entries
            )
            assert tier.manifest.total_bytes == sum(e.size_bytes for e in entries)

    @given(steps, segment_sizes, st.integers(min_value=1, max_value=2000))
    @settings(max_examples=30, deadline=None)
    def test_hydration_cache_respects_cap(self, script, per_segment, cache_bytes):
        clock, tiered_log, reference, tier = build_pair(per_segment, cache_bytes)
        produced = 0
        for op, arg in script:
            if op == "produce":
                for _ in range(arg):
                    tiered_log.append(f"k{produced}", produced, timestamp=clock.now())
                    produced += 1
                    clock.advance(1.0)
            elif op == "retain":
                RetentionEnforcer(
                    RetentionConfig(retention_seconds=arg),
                    clock,
                    archiver=tier.archiver,
                ).enforce(tiered_log)
            elif produced:
                tier.read_through(min(int(arg * produced), produced - 1), 7)
            # The cache may exceed the cap only by the one segment currently
            # being served (eviction never drops the segment in use).
            reader = tier.reader
            assert reader.hydrated_segments <= max(
                1, reader.manifest.segment_count
            )
            if reader.hydrated_segments > 1:
                assert reader.hydrated_bytes <= cache_bytes + max(
                    e.size_bytes for e in tier.manifest.entries()
                )
