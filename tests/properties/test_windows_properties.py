"""Property-based tests: windows partition event streams without loss."""

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.processing.windows import SessionWindow, TumblingWindow

#: Per-key event streams with per-key non-decreasing timestamps (the
#: guarantee keyed partitions give).
event_streams = st.dictionaries(
    keys=st.sampled_from(["a", "b", "c"]),
    values=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ).map(sorted),
    min_size=1,
    max_size=3,
)


def interleave(streams):
    """Merge per-key streams into one timestamp-ordered event list."""
    events = [
        (ts, key) for key, stamps in streams.items() for ts in stamps
    ]
    return sorted(events)


class TestTumblingPartition:
    @given(event_streams, st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=60, deadline=None)
    def test_every_event_lands_in_exactly_one_window(self, streams, size):
        window = TumblingWindow(size=size, init=lambda: 0, fold=lambda a, e: a + 1)
        closed = []
        for ts, key in interleave(streams):
            closed.extend(window.add(key, ts, None))
        closed.extend(window.flush())
        total_events = sum(len(s) for s in streams.values())
        assert sum(w.count for w in closed) == total_events

    @given(event_streams, st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=60, deadline=None)
    def test_windows_are_aligned_and_disjoint_per_key(self, streams, size):
        window = TumblingWindow(size=size, init=lambda: 0, fold=lambda a, e: a + 1)
        closed = []
        for ts, key in interleave(streams):
            closed.extend(window.add(key, ts, None))
        closed.extend(window.flush())
        per_key = defaultdict(list)
        for result in closed:
            width = result.window_end - result.window_start
            assert abs(width - size) < 1e-9 * max(1.0, result.window_end)
            per_key[result.key].append((result.window_start, result.window_end))
        for intervals in per_key.values():
            intervals.sort()
            for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2 + 1e-9  # disjoint

    @given(event_streams, st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=40, deadline=None)
    def test_sum_preserved(self, streams, size):
        window = TumblingWindow(size=size, init=lambda: 0.0, fold=lambda a, e: a + e)
        closed = []
        for ts, key in interleave(streams):
            closed.extend(window.add(key, ts, ts))
        closed.extend(window.flush())
        total = sum(ts for stamps in streams.values() for ts in stamps)
        assert abs(sum(w.value for w in closed) - total) < 1e-6


class TestSessionPartition:
    @given(event_streams, st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=60, deadline=None)
    def test_every_event_in_exactly_one_session(self, streams, gap):
        window = SessionWindow(gap=gap, init=lambda: 0, fold=lambda a, e: a + 1)
        closed = []
        for ts, key in interleave(streams):
            closed.extend(window.add(key, ts, None))
        closed.extend(window.expire_idle(1e9))
        total_events = sum(len(s) for s in streams.values())
        assert sum(w.count for w in closed) == total_events

    @given(event_streams, st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=40, deadline=None)
    def test_sessions_separated_by_more_than_gap(self, streams, gap):
        window = SessionWindow(gap=gap, init=lambda: 0, fold=lambda a, e: a + 1)
        closed = []
        for ts, key in interleave(streams):
            closed.extend(window.add(key, ts, None))
        closed.extend(window.expire_idle(1e9))
        per_key = defaultdict(list)
        for result in closed:
            assert result.window_end >= result.window_start
            per_key[result.key].append((result.window_start, result.window_end))
        for intervals in per_key.values():
            intervals.sort()
            for (_s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
                assert s2 - e1 > gap
