"""Property-based tests for replication and delivery guarantees (§4.3).

The paper's durability contract: with acks=all, an acknowledged message
survives any N-1 failures of the ISR; delivery is at-least-once; and
per-partition order is total.  These properties are checked under randomized
produce / kill / restart / tick schedules.
"""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.errors import (
    BrokerUnavailableError,
    MessagingError,
    NotEnoughReplicasError,
)
from repro.common.records import TopicPartition
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.producer import Producer

TP = TopicPartition("t", 0)

#: A schedule step: produce a batch, kill a broker, restart one, or tick.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("produce"), st.integers(min_value=1, max_value=5)),
        st.tuples(st.just("kill"), st.integers(min_value=0, max_value=2)),
        st.tuples(st.just("restart"), st.integers(min_value=0, max_value=2)),
        st.tuples(st.just("tick"), st.just(0)),
    ),
    min_size=1,
    max_size=25,
)


def run_schedule(schedule):
    """Execute a schedule; returns (cluster, acked payload list)."""
    cluster = MessagingCluster(
        num_brokers=3, clock=SimClock(), replication_max_lag=2
    )
    cluster.create_topic(
        "t", num_partitions=1, replication_factor=3, min_insync_replicas=2
    )
    producer = Producer(cluster, acks=ACKS_ALL, max_retries=2)
    acked = []
    counter = 0
    for action, arg in schedule:
        if action == "produce":
            for _ in range(arg):
                payload = counter
                counter += 1
                try:
                    ack = producer.send("t", payload, key=f"k{payload % 3}")
                except (MessagingError, NotEnoughReplicasError,
                        BrokerUnavailableError):
                    continue  # re-buffered, not acked: no guarantee yet
                if ack is not None:
                    acked.append(payload)
                # ack is None: held back behind a re-buffered batch.
        elif action == "kill":
            live = cluster.controller.live_brokers()
            if len(live) > 1 and arg in live:
                cluster.kill_broker(arg)
        elif action == "restart":
            if arg not in cluster.controller.live_brokers():
                cluster.restart_broker(arg)
        else:
            cluster.tick(0.1)
    # Recover everything and settle.
    for broker_id in range(3):
        if broker_id not in cluster.controller.live_brokers():
            cluster.restart_broker(broker_id)
    cluster.run_until_replicated()
    # Failed sends were re-buffered, not dropped: after full recovery a
    # flush MUST deliver them, and their acks then claim the durability
    # guarantee like any other.
    if producer.pending():
        pending = [
            value
            for batches in producer._failed_batches.values()
            for _seq, entries in batches
            for (_k, value, _ts, _h) in entries
        ] + [
            value
            for buffer in producer._buffers.values()
            for (_k, value, _ts, _h) in buffer
        ]
        producer.flush()
        acked.extend(pending)
        cluster.run_until_replicated()
    return cluster, acked


class TestDurability:
    @given(steps)
    @settings(max_examples=40, deadline=None)
    def test_acked_messages_never_lost(self, schedule):
        cluster, acked = run_schedule(schedule)
        records, _ = cluster.fetch("t", 0, 0, max_messages=100000)
        delivered = [r.value for r in records]
        for payload in acked:
            assert payload in delivered, (
                f"acked payload {payload} lost; delivered={delivered}"
            )

    @given(steps)
    @settings(max_examples=40, deadline=None)
    def test_per_partition_order_is_produce_order(self, schedule):
        cluster, acked = run_schedule(schedule)
        records, _ = cluster.fetch("t", 0, 0, max_messages=100000)
        delivered = [r.value for r in records]
        # At-least-once: drop duplicates, keep first occurrence.
        seen = set()
        deduped = []
        for value in delivered:
            if value not in seen:
                seen.add(value)
                deduped.append(value)
        acked_in_delivered = [v for v in deduped if v in set(acked)]
        assert acked_in_delivered == sorted(acked_in_delivered)

    @given(steps)
    @settings(max_examples=30, deadline=None)
    def test_replicas_converge_to_identical_logs(self, schedule):
        cluster, _acked = run_schedule(schedule)
        cluster.run_until_replicated()
        logs = []
        for broker in cluster.brokers():
            if broker.hosts(TP):
                logs.append(
                    [(m.offset, m.key) for m in broker.replica(TP).log.all_messages()]
                )
        leader_id = cluster.leader_of("t", 0)
        leader_log = [
            (m.offset, m.key)
            for m in cluster.broker(leader_id).replica(TP).log.all_messages()
        ]
        for log in logs:
            # Followers hold a prefix of (or exactly) the leader's log.
            assert log == leader_log[: len(log)]

    @given(steps)
    @settings(max_examples=30, deadline=None)
    def test_hw_never_exceeds_any_isr_leo(self, schedule):
        cluster, _acked = run_schedule(schedule)
        leader_id = cluster.leader_of("t", 0)
        leader = cluster.broker(leader_id).replica(TP)
        for broker_id in cluster.controller.isr_for(TP):
            replica = cluster.broker(broker_id).replica(TP)
            assert leader.high_watermark <= replica.log_end_offset
