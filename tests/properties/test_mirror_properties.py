"""Property-based tests for cross-datacenter mirroring fidelity."""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.messaging.cluster import MessagingCluster
from repro.messaging.mirror import MirrorMaker
from repro.messaging.producer import Producer

#: Interleave appends with mirror polls and (rarely) target broker bounces.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("produce"), st.lists(st.integers(), min_size=1, max_size=6)),
        st.tuples(st.just("mirror"), st.just([])),
        st.tuples(st.just("bounce_target"), st.just([])),
    ),
    min_size=1,
    max_size=25,
)


def run(schedule):
    clock = SimClock()
    west = MessagingCluster(num_brokers=1, clock=clock)
    east = MessagingCluster(num_brokers=2, clock=clock)
    west.create_topic("t", num_partitions=2, replication_factor=1)
    producer = Producer(west)
    mirror = MirrorMaker(west, east, topics=["t"], name="prop")
    counter = 0
    for action, values in schedule:
        if action == "produce":
            for value in values:
                producer.send("t", value, key=f"k{counter % 4}")
                counter += 1
        elif action == "mirror":
            west.tick(0.0)
            mirror.poll()
            east.tick(0.0)
        else:
            if "t" in east.topics():
                east.kill_broker(0)
                east.restart_broker(0)
                east.run_until_replicated()
    mirror.run_until_synced()
    east.run_until_replicated()
    return west, east


def records_of(cluster, partition):
    result = cluster.fetch("t", partition, 0, max_messages=100_000)
    return [(r.key, r.value, r.timestamp) for r in result.records]


class TestMirrorFidelity:
    @given(steps)
    @settings(max_examples=40, deadline=None)
    def test_target_equals_source_per_partition(self, schedule):
        west, east = run(schedule)
        for partition in range(2):
            assert records_of(west, partition) == records_of(east, partition)

    @given(steps)
    @settings(max_examples=40, deadline=None)
    def test_lag_zero_after_sync(self, schedule):
        west, _east = run(schedule)
        # Re-derive the mirror's view: a fresh one with the same name reads
        # the checkpoints and should see nothing left to copy.
        east2 = MessagingCluster(num_brokers=1, clock=west.clock)
        fresh = MirrorMaker(west, east2, topics=["t"], name="prop2")
        fresh.run_until_synced()
        assert fresh.lag() == 0
