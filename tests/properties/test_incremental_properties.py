"""Property-based test: incremental folding ≡ full recomputation.

The §4.2 mechanism's correctness condition: no matter how appends are
interleaved with incremental update() calls, the maintained state equals a
from-scratch fold over the whole feed.
"""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.core.incremental import IncrementalFold
from repro.messaging.cluster import MessagingCluster

#: A schedule interleaves appends (value batches) with update() calls.
schedules = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.lists(st.integers(), min_size=1, max_size=10)),
        st.tuples(st.just("update"), st.just([])),
    ),
    min_size=1,
    max_size=20,
)


def build(partitions: int):
    cluster = MessagingCluster(num_brokers=1, clock=SimClock())
    cluster.create_topic("t", num_partitions=partitions, replication_factor=1)
    fold = IncrementalFold(
        cluster,
        "t",
        "stats",
        init=lambda: {"count": 0, "sum": 0},
        fold=lambda s, r: {"count": s["count"] + 1, "sum": s["sum"] + r.value},
    )
    return cluster, fold


class TestEquivalence:
    @given(schedules, st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_full_fold(self, schedule, partitions):
        cluster, fold = build(partitions)
        all_values = []
        counter = 0
        for action, values in schedule:
            if action == "append":
                for value in values:
                    cluster.produce("t", counter % partitions, [(None, value, None, {})])
                    counter += 1
                    all_values.append(value)
            else:
                fold.update()
        fold.update()  # final catch-up
        assert fold.state == {"count": len(all_values), "sum": sum(all_values)}

    @given(schedules, st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_update_reads_each_record_exactly_once(self, schedule, partitions):
        cluster, fold = build(partitions)
        total_appended = 0
        total_read = 0
        counter = 0
        for action, values in schedule:
            if action == "append":
                for value in values:
                    cluster.produce("t", counter % partitions, [(None, value, None, {})])
                    counter += 1
                total_appended += len(values)
            else:
                total_read += fold.update().records_read
        total_read += fold.update().records_read
        assert total_read == total_appended

    @given(schedules, st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_restarted_fold_never_rereads_checkpointed_data(self, schedule, partitions):
        """A fresh fold under the same group resumes from the checkpoints:
        after the original fold drained the feed, a restart reads nothing."""
        cluster, fold = build(partitions)
        counter = 0
        for action, values in schedule:
            if action == "append":
                for value in values:
                    cluster.produce("t", counter % partitions, [(None, value, None, {})])
                    counter += 1
            else:
                fold.update()
        fold.update()
        restarted = IncrementalFold(
            cluster, "t", "stats",
            init=lambda: {"count": 0, "sum": 0},
            fold=lambda s, r: {"count": s["count"] + 1, "sum": s["sum"] + r.value},
        )
        assert restarted.update().records_read == 0
