"""Property-based tests for transactional visibility.

Invariant: under any interleaving of begin/send/commit/abort across several
transactional producers, a read_committed consumer sees exactly the records
of committed transactions, in log order, and never a marker or an aborted
record.
"""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.messaging.transactions import TransactionalProducer

#: Schedule steps over two transactional producers (a, b) plus one plain
#: producer (p): begin/send/commit/abort per txn producer, plain send.
steps = st.lists(
    st.sampled_from(
        ["a.begin", "a.send", "a.commit", "a.abort",
         "b.begin", "b.send", "b.commit", "b.abort",
         "p.send"]
    ),
    min_size=1,
    max_size=40,
)


def run_schedule(schedule):
    cluster = MessagingCluster(num_brokers=1, clock=SimClock())
    cluster.create_topic("t", num_partitions=1, replication_factor=1)
    txn = {
        "a": TransactionalProducer(cluster, "a"),
        "b": TransactionalProducer(cluster, "b"),
    }
    plain = Producer(cluster)
    counter = iter(range(10**9))
    pending: dict[str, list[int]] = {"a": [], "b": []}
    expected_committed: list[int] = []
    sent_order: list[int] = []

    for step in schedule:
        who, action = step.split(".")
        if who == "p":
            value = next(counter)
            plain.send("t", value, partition=0)
            expected_committed.append(value)
            sent_order.append(value)
            continue
        producer = txn[who]
        open_now = producer.coordinator.is_open(producer.transactional_id)
        if action == "begin" and not open_now:
            producer.begin()
        elif action == "send" and open_now:
            value = next(counter)
            producer.send("t", value, partition=0)
            pending[who].append(value)
            sent_order.append(value)
        elif action == "commit" and open_now:
            producer.commit()
            expected_committed.extend(pending[who])
            pending[who] = []
        elif action == "abort" and open_now:
            producer.abort()
            pending[who] = []
    # Close any open transactions so the LSO reaches the end.
    for who, producer in txn.items():
        if producer.coordinator.is_open(producer.transactional_id):
            producer.abort()
            pending[who] = []
    return cluster, expected_committed, sent_order


class TestVisibility:
    @given(steps)
    @settings(max_examples=60, deadline=None)
    def test_read_committed_sees_exactly_committed_records(self, schedule):
        cluster, expected, _sent = run_schedule(schedule)
        result = cluster.fetch(
            "t", 0, 0, max_messages=10_000, isolation="read_committed"
        )
        values = [r.value for r in result.records]
        assert sorted(values) == sorted(expected)

    @given(steps)
    @settings(max_examples=60, deadline=None)
    def test_committed_records_delivered_in_log_order(self, schedule):
        cluster, expected, sent_order = run_schedule(schedule)
        result = cluster.fetch(
            "t", 0, 0, max_messages=10_000, isolation="read_committed"
        )
        values = [r.value for r in result.records]
        # Log order == send order restricted to committed values.
        assert values == [v for v in sent_order if v in set(expected)]

    @given(steps)
    @settings(max_examples=40, deadline=None)
    def test_no_markers_leak_at_any_isolation(self, schedule):
        cluster, _expected, _sent = run_schedule(schedule)
        for isolation in ("read_uncommitted", "read_committed"):
            result = cluster.fetch(
                "t", 0, 0, max_messages=10_000, isolation=isolation
            )
            assert all("__ctrl" not in r.headers for r in result.records)

    @given(steps)
    @settings(max_examples=40, deadline=None)
    def test_read_committed_is_subset_of_read_uncommitted(self, schedule):
        cluster, _expected, _sent = run_schedule(schedule)
        committed = {
            r.offset
            for r in cluster.fetch(
                "t", 0, 0, max_messages=10_000, isolation="read_committed"
            ).records
        }
        everything = {
            r.offset
            for r in cluster.fetch(
                "t", 0, 0, max_messages=10_000, isolation="read_uncommitted"
            ).records
        }
        assert committed <= everything
