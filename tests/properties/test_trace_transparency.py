"""Property: tracing observes, it never steers.

A traced run must be indistinguishable from an untraced run in everything
except the retained spans: same delivered records (modulo the reserved
``__trace`` header), same simulated clock, same metrics.  The mechanism
under test is the ``TRACE_HEADER`` exclusion in ``estimate_size`` — the
header adds zero accounted bytes, so latencies, quotas, and page-cache
charges cannot shift.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.records import TRACE_HEADER, TopicPartition
from repro.core.liquid import Liquid
from repro.messaging.config import ProducerConfig
from repro.observability.trace import Tracer, tracing
from repro.processing.job import JobConfig


class _EnrichTask:
    def process(self, record, collector):
        collector.send(
            "derived", {"v": record.value, "k": record.key}, key=record.key
        )


def _run(records, linger, traced, sample_rate, compression="none"):
    """One produce -> job -> consume pass; returns the observable outcome."""
    liquid = Liquid(num_brokers=3)
    liquid.create_feed("source", partitions=2)
    liquid.submit_job(
        JobConfig(name="enrich", inputs=["source"], task_factory=_EnrichTask),
        outputs=["derived"],
    )
    producer = liquid.producer(
        config=ProducerConfig(
            linger_messages=linger,
            retry_jitter_seed=0,
            compression=compression,
        )
    )

    def workload():
        for key, value in records:
            producer.send("source", value, key=key)
        producer.flush()
        liquid.cluster.run_until_replicated()
        liquid.process_available()
        liquid.cluster.run_until_replicated()
        consumer = liquid.consumer()
        consumer.assign(
            [TopicPartition("derived", 0), TopicPartition("derived", 1)]
        )
        out = []
        while True:
            batch = consumer.poll()
            if not batch:
                break
            out.extend(batch)
        return out

    if traced:
        with tracing(Tracer(sample_rate=sample_rate)):
            consumed = workload()
    else:
        consumed = workload()
    return {
        "records": [
            (
                r.topic,
                r.partition,
                r.offset,
                r.key,
                r.value,
                r.timestamp,
                r.size,
                {k: v for k, v in r.headers.items() if k != TRACE_HEADER},
            )
            for r in consumed
        ],
        "clock": liquid.cluster.clock.now(),
        "metrics": liquid.cluster.metrics.snapshot(),
    }


record_lists = st.lists(
    st.tuples(
        st.sampled_from(["a", "bb", "ccc", "dddd"]),
        st.integers(min_value=0, max_value=999),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=20, deadline=None)
@given(
    records=record_lists,
    linger=st.sampled_from([1, 3]),
    sample_rate=st.sampled_from([1, 2, 5]),
)
def test_traced_run_is_byte_identical_to_untraced(records, linger, sample_rate):
    baseline = _run(records, linger, traced=False, sample_rate=1)
    traced = _run(records, linger, traced=True, sample_rate=sample_rate)
    assert traced == baseline


@settings(max_examples=10, deadline=None)
@given(
    records=record_lists,
    linger=st.sampled_from([1, 3]),
    sample_rate=st.sampled_from([1, 2, 5]),
)
def test_traced_run_is_byte_identical_with_compression(
    records, linger, sample_rate
):
    """Tracing transparency survives the compressed wire format.

    Trace contexts ride *outside* the compressed frame payload, so arming
    both tracing and compression must still leave clock, metrics, and
    delivered records identical to the untraced compressed run.
    """
    baseline = _run(
        records, linger, traced=False, sample_rate=1, compression="zlib:6"
    )
    traced = _run(
        records, linger, traced=True, sample_rate=sample_rate,
        compression="zlib:6",
    )
    assert traced == baseline


@settings(max_examples=10, deadline=None)
@given(records=record_lists, sample_rate=st.sampled_from([1, 3]))
def test_tracing_is_idempotent_across_runs(records, sample_rate):
    """Two traced runs of the same workload agree with each other too."""
    first = _run(records, 1, traced=True, sample_rate=sample_rate)
    second = _run(records, 1, traced=True, sample_rate=sample_rate)
    assert first == second
