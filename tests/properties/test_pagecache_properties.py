"""Property-based tests for page-cache accounting invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.storage.pagecache import PageCache

PAGE = 64 * 1024

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.integers(min_value=0, max_value=31),  # page index
            st.integers(min_value=1, max_value=4),   # pages
        ),
        st.tuples(
            st.just("read"),
            st.integers(min_value=0, max_value=31),
            st.integers(min_value=1, max_value=4),
        ),
        st.tuples(st.just("advance"), st.integers(min_value=0, max_value=10), st.just(0)),
    ),
    max_size=60,
)


def run_ops(op_list, capacity_pages=8, eviction="append_order"):
    clock = SimClock()
    cache = PageCache(
        clock=clock,
        capacity_bytes=capacity_pages * PAGE,
        flush_timeout=2.0,
        prefetch_pages=2,
        eviction=eviction,
    )
    total_latency = 0.0
    for op, a, b in op_list:
        if op == "write":
            total_latency += cache.write("f", a * PAGE, b * PAGE)
        elif op == "read":
            total_latency += cache.read("f", a * PAGE, b * PAGE)
        else:
            clock.advance(float(a))
    return cache, total_latency


class TestInvariants:
    @given(ops, st.sampled_from(["append_order", "lru"]))
    @settings(max_examples=60, deadline=None)
    def test_residency_never_exceeds_capacity(self, op_list, eviction):
        cache, _latency = run_ops(op_list, capacity_pages=8, eviction=eviction)
        assert cache.resident_bytes() <= 8 * PAGE

    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_latency_is_nonnegative_and_finite(self, op_list):
        _cache, latency = run_ops(op_list)
        assert latency >= 0
        assert latency < 1e6

    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_read_latency_at_least_ram_cost(self, op_list):
        clock = SimClock()
        cache = PageCache(clock=clock, capacity_bytes=8 * PAGE)
        run_reads = [
            (a, b) for op, a, b in op_list if op == "read"
        ]
        for a, b in run_reads:
            latency = cache.read("f", a * PAGE, b * PAGE)
            assert latency >= cache.cost_model.ram_read(b * PAGE) * 0.99

    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_dirty_pages_subset_of_resident(self, op_list):
        cache, _latency = run_ops(op_list)
        assert cache.dirty_pages() <= cache.resident_bytes() // PAGE

    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_flush_timer_eventually_cleans_everything(self, op_list):
        cache, _latency = run_ops(op_list)
        cache.clock.advance(10.0)  # beyond flush_timeout for all writes
        assert cache.dirty_pages() == 0

    @given(ops)
    @settings(max_examples=30, deadline=None)
    def test_counters_are_consistent(self, op_list):
        cache, _latency = run_ops(op_list)
        hits = cache.metrics.counter("storage.pagecache.hits").value
        misses = cache.metrics.counter("storage.pagecache.misses").value
        requested_pages = sum(b for op, _a, b in op_list if op == "read")
        assert hits + misses == requested_pages
