"""Batch append paths must be indistinguishable from per-record loops.

The wall-clock optimizations (``append_batch``, ``append_stored_batch``,
bulk index updates, batched page-cache charges) promise *bit-identical*
semantics: same offsets, same segment layout and roll points, same index
contents, the same simulated latency to the last ulp, and the same error
behaviour.  These properties drive both implementations side by side over
random workloads — including byte- and message-triggered segment rolls,
offset gaps, and oversized records — and require exact equality.
"""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.common.records import StoredMessage
from repro.storage.log import LogConfig, PartitionLog

keys = st.one_of(st.none(), st.text(alphabet="abcde", min_size=1, max_size=3))
values = st.one_of(
    st.integers(),
    st.text(alphabet="xyz", min_size=0, max_size=40),
    st.none(),
)
headers = st.one_of(
    st.none(),
    st.dictionaries(
        st.text(alphabet="hk", min_size=1, max_size=2), st.integers(), max_size=2
    ),
)
entries = st.lists(st.tuples(keys, values, st.none(), headers), max_size=80)
configs = st.builds(
    LogConfig,
    segment_max_bytes=st.integers(min_value=30, max_value=400),
    segment_max_messages=st.integers(min_value=1, max_value=15),
    index_interval_bytes=st.sampled_from([1, 64, 4096]),
)


def fresh_log(config: LogConfig) -> PartitionLog:
    return PartitionLog("p-0", config, clock=SimClock())


def chunked(data, draw):
    """Split ``data`` into random contiguous chunks (drawn sizes)."""
    chunks = []
    i = 0
    while i < len(data):
        size = draw.draw(st.integers(min_value=1, max_value=len(data) - i))
        chunks.append(data[i : i + size])
        i += size
    return chunks


def assert_logs_identical(a: PartitionLog, b: PartitionLog) -> None:
    """Full structural equality: records, segment layout, indexes."""
    assert a.log_end_offset == b.log_end_offset
    assert a.log_start_offset == b.log_start_offset
    seg_a, seg_b = a.segments(), b.segments()
    assert [s.base_offset for s in seg_a] == [s.base_offset for s in seg_b]
    assert [s.sealed for s in seg_a] == [s.sealed for s in seg_b]
    for x, y in zip(seg_a, seg_b):
        assert list(x.messages()) == list(y.messages())
        assert x._offsets == y._offsets
        assert x._positions == y._positions
        assert x.size_bytes == y.size_bytes
    assert a._bases == b._bases
    assert set(a._indexes) == set(b._indexes)
    for base in a._indexes:
        ia, ib = a._indexes[base], b._indexes[base]
        assert ia._offsets == ib._offsets
        assert ia._positions == ib._positions
        assert ia._bytes_since_entry == ib._bytes_since_entry


class TestAppendBatchEquivalence:
    @given(entries, configs, st.data())
    @settings(max_examples=100, deadline=None)
    def test_matches_per_record_loop_exactly(self, data, config, draw):
        looped, batched = fresh_log(config), fresh_log(config)
        for chunk in chunked(data, draw):
            loop_latency = 0.0
            loop_offsets = []
            for key, value, ts, hdr in chunk:
                result = looped.append(key, value, ts, hdr)
                loop_latency += result.latency
                loop_offsets.append(result.offset)
            result = batched.append_batch(chunk)
            # Exact float equality: the batch fold replays the per-record
            # accumulation order, so not even the last ulp may differ.
            assert result.latency == loop_latency
            assert result.count == len(chunk)
            if chunk:
                assert result.base_offset == loop_offsets[0]
                assert result.last_offset == loop_offsets[-1]
            assert_logs_identical(looped, batched)

    @given(entries, configs)
    @settings(max_examples=50, deadline=None)
    def test_single_batch_equals_one_big_loop(self, data, config):
        looped, batched = fresh_log(config), fresh_log(config)
        for key, value, ts, hdr in data:
            looped.append(key, value, ts, hdr)
        batched.append_batch(data)
        assert_logs_identical(looped, batched)

    @given(entries, configs, st.data())
    @settings(max_examples=50, deadline=None)
    def test_oversized_record_commits_prefix_then_raises(
        self, data, config, draw
    ):
        # Plant an oversized record at a random position: both paths must
        # append everything before it, then raise, leaving identical logs.
        pos = draw.draw(st.integers(min_value=0, max_value=len(data)))
        big = "z" * (config.max_message_bytes + 1)
        poisoned = data[:pos] + [("k", big, None, None)] + data[pos:]
        looped, batched = fresh_log(config), fresh_log(config)
        loop_error = batch_error = None
        try:
            for key, value, ts, hdr in poisoned:
                looped.append(key, value, ts, hdr)
        except ConfigError as exc:
            loop_error = exc
        try:
            batched.append_batch(poisoned)
        except ConfigError as exc:
            batch_error = exc
        assert loop_error is not None and batch_error is not None
        assert str(loop_error) == str(batch_error)
        assert_logs_identical(looped, batched)


def gapped_messages(data, draw):
    """StoredMessages with strictly increasing, possibly gapped offsets —
    what a follower sees fetching from a compacted leader."""
    messages = []
    offset = 0
    for key, value, _ts, hdr in data:
        offset += draw.draw(st.integers(min_value=1, max_value=4))
        messages.append(
            StoredMessage(
                key=key, value=value, timestamp=0.0, offset=offset,
                headers=hdr if hdr is not None else {},
            )
        )
    return messages


class TestAppendStoredBatchEquivalence:
    @given(entries, configs, st.data())
    @settings(max_examples=100, deadline=None)
    def test_matches_per_record_loop_exactly(self, data, config, draw):
        messages = gapped_messages(data, draw)
        looped, batched = fresh_log(config), fresh_log(config)
        for chunk in chunked(messages, draw):
            loop_latency = 0.0
            for message in chunk:
                copy = StoredMessage(**vars_of(message))
                loop_latency += looped.append_stored(copy).latency
            result = batched.append_stored_batch(
                [StoredMessage(**vars_of(m)) for m in chunk]
            )
            assert result.latency == loop_latency
            assert_logs_identical(looped, batched)

    @given(entries, configs, st.data())
    @settings(max_examples=50, deadline=None)
    def test_out_of_order_commits_prefix_then_raises(self, data, config, draw):
        messages = gapped_messages(data, draw)
        if len(messages) < 2:
            return
        # Clone a message back to an already-used offset somewhere after it.
        bad_after = draw.draw(
            st.integers(min_value=1, max_value=len(messages) - 1)
        )
        stale = StoredMessage(**vars_of(messages[0]))
        poisoned = messages[:bad_after] + [stale] + messages[bad_after:]
        looped, batched = fresh_log(config), fresh_log(config)
        loop_error = batch_error = None
        try:
            for message in poisoned:
                looped.append_stored(StoredMessage(**vars_of(message)))
        except ConfigError as exc:
            loop_error = exc
        try:
            batched.append_stored_batch(
                [StoredMessage(**vars_of(m)) for m in poisoned]
            )
        except ConfigError as exc:
            batch_error = exc
        assert loop_error is not None and batch_error is not None
        assert str(loop_error) == str(batch_error)
        assert_logs_identical(looped, batched)


def vars_of(message: StoredMessage) -> dict:
    """Field dict of a slotted StoredMessage (no __dict__ to vars())."""
    return {
        "key": message.key,
        "value": message.value,
        "timestamp": message.timestamp,
        "offset": message.offset,
        "headers": dict(message.headers),
        "size": message.size,
    }


class TestReadEquivalence:
    @given(entries, configs, st.data())
    @settings(max_examples=50, deadline=None)
    def test_reads_agree_between_batch_and_loop_built_logs(
        self, data, config, draw
    ):
        looped, batched = fresh_log(config), fresh_log(config)
        for key, value, ts, hdr in data:
            looped.append(key, value, ts, hdr)
        for chunk in chunked(data, draw):
            batched.append_batch(chunk)
        end = looped.log_end_offset
        for _ in range(4):
            start = draw.draw(st.integers(min_value=0, max_value=end))
            max_messages = draw.draw(st.integers(min_value=0, max_value=end + 1))
            max_bytes = draw.draw(
                st.one_of(st.none(), st.integers(min_value=1, max_value=600))
            )
            got_a = looped.read(start, max_messages, max_bytes)
            got_b = batched.read(start, max_messages, max_bytes)
            assert got_a.messages == got_b.messages
            assert got_a.latency == got_b.latency
            assert got_a.next_offset == got_b.next_offset
            assert got_a.log_end_offset == got_b.log_end_offset
