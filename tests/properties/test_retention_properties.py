"""Property-based tests for retention invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.storage.compaction import LogCompactor
from repro.storage.log import LogConfig, PartitionLog
from repro.storage.retention import RetentionConfig, RetentionEnforcer

appends = st.lists(
    st.tuples(st.sampled_from("abc"), st.integers()), min_size=1, max_size=60
)
segment_sizes = st.integers(min_value=1, max_value=10)


def build(data, per_segment, dt=1.0):
    clock = SimClock()
    log = PartitionLog(
        "t-0", LogConfig(segment_max_messages=per_segment), clock=clock
    )
    for key, value in data:
        log.append(key, value, timestamp=clock.now())
        clock.advance(dt)
    return clock, log


class TestRetentionInvariants:
    @given(appends, segment_sizes, st.floats(min_value=0.5, max_value=100.0))
    @settings(max_examples=60, deadline=None)
    def test_unexpired_records_never_deleted(self, data, per_segment, window):
        clock, log = build(data, per_segment)
        enforcer = RetentionEnforcer(
            RetentionConfig(retention_seconds=window), clock
        )
        enforcer.enforce(log)
        horizon = clock.now() - window
        # Every record NEWER than the horizon must still be present (whole-
        # segment deletion may retain some older ones, never drop newer).
        surviving = {m.offset for m in log.all_messages()}
        for offset, (key, value) in enumerate(data):
            record_ts = float(offset)  # appended at t=offset
            if record_ts >= horizon:
                assert offset in surviving

    @given(appends, segment_sizes, st.integers(min_value=1, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_size_bound_holds_modulo_active_segment(self, data, per_segment, cap):
        clock, log = build(data, per_segment)
        enforcer = RetentionEnforcer(RetentionConfig(retention_bytes=cap), clock)
        enforcer.enforce(log)
        active_bytes = log.active_segment().size_bytes
        assert log.size_bytes <= max(cap, active_bytes)

    @given(appends, segment_sizes)
    @settings(max_examples=40, deadline=None)
    def test_reads_valid_after_any_retention(self, data, per_segment):
        clock, log = build(data, per_segment)
        clock.advance(10.0)
        enforcer = RetentionEnforcer(
            RetentionConfig(retention_seconds=len(data) / 2), clock
        )
        enforcer.enforce(log)
        batch = log.read(log.log_start_offset, max_messages=len(data)).messages
        offsets = [m.offset for m in batch]
        assert offsets == sorted(offsets)
        assert all(o >= log.log_start_offset for o in offsets)

    @given(appends, segment_sizes)
    @settings(max_examples=40, deadline=None)
    def test_retention_then_compaction_composes(self, data, per_segment):
        clock, log = build(data, per_segment)
        clock.advance(5.0)
        RetentionEnforcer(
            RetentionConfig(retention_seconds=len(data) / 2.0), clock
        ).enforce(log)
        LogCompactor(clock=clock).compact(log)
        # Whatever survives: latest value per retained key, ordered offsets.
        survivors = log.all_messages()
        offsets = [m.offset for m in survivors]
        assert offsets == sorted(set(offsets))
        latest_by_key = {}
        for m in survivors:
            latest_by_key[m.key] = m
        # Each retained key's survivor matches the overall latest write for
        # that key IF that write is still retained.
        for key, message in latest_by_key.items():
            original_latest = max(
                offset for offset, (k, _v) in enumerate(data) if k == key
            )
            if original_latest >= log.log_start_offset:
                last_for_key = max(m.offset for m in survivors if m.key == key)
                assert last_for_key == original_latest
