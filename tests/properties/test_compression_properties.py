"""Properties of the compressed batch wire format.

Two invariants:

* **Round-trip**: ``decompress(compress(batch)) == batch`` for every codec
  and level, for arbitrary picklable keys/values/headers — compression is
  lossless by construction, not by luck.
* **Pipeline transparency**: a compressed produce -> replicate -> consume
  pass delivers exactly the records (values, keys, offsets, timestamps,
  logical sizes) of the identical uncompressed pass.  Compression changes
  byte accounting, never data.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import SimClock
from repro.common.compression import (
    compress_entries,
    decompress_entries,
    parse_compression,
)
from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.config import ConsumerConfig, ProducerConfig
from repro.messaging.consumer import Consumer
from repro.messaging.producer import Producer

keys = st.one_of(
    st.none(),
    st.text(max_size=12),
    st.binary(max_size=12),
    st.integers(),
)
values = st.one_of(
    st.text(max_size=64),
    st.integers(),
    st.floats(allow_nan=False),
    st.dictionaries(st.text(max_size=6), st.integers(), max_size=4),
    st.lists(st.text(max_size=8), max_size=6),
)
headers = st.dictionaries(
    st.text(min_size=1, max_size=8), st.text(max_size=10), max_size=3
)
batches = st.lists(
    st.tuples(
        keys, values, st.floats(min_value=0, max_value=1e6), headers
    ),
    min_size=1,
    max_size=20,
)
codec_specs = st.sampled_from(
    ["zlib", "zlib:1", "zlib:3", "zlib:6", "zlib:9"]
)


class TestRoundTrip:
    @given(batch=batches, spec=codec_specs)
    @settings(max_examples=60, deadline=None)
    def test_decompress_inverts_compress(self, batch, spec):
        codec, level = parse_compression(spec)
        frame = compress_entries(batch, codec, level)
        assert frame is not None
        assert frame.count == len(batch)
        assert decompress_entries(frame) == batch

    @given(batch=batches)
    @settings(max_examples=30, deadline=None)
    def test_levels_agree_on_content(self, batch):
        """Every level stores the same records; only the byte count moves."""
        frames = [
            compress_entries(batch, "zlib", level) for level in (1, 6, 9)
        ]
        contents = [decompress_entries(f) for f in frames]
        assert contents[0] == contents[1] == contents[2] == batch
        assert all(f.payload_bytes == frames[0].payload_bytes for f in frames)


def _run_pipeline(records, linger, compression):
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("t", num_partitions=2, replication_factor=3)
    producer = Producer(
        cluster,
        config=ProducerConfig(
            compression=compression,
            linger_messages=linger,
            retry_jitter_seed=0,
        ),
    )
    for key, value in records:
        producer.send("t", value, key=key)
    producer.flush()
    cluster.run_until_replicated()
    consumer = Consumer(
        cluster, config=ConsumerConfig(auto_offset_reset="earliest")
    )
    consumer.assign([TopicPartition("t", 0), TopicPartition("t", 1)])
    out = []
    while True:
        batch = consumer.poll()
        if not batch:
            break
        out.extend(batch)
    return [
        (r.topic, r.partition, r.offset, r.key, r.value, r.timestamp, r.size)
        for r in out
    ]


pipeline_records = st.lists(
    st.tuples(
        st.sampled_from(["a", "bb", "ccc", None]),
        st.one_of(st.text(max_size=40), st.integers()),
    ),
    min_size=1,
    max_size=30,
)


class TestPipelineTransparency:
    @given(
        records=pipeline_records,
        linger=st.sampled_from([1, 4, 8]),
        spec=st.sampled_from(["zlib:1", "zlib:6", "zlib:9"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_compressed_pipeline_matches_uncompressed(
        self, records, linger, spec
    ):
        baseline = _run_pipeline(records, linger, "none")
        compressed = _run_pipeline(records, linger, spec)
        assert compressed == baseline
