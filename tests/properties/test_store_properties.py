"""Property-based tests: LsmStore behaves exactly like a dict."""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.processing.store import LsmStore

keys = st.text(alphabet="abcdefgh", min_size=1, max_size=3)
values = st.one_of(st.integers(), st.text(max_size=5))

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("delete"), keys, st.none()),
    ),
    max_size=120,
)


class TestAgainstDictModel:
    @given(operations, st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_random_ops_match_model(self, ops, memtable_size):
        store = LsmStore(memtable_max_entries=memtable_size, max_runs=2)
        model: dict = {}
        for op, key, value in ops:
            if op == "put":
                store.put(key, value)
                model[key] = value
            else:
                store.delete(key)
                model.pop(key, None)
            assert store.get(key) == model.get(key)
        for key in model:
            assert store.get(key) == model[key]
        assert dict(store.items()) == model
        assert len(store) == len(model)

    @given(operations, st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_compaction_preserves_contents(self, ops, memtable_size):
        store = LsmStore(memtable_max_entries=memtable_size, max_runs=3)
        model: dict = {}
        for op, key, value in ops:
            if op == "put":
                store.put(key, value)
                model[key] = value
            else:
                store.delete(key)
                model.pop(key, None)
        store.flush_memtable()
        store.compact()
        assert dict(store.items()) == model

    @given(operations)
    @settings(max_examples=30, deadline=None)
    def test_contains_matches_model(self, ops):
        store = LsmStore(memtable_max_entries=3, max_runs=2)
        model: dict = {}
        for op, key, value in ops:
            if op == "put":
                store.put(key, value)
                model[key] = value
            else:
                store.delete(key)
                model.pop(key, None)
        for key in "abcdefgh":
            assert (key in store) == (key in model)


class LsmStateMachine(RuleBasedStateMachine):
    """Stateful fuzz of the LSM store against a dict."""

    def __init__(self):
        super().__init__()
        self.store = LsmStore(memtable_max_entries=4, max_runs=2)
        self.model: dict = {}

    @rule(key=keys, value=values)
    def put(self, key, value):
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        self.store.delete(key)
        self.model.pop(key, None)

    @rule()
    def flush(self):
        self.store.flush_memtable()

    @rule()
    def compact(self):
        self.store.flush_memtable()
        self.store.compact()

    @invariant()
    def contents_match(self):
        assert dict(self.store.items()) == self.model


TestLsmStateMachine = LsmStateMachine.TestCase
TestLsmStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
