"""Property: telemetry observes, it never steers.

A run with the exporter enabled must be indistinguishable from a run
without it in everything a job or consumer can see: same delivered
records (partition, offset, key, value, timestamp, size, headers) and
the same simulated clock.  The mechanisms under test are (a) the export
timer firing *inside* ``cluster.tick`` without advancing the clock, and
(b) the exporter's own producer being created after the workload's, so
producer ids never shift.

The metric registry is deliberately NOT compared: exporting moves
messaging counters by design.  What must not move is the data plane.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.records import TopicPartition
from repro.core.liquid import Liquid
from repro.messaging.config import ProducerConfig
from repro.processing.job import JobConfig


class _EnrichTask:
    def process(self, record, collector):
        collector.send(
            "derived", {"v": record.value, "k": record.key}, key=record.key
        )


def _run(records, linger, telemetry, interval, with_slos=False):
    """One produce -> tick -> job -> tick -> consume pass."""
    liquid = Liquid(num_brokers=1)
    liquid.create_feed("source", partitions=2)
    liquid.submit_job(
        JobConfig(name="enrich", inputs=["source"], task_factory=_EnrichTask),
        outputs=["derived"],
    )
    producer = liquid.producer(
        config=ProducerConfig(linger_messages=linger, retry_jitter_seed=0)
    )
    # The exporter comes up last, exactly as in a real deployment where
    # monitoring attaches to an already-wired pipeline.  (Its producer
    # takes the next global producer id; creating it earlier would shift
    # the workload's ids and make runs trivially incomparable.)
    if telemetry:
        liquid.enable_telemetry(interval=interval, with_slos=with_slos)

    for key, value in records:
        producer.send("source", value, key=key)
    producer.flush()
    liquid.tick(interval * 1.5)  # at least one export cycle mid-flight
    liquid.process_available()
    liquid.tick(interval * 2.0)  # export cycles after the job ran
    consumer = liquid.consumer()
    consumer.assign([TopicPartition("derived", 0), TopicPartition("derived", 1)])
    out = []
    while True:
        batch = consumer.poll()
        if not batch:
            break
        out.extend(batch)
    return {
        "records": [
            (
                r.topic,
                r.partition,
                r.offset,
                r.key,
                r.value,
                r.timestamp,
                r.size,
                dict(r.headers),
            )
            for r in out
        ],
        "clock": liquid.cluster.clock.now(),
    }


record_lists = st.lists(
    st.tuples(
        st.sampled_from(["a", "bb", "ccc", "dddd"]),
        st.integers(min_value=0, max_value=999),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=15, deadline=None)
@given(
    records=record_lists,
    linger=st.sampled_from([1, 3]),
    interval=st.sampled_from([0.5, 2.0]),
)
def test_telemetry_run_is_byte_identical_to_plain_run(
    records, linger, interval
):
    baseline = _run(records, linger, telemetry=False, interval=interval)
    monitored = _run(records, linger, telemetry=True, interval=interval)
    assert monitored == baseline


@settings(max_examples=8, deadline=None)
@given(records=record_lists, linger=st.sampled_from([1, 3]))
def test_telemetry_with_slos_is_still_transparent(records, linger):
    """The SLO sampler reads lag/ISR/freshness each cycle — all read-only
    paths, so arming it must not perturb the data plane either."""
    baseline = _run(records, linger, telemetry=False, interval=1.0)
    monitored = _run(
        records, linger, telemetry=True, interval=1.0, with_slos=True
    )
    assert monitored == baseline


@settings(max_examples=8, deadline=None)
@given(records=record_lists, interval=st.sampled_from([0.5, 2.0]))
def test_monitored_runs_agree_with_each_other(records, interval):
    """Two monitored runs of the same workload are identical too — the
    exporter itself is deterministic on the sim clock."""
    first = _run(records, 1, telemetry=True, interval=interval)
    second = _run(records, 1, telemetry=True, interval=interval)
    assert first == second
