"""Property-based tests for consumer-group assignment invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.messaging.cluster import MessagingCluster
from repro.messaging.consumer_group import GroupCoordinator

member_actions = st.lists(
    st.one_of(
        st.tuples(st.just("join"), st.integers(min_value=0, max_value=5)),
        st.tuples(st.just("leave"), st.integers(min_value=0, max_value=5)),
    ),
    min_size=1,
    max_size=20,
)

partition_counts = st.integers(min_value=1, max_value=8)
strategies_list = st.sampled_from(["range", "round_robin", "cooperative_sticky"])


def apply_actions(actions, partitions, strategy):
    cluster = MessagingCluster(num_brokers=1, clock=SimClock())
    cluster.create_topic("t", num_partitions=partitions, replication_factor=1)
    gc = GroupCoordinator(cluster, strategy=strategy)
    members: set[str] = set()
    for action, idx in actions:
        member = f"m{idx}"
        if action == "join":
            gc.join("g", member, {"t"})
            members.add(member)
        elif member in members:
            gc.leave("g", member)
            members.remove(member)
    return cluster, gc, members


class TestAssignmentInvariants:
    @given(member_actions, partition_counts, strategies_list)
    @settings(max_examples=80, deadline=None)
    def test_partitions_covered_exactly_once(self, actions, partitions, strategy):
        cluster, gc, members = apply_actions(actions, partitions, strategy)
        if not members:
            return
        assigned = []
        for member in members:
            assigned.extend(gc.assignment_for("g", member))
        assert len(assigned) == partitions
        assert len(set(assigned)) == partitions  # disjoint

    @given(member_actions, partition_counts, strategies_list)
    @settings(max_examples=60, deadline=None)
    def test_assignment_balanced(self, actions, partitions, strategy):
        _cluster, gc, members = apply_actions(actions, partitions, strategy)
        if not members:
            return
        sizes = [len(gc.assignment_for("g", m)) for m in members]
        assert max(sizes) - min(sizes) <= 1

    @given(member_actions, partition_counts, strategies_list)
    @settings(max_examples=60, deadline=None)
    def test_generation_strictly_increases(self, actions, partitions, strategy):
        cluster = MessagingCluster(num_brokers=1, clock=SimClock())
        cluster.create_topic("t", num_partitions=partitions, replication_factor=1)
        gc = GroupCoordinator(cluster, strategy=strategy)
        members: set[str] = set()
        last_generation = 0
        for action, idx in actions:
            member = f"m{idx}"
            if action == "join":
                gc.join("g", member, {"t"})
                members.add(member)
            elif member in members:
                gc.leave("g", member)
                members.remove(member)
            else:
                continue
            generation = gc.generation("g")
            assert generation > last_generation
            last_generation = generation

    @given(member_actions, partition_counts)
    @settings(max_examples=80, deadline=None)
    def test_invariants_hold_at_every_step_under_churn(self, actions, partitions):
        """Disjointness, completeness, and generation monotonicity checked
        after *every* membership change of a random join/leave storm, for
        every strategy — not just at the end state."""
        for strategy in ("range", "round_robin", "cooperative_sticky"):
            cluster = MessagingCluster(num_brokers=1, clock=SimClock())
            cluster.create_topic(
                "t", num_partitions=partitions, replication_factor=1
            )
            gc = GroupCoordinator(cluster, strategy=strategy)
            members: set[str] = set()
            last_generation = 0
            for action, idx in actions:
                member = f"m{idx}"
                if action == "join":
                    gc.join("g", member, {"t"})
                    members.add(member)
                elif member in members:
                    gc.leave("g", member)
                    members.remove(member)
                else:
                    continue
                generation = gc.generation("g")
                assert generation > last_generation, strategy
                last_generation = generation
                assigned = []
                for m in members:
                    assigned.extend(gc.assignment_for("g", m))
                if members:
                    assert len(assigned) == partitions, strategy
                    assert len(set(assigned)) == partitions, strategy
                    sizes = [len(gc.assignment_for("g", m)) for m in members]
                    assert max(sizes) - min(sizes) <= 1, strategy

    @given(member_actions, partition_counts)
    @settings(max_examples=60, deadline=None)
    def test_sticky_moves_at_most_the_eager_strategies(self, actions, partitions):
        """Under identical churn, cooperative-sticky never moves more
        partitions (summed over every rebalance) than range does."""

        def total_moves(strategy):
            cluster = MessagingCluster(num_brokers=1, clock=SimClock())
            cluster.create_topic(
                "t", num_partitions=partitions, replication_factor=1
            )
            gc = GroupCoordinator(cluster, strategy=strategy)
            members: set[str] = set()
            previous: dict[str, set] = {}
            moves = 0
            for action, idx in actions:
                member = f"m{idx}"
                if action == "join":
                    gc.join("g", member, {"t"})
                    members.add(member)
                elif member in members:
                    gc.leave("g", member)
                    members.remove(member)
                else:
                    continue
                current = {
                    m: set(gc.assignment_for("g", m)) for m in members
                }
                moves += sum(
                    len(previous.get(m, set()) - current[m])
                    for m in members
                )
                previous = current
            return moves

        assert total_moves("cooperative_sticky") <= total_moves("range")
