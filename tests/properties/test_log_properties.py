"""Property-based tests for the commit log's core invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.storage.compaction import LogCompactor
from repro.storage.log import LogConfig, PartitionLog

keys = st.text(alphabet="abcde", min_size=1, max_size=2)
values = st.integers()
entries = st.lists(st.tuples(keys, values), min_size=1, max_size=80)
segment_sizes = st.integers(min_value=1, max_value=20)


def build_log(data, per_segment) -> PartitionLog:
    log = PartitionLog(
        "p-0", LogConfig(segment_max_messages=per_segment), clock=SimClock()
    )
    for key, value in data:
        log.append(key, value)
    return log


class TestAppendInvariants:
    @given(entries, segment_sizes)
    @settings(max_examples=50, deadline=None)
    def test_offsets_are_dense_and_ordered(self, data, per_segment):
        log = build_log(data, per_segment)
        offsets = [m.offset for m in log.all_messages()]
        assert offsets == list(range(len(data)))

    @given(entries, segment_sizes)
    @settings(max_examples=50, deadline=None)
    def test_read_returns_exact_suffix(self, data, per_segment):
        log = build_log(data, per_segment)
        for start in range(0, len(data) + 1, max(1, len(data) // 5)):
            got = log.read(start, max_messages=len(data) + 1).messages
            assert [(m.key, m.value) for m in got] == data[start:]

    @given(entries, segment_sizes)
    @settings(max_examples=30, deadline=None)
    def test_segments_partition_the_offset_space(self, data, per_segment):
        log = build_log(data, per_segment)
        covered = []
        for segment in log.segments():
            covered.extend(m.offset for m in segment.messages())
        assert covered == sorted(covered)
        assert covered == list(range(len(data)))


class TestTruncateInvariants:
    @given(entries, segment_sizes, st.data())
    @settings(max_examples=50, deadline=None)
    def test_truncate_matches_list_model(self, data, per_segment, draw):
        log = build_log(data, per_segment)
        cut = draw.draw(st.integers(min_value=0, max_value=len(data)))
        log.truncate_to(cut)
        model = data[:cut]
        assert [(m.key, m.value) for m in log.all_messages()] == model
        assert log.log_end_offset == cut

    @given(entries, segment_sizes, st.data())
    @settings(max_examples=30, deadline=None)
    def test_append_after_truncate_continues_contiguously(
        self, data, per_segment, draw
    ):
        log = build_log(data, per_segment)
        cut = draw.draw(st.integers(min_value=0, max_value=len(data)))
        log.truncate_to(cut)
        result = log.append("new-key", "new-value")
        assert result.offset == cut


class TestCompactionInvariants:
    @given(entries, segment_sizes)
    @settings(max_examples=50, deadline=None)
    def test_latest_value_per_key_preserved(self, data, per_segment):
        log = build_log(data, per_segment)
        LogCompactor(clock=SimClock()).compact(log)
        latest = {}
        for key, value in data:
            latest[key] = value
        survivors = {m.key: m.value for m in log.all_messages()}
        # Every live key's latest value is present and correct.
        assert survivors == {
            key: value
            for key, value in latest.items()
        } or all(survivors[k] == latest[k] for k in survivors)
        for key in latest:
            assert survivors.get(key) == latest[key]

    @given(entries, segment_sizes)
    @settings(max_examples=50, deadline=None)
    def test_offsets_stay_sorted_and_unique(self, data, per_segment):
        log = build_log(data, per_segment)
        LogCompactor(clock=SimClock()).compact(log)
        offsets = [m.offset for m in log.all_messages()]
        assert offsets == sorted(set(offsets))

    @given(entries, segment_sizes)
    @settings(max_examples=30, deadline=None)
    def test_compaction_never_grows_the_log(self, data, per_segment):
        log = build_log(data, per_segment)
        before_bytes = log.size_bytes
        before_count = log.message_count
        LogCompactor(clock=SimClock()).compact(log)
        assert log.size_bytes <= before_bytes
        assert log.message_count <= before_count

    @given(entries, segment_sizes)
    @settings(max_examples=30, deadline=None)
    def test_reads_after_compaction_skip_forward(self, data, per_segment):
        log = build_log(data, per_segment)
        LogCompactor(clock=SimClock()).compact(log)
        got = log.read(0, max_messages=len(data) + 1).messages
        assert [m.offset for m in got] == [m.offset for m in log.all_messages()]
