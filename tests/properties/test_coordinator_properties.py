"""Stateful property test: the coordinator behaves like a modelled tree."""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.cluster.coordinator import Coordinator
from repro.common.errors import NodeExistsError, NoNodeError

PATHS = ["/a", "/a/x", "/a/y", "/b", "/b/z"]


class CoordinatorMachine(RuleBasedStateMachine):
    """Random create/delete/set against a dict model of the znode tree."""

    def __init__(self):
        super().__init__()
        self.coordinator = Coordinator()
        self.model: dict[str, object] = {"/": None}
        self.session = self.coordinator.connect("fuzzer")
        self.ephemerals: set[str] = set()

    def _parent(self, path: str) -> str:
        parent = path.rsplit("/", 1)[0]
        return parent if parent else "/"

    @rule(path=st.sampled_from(PATHS), data=st.integers())
    def create(self, path, data):
        parent_exists = self._parent(path) in self.model
        exists = path in self.model
        try:
            self.coordinator.create(path, data=data)
            assert parent_exists and not exists
            self.model[path] = data
        except NodeExistsError:
            assert exists
        except NoNodeError:
            assert not parent_exists

    @rule(path=st.sampled_from(PATHS), data=st.integers())
    def create_ephemeral(self, path, data):
        parent_exists = self._parent(path) in self.model
        exists = path in self.model
        try:
            self.coordinator.create(
                path, data=data, ephemeral=True, session=self.session
            )
            assert parent_exists and not exists
            self.model[path] = data
            self.ephemerals.add(path)
        except NodeExistsError:
            assert exists
        except NoNodeError:
            assert not parent_exists

    @rule(path=st.sampled_from(PATHS))
    def delete(self, path):
        exists = path in self.model
        try:
            self.coordinator.delete(path)
            assert exists
            for candidate in list(self.model):
                if candidate == path or candidate.startswith(path + "/"):
                    del self.model[candidate]
                    self.ephemerals.discard(candidate)
        except NoNodeError:
            assert not exists

    @rule(path=st.sampled_from(PATHS), data=st.integers())
    def set_data(self, path, data):
        exists = path in self.model
        try:
            self.coordinator.set_data(path, data)
            assert exists
            self.model[path] = data
        except NoNodeError:
            assert not exists

    @rule()
    @precondition(lambda self: self.ephemerals)
    def expire_and_reconnect(self):
        self.coordinator.expire_session(self.session)
        for path in list(self.model):
            if any(
                path == e or path.startswith(e + "/") for e in self.ephemerals
            ):
                del self.model[path]
        self.ephemerals.clear()
        self.session = self.coordinator.connect("fuzzer")

    @invariant()
    def model_matches(self):
        for path, data in self.model.items():
            assert self.coordinator.exists(path)
            if path != "/":
                assert self.coordinator.get(path) == data
        for path in PATHS:
            if path not in self.model:
                assert not self.coordinator.exists(path)

    @invariant()
    def children_consistent(self):
        for path in self.model:
            expected_children = sorted(
                c for c in self.model
                if c != path and self._parent(c) == path
            )
            assert self.coordinator.children(path) == expected_children


TestCoordinatorMachine = CoordinatorMachine.TestCase
TestCoordinatorMachine.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
