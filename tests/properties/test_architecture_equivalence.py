"""Property: all three architectures compute the same answers.

E7 compares Lambda, Kappa, and Liquid on cost; this fuzz confirms the
*correctness* precondition of that comparison — for arbitrary keyed event
streams and query points, every architecture serves the same counts as a
plain reference fold.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.kappa_arch import KappaArchitecture
from repro.baselines.lambda_arch import LambdaArchitecture
from repro.common.clock import SimClock
from repro.core.liquid import Liquid
from repro.processing.job import JobConfig, StoreConfig

events_strategy = st.lists(
    st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=60
)
#: Where (after how many events) to run the batch layer / processing passes.
split_points = st.integers(min_value=0, max_value=60)


def reference_counts(words):
    counts = {}
    for word in words:
        counts[word] = counts.get(word, 0) + 1
    return counts


class _CountTask:
    def init(self, context):
        self.counts = context.store("counts")

    def process(self, record, collector):
        word = record.value["w"]
        self.counts.put(word, self.counts.get_or_default(word, 0) + 1)


class TestEquivalence:
    @given(events_strategy, split_points)
    @settings(max_examples=40, deadline=None)
    def test_lambda_matches_reference(self, words, split):
        lam = LambdaArchitecture(ingest_batch_size=10)
        lam.register_stream_logic(
            lambda view, e: view.__setitem__(e["w"], view.get(e["w"], 0) + 1)
        )
        lam.register_batch_logic(lambda e: [(e["w"], 1)], lambda k, vs: sum(vs))
        split = min(split, len(words))
        lam.ingest([{"w": w} for w in words[:split]])
        lam.run_speed_layer()
        lam.run_batch_layer()
        lam.ingest([{"w": w} for w in words[split:]])
        lam.run_speed_layer()
        expected = reference_counts(words)
        for word in "abcd":
            assert lam.query(word) == expected.get(word), word

    @given(events_strategy, split_points)
    @settings(max_examples=40, deadline=None)
    def test_kappa_matches_reference_across_reprocess(self, words, split):
        kappa = KappaArchitecture()
        update = lambda view, e: view.__setitem__(  # noqa: E731
            e["w"], view.get(e["w"], 0) + 1
        )
        kappa.register_logic(update, "v1")
        split = min(split, len(words))
        kappa.ingest([{"w": w} for w in words[:split]])
        kappa.process()
        kappa.reprocess(update, "v2")  # same logic: reprocess is a no-op change
        kappa.ingest([{"w": w} for w in words[split:]])
        kappa.process()
        expected = reference_counts(words)
        for word in "abcd":
            assert kappa.query(word) == expected.get(word), word

    @given(events_strategy, split_points)
    @settings(max_examples=25, deadline=None)
    def test_liquid_matches_reference_across_job_restart(self, words, split):
        liquid = Liquid(num_brokers=1, clock=SimClock())
        liquid.create_feed("events", partitions=1)
        runner = liquid.submit_job(
            JobConfig(name="count", inputs=["events"], task_factory=_CountTask,
                      stores=[StoreConfig("counts")]),
        )
        producer = liquid.producer()
        split = min(split, len(words))
        for word in words[:split]:
            producer.send("events", {"w": word}, key=word)
        liquid.process_available()
        runner.checkpoint()
        runner.crash()
        runner.recover()
        for word in words[split:]:
            producer.send("events", {"w": word}, key=word)
        liquid.process_available()
        state = {
            k: v for t in runner.tasks() for k, v in t.stores["counts"].items()
        }
        assert state == reference_counts(words)
