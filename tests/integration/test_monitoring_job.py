"""Dogfooding: Liquid monitors Liquid.

The tentpole's proof-of-life — the telemetry feeds are ordinary feeds,
so the monitoring stack is just another Liquid job.  Two scenarios:

1. A monitoring job consumes ``__telemetry.metrics`` and computes p99
   rollups over the workload job's latency histograms, publishing them
   to a regular output feed.
2. Alert records survive a chaos retention storm on the alerts feed: old
   segments are deleted out from under a late consumer, which reseats at
   the surviving head and still reads the recent alerts.
"""

from repro.common.records import TopicPartition
from repro.core.liquid import Liquid
from repro.messaging.cluster import MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.topic import LogConfig, RetentionConfig, TopicConfig
from repro.observability.slo import ALERT_FIRING, ALERT_RESOLVED, Slo, SloMonitor
from repro.observability.telemetry import (
    TELEMETRY_ALERTS_FEED,
    TELEMETRY_METRICS_FEED,
    TelemetryExporter,
)
from repro.processing.job import JobConfig, JobRunner, StoreConfig


def drain(cluster, topic):
    records = []
    for tp in cluster.partitions_of(topic):
        offset = cluster.beginning_offset(tp)
        while True:
            result = cluster.fetch(topic, tp.partition, offset, 10_000)
            if not result.records:
                break
            records.extend(result.records)
            offset = result.next_offset
    return records


class _EnrichTask:
    def process(self, record, collector):
        collector.send("derived", {"v": record.value}, key=record.key)


class _P99Rollup:
    """The monitoring job: track worst p99 per histogram metric."""

    def init(self, context):
        self.worst = context.store("worst_p99")

    def process(self, record, collector):
        payload = record.value
        if payload.get("kind") != "histogram":
            return
        metric, p99 = payload["metric"], payload["p99"]
        previous = self.worst.get(metric)
        if previous is None or p99 > previous:
            self.worst.put(metric, p99)
            collector.send(
                "p99-rollups",
                {"metric": metric, "p99": p99, "at": payload["timestamp"]},
                key=metric,
            )


class TestDogfoodRollups:
    def test_monitoring_job_computes_p99_rollups(self):
        liquid = Liquid(num_brokers=1)
        liquid.create_feed("orders", partitions=1)
        workload = liquid.submit_job(
            JobConfig(name="enrich", inputs=["orders"], task_factory=_EnrichTask),
            outputs=["derived"],
        )
        liquid.enable_telemetry(interval=1.0)
        monitor = liquid.submit_job(
            JobConfig(
                name="monitor",
                inputs=[TELEMETRY_METRICS_FEED],
                task_factory=_P99Rollup,
                stores=[StoreConfig("worst_p99")],
            ),
            outputs=["p99-rollups"],
        )
        producer = liquid.producer()
        for i in range(40):
            producer.send("orders", {"i": i}, key=f"k{i % 4}")
        producer.flush()
        liquid.process_available()   # workload runs, histograms move
        liquid.tick(1.5)             # exporter ships the metric window
        monitor.run_until_idle()     # the monitor is just another job

        assert workload.records_processed == 40
        rollups = {r.key: r.value for r in drain(liquid.cluster, "p99-rollups")}
        # The workload job's latency histogram made it through the loop:
        # observed in-process -> exported as a delta window -> rolled up.
        age_metric = "processing.job.enrich.record_age"
        assert age_metric in rollups
        assert rollups[age_metric]["p99"] >= 0.0
        # Rollups only describe histograms; counters were filtered out.
        assert all(r["p99"] >= 0.0 for r in rollups.values())

    def test_rollups_follow_fresh_windows(self):
        """A second burst re-exports a fresh delta window; a later, larger
        p99 updates the rollup (delta windows, not lifetime aggregates)."""
        liquid = Liquid(num_brokers=1)
        liquid.create_feed("orders", partitions=1)
        liquid.submit_job(
            JobConfig(name="enrich", inputs=["orders"], task_factory=_EnrichTask),
            outputs=["derived"],
        )
        liquid.enable_telemetry(interval=1.0)
        monitor = liquid.submit_job(
            JobConfig(
                name="monitor",
                inputs=[TELEMETRY_METRICS_FEED],
                task_factory=_P99Rollup,
                stores=[StoreConfig("worst_p99")],
            ),
            outputs=["p99-rollups"],
        )
        producer = liquid.producer()
        producer.send("orders", {"i": 0}, key="k")
        producer.flush()
        liquid.process_available()
        liquid.tick(1.5)
        # Age the second burst: records linger before processing, so the
        # record_age window of burst two has a strictly larger p99.
        for i in range(10):
            producer.send("orders", {"i": i}, key="k")
        producer.flush()
        liquid.tick(30.0)
        liquid.process_available()
        liquid.tick(1.5)
        monitor.run_until_idle()
        age_records = [
            r.value
            for r in drain(liquid.cluster, "p99-rollups")
            if r.key == "processing.job.enrich.record_age"
        ]
        assert len(age_records) >= 2
        assert age_records[-1]["p99"] > age_records[0]["p99"]


class TestAlertsSurviveRetentionStorm:
    def test_late_consumer_reseats_and_reads_recent_alerts(self):
        cluster = MessagingCluster(num_brokers=1, maintenance_interval=1.0)
        # Chaos config: tiny segments, aggressive retention on the alerts
        # feed.  The exporter adopts the pre-created topic as-is.
        cluster.create_topic(
            TopicConfig(
                name=TELEMETRY_ALERTS_FEED,
                num_partitions=1,
                replication_factor=1,
                retention=RetentionConfig(retention_seconds=5.0),
                log=LogConfig(segment_max_messages=2),
            )
        )
        monitor = SloMonitor(cluster.clock)
        monitor.register(
            Slo(
                name="latency",
                signal="p99_seconds",
                objective=1.0,
                short_window=2.0,
                long_window=4.0,
                error_budget=0.5,
                burn_threshold=1.6,
                clear_threshold=0.8,
            )
        )
        exporter = TelemetryExporter(cluster, interval=1.0, slo_monitor=monitor)
        exporter.start()
        # Ten incident/recovery cycles, one observation per second: every
        # cycle emits one FIRING and one RESOLVED alert record.
        for _ in range(10):
            for _ in range(6):
                monitor.observe("latency", 9.0)
                cluster.tick(1.0)
            for _ in range(8):
                monitor.observe("latency", 0.1)
                cluster.tick(1.0)
        assert monitor.alerts_emitted == 20
        tp = TopicPartition(TELEMETRY_ALERTS_FEED, 0)
        assert cluster.end_offset(tp) == 20
        # The storm already outran retention while alerts kept flowing.
        head = cluster.beginning_offset(tp)
        assert head > 0

        # A late consumer seats at "earliest": retention deleted its
        # nominal start, so it reseats at the surviving head and reads
        # the recent alerts without error.
        consumer = Consumer(cluster, auto_offset_reset="earliest")
        consumer.assign([tp])
        survivors = []
        while True:
            batch = consumer.poll()
            if not batch:
                break
            survivors.extend(batch)
        assert survivors, "the storm must not wipe out the live tail"
        assert len(survivors) < 20  # ...but it did delete old alerts
        assert survivors[0].offset == head
        states = [r.value["state"] for r in survivors]
        assert set(states) <= {ALERT_FIRING, ALERT_RESOLVED}
        # The most recent alert (the final recovery) survived the storm.
        assert survivors[-1].value["state"] == ALERT_RESOLVED
        assert survivors[-1].value["slo"] == "latency"
