"""Integration: the offset manager's own durability (§3.1).

The paper calls the offset manager "highly-available"; in this
implementation (as in Kafka) that comes from storing commits in an internal
*compacted* topic.  These tests kill the in-memory manager state and rebuild
it from that topic, including after compaction and broker failure.
"""

from repro.common.clock import SimClock
from repro.common.records import TopicPartition
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.consumer_group import GroupCoordinator
from repro.messaging.offset_manager import OFFSETS_TOPIC
from repro.messaging.producer import Producer


def make_cluster() -> MessagingCluster:
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("t", num_partitions=2, replication_factor=3)
    producer = Producer(cluster, acks=ACKS_ALL)
    for i in range(40):
        producer.send("t", {"i": i}, key=f"k{i}")
    return cluster


class TestRecovery:
    def test_latest_commits_recovered_from_internal_topic(self):
        cluster = make_cluster()
        tp0 = TopicPartition("t", 0)
        tp1 = TopicPartition("t", 1)
        cluster.offset_manager.commit("g", tp0, 5, {"software_version": "v1"})
        cluster.offset_manager.commit("g", tp0, 9, {"software_version": "v2"})
        cluster.offset_manager.commit("g", tp1, 3)
        # Simulate an offset-manager restart: wipe and replay.
        recovered = cluster.recover_offset_manager()
        assert recovered == 3
        assert cluster.offset_manager.fetch("g", tp0).offset == 9
        assert cluster.offset_manager.fetch("g", tp0).metadata == {
            "software_version": "v2"
        }
        assert cluster.offset_manager.fetch("g", tp1).offset == 3

    def test_recovery_after_compaction_keeps_only_latest(self):
        cluster = make_cluster()
        tp0 = TopicPartition("t", 0)
        commits = 2500  # rolls the internal topic's 1000-record segments
        for offset in range(commits):
            cluster.offset_manager.commit("busy-group", tp0, offset)
        cluster.tick(0.0)
        for broker in cluster.brokers():
            broker.run_compaction()
        recovered = cluster.recover_offset_manager()
        assert cluster.offset_manager.fetch("busy-group", tp0).offset == commits - 1
        # Compaction emptied the sealed segments (all superseded by the
        # latest commit); only the active segment's tail replays.
        assert recovered < commits / 2

    def test_consumers_resume_correctly_after_manager_recovery(self):
        cluster = make_cluster()
        gc = GroupCoordinator(cluster)
        consumer = Consumer(cluster, group="readers", group_coordinator=gc)
        consumer.subscribe(["t"])
        first = consumer.poll(10)
        consumer.commit()
        consumer.close()
        consumed = {(r.partition, r.offset) for r in first}

        cluster.recover_offset_manager()

        fresh = Consumer(cluster, group="readers", group_coordinator=gc)
        fresh.subscribe(["t"])
        rest = []
        for _ in range(20):
            batch = fresh.poll(20)
            if not batch:
                break
            rest.extend(batch)
        rest_coords = {(r.partition, r.offset) for r in rest}
        assert consumed.isdisjoint(rest_coords)
        assert len(consumed | rest_coords) == 40

    def test_offsets_topic_survives_broker_failure(self):
        cluster = make_cluster()
        tp0 = TopicPartition("t", 0)
        cluster.offset_manager.commit("g", tp0, 7)
        cluster.run_until_replicated()
        offsets_leader = cluster.leader_of(OFFSETS_TOPIC, 0)
        cluster.kill_broker(offsets_leader)
        recovered = cluster.recover_offset_manager()
        assert recovered >= 1
        assert cluster.offset_manager.fetch("g", tp0).offset == 7
