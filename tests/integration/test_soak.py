"""Soak test: randomized full-stack scenarios with global invariants.

A seeded random driver interleaves everything the stack supports —
produces, job polls, broker kills/restarts, job crashes/recoveries,
maintenance ticks — and then asserts the invariants that must hold no
matter what happened:

* every acked input record is processed by the job exactly once
  (checkpoints + changelog recovery give effective exactly-once for the
  keyed counting state);
* derived state equals a reference computation over the acked inputs;
* all replicas converge to identical logs;
* the cluster returns to a healthy state.
"""

import random

import pytest

from repro.common.clock import SimClock
from repro.common.errors import MessagingError, NotEnoughReplicasError
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobRunner, StoreConfig
from repro.tools.admin import AdminClient


class CountTask:
    def init(self, context):
        self.counts = context.store("counts")

    def process(self, record, collector):
        key = record.key
        self.counts.put(key, self.counts.get_or_default(key, 0) + 1)


def run_scenario(seed: int, steps: int = 120) -> None:
    rng = random.Random(seed)
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=3, clock=clock)
    cluster.create_topic(
        "events", num_partitions=2, replication_factor=3, min_insync_replicas=2
    )
    producer = Producer(cluster, acks=ACKS_ALL, max_retries=3, idempotent=True)
    runner = JobRunner(
        JobConfig(
            name="soak-count",
            inputs=["events"],
            task_factory=CountTask,
            stores=[StoreConfig("counts", changelog=True)],
            checkpoint_interval=10,
            changelog_replication=3,
        ),
        cluster,
    )
    acked: list[str] = []
    counter = 0

    for _ in range(steps):
        action = rng.choices(
            ["produce", "poll_job", "kill", "restart", "crash_job", "tick"],
            weights=[40, 25, 6, 10, 4, 15],
        )[0]
        if action == "produce":
            for _n in range(rng.randint(1, 8)):
                key = f"k{counter % 5}"
                counter += 1
                try:
                    producer.send("events", {"n": counter}, key=key)
                    acked.append(key)
                except (MessagingError, NotEnoughReplicasError):
                    pass  # unavailable: no ack, no guarantee
        elif action == "poll_job":
            if runner.running:
                runner.poll_once()
        elif action == "kill":
            live = sorted(cluster.controller.live_brokers())
            if len(live) > 2:  # keep min_insync satisfiable
                cluster.kill_broker(rng.choice(live))
        elif action == "restart":
            for broker_id in range(3):
                if broker_id not in cluster.controller.live_brokers():
                    cluster.restart_broker(broker_id)
                    break
        elif action == "crash_job":
            if runner.running:
                runner.checkpoint()
                runner.crash()
                runner.recover()
        else:
            cluster.tick(rng.choice([0.0, 0.1, 1.0]))

    # Settle: restore all brokers, drain the job.
    for broker_id in range(3):
        if broker_id not in cluster.controller.live_brokers():
            cluster.restart_broker(broker_id)
    cluster.run_until_replicated()
    if not runner.running:
        runner.recover()
    runner.run_until_idle()
    runner.checkpoint()

    # Invariant 1: the job's counts equal a reference count of acked keys.
    expected: dict[str, int] = {}
    for key in acked:
        expected[key] = expected.get(key, 0) + 1
    actual: dict[str, int] = {}
    for instance in runner.tasks():
        for key, value in instance.stores["counts"].items():
            actual[key] = actual.get(key, 0) + value
    assert actual == expected, f"seed={seed}: state diverged"

    # Invariant 2: replicas converge (followers hold leader prefixes).
    for tp in cluster.partitions_of("events"):
        leader_id = cluster.leader_of(tp.topic, tp.partition)
        leader_log = [
            (m.offset, m.key)
            for m in cluster.broker(leader_id).replica(tp).log.all_messages()
        ]
        for broker in cluster.brokers():
            if broker.hosts(tp) and broker.broker_id != leader_id:
                follower_log = [
                    (m.offset, m.key)
                    for m in broker.replica(tp).log.all_messages()
                ]
                assert follower_log == leader_log[: len(follower_log)], (
                    f"seed={seed}: divergent replica on broker "
                    f"{broker.broker_id}"
                )

    # Invariant 3: the cluster reports healthy after settling.
    report = AdminClient(cluster).health_check(max_group_lag=10**9)
    assert report.healthy, f"seed={seed}: {report}"


@pytest.mark.parametrize("seed", [1, 7, 42, 1234, 99991])
def test_randomized_soak(seed):
    run_scenario(seed)


def test_long_soak_single_seed():
    run_scenario(seed=2026, steps=400)
