"""Integration: queryable state across failover, chaos, and standby counts.

Three seeded scenarios probe the serving subsystem's acceptance bar:

* crash → recover promotes a standby per task and the router keeps
  answering exactly what the stores hold;
* chaos armed on the promotion/catch-up failpoints degrades recovery to
  the cold path without losing correctness;
* a job's drained output is byte-identical (offsets, keys, values,
  timestamps, final clock) with 0 and 2 standby replicas — keeping warm
  copies must never perturb the processing timeline.
"""

import random

import pytest

from repro.chaos.failpoints import raising, registry
from repro.common.clock import SimClock
from repro.common.errors import MessagingError
from repro.common.partitioning import partition_for_key
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobRunner, StoreConfig
from repro.serving import StateQueryRouter

SEEDS = [101, 202, 303]
KEYS = [f"user-{i}" for i in range(12)]


@pytest.fixture(autouse=True)
def clean_failpoints():
    registry().disarm_all()
    yield
    registry().disarm_all()


class CountingEmitTask:
    """Per-key event counter that also emits each new count downstream."""

    def init(self, context):
        self.store = context.store("counts")

    def process(self, record, collector):
        count = (self.store.get(record.key) or 0) + 1
        self.store.put(record.key, count)
        collector.send("out", count, key=record.key)


def build(seed, standbys, name="served"):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=3, clock=clock)
    cluster.create_topic("in", num_partitions=3, replication_factor=3)
    cluster.create_topic("out", num_partitions=3, replication_factor=3)
    producer = Producer(cluster)
    runner = JobRunner(
        JobConfig(
            name=name,
            inputs=["in"],
            task_factory=CountingEmitTask,
            stores=[StoreConfig("counts")],
            changelog_replication=3,
            num_standby_replicas=standbys,
        ),
        cluster,
    )
    return clock, cluster, producer, runner


def workload(seed, phases=4, per_phase=40):
    """Deterministic keyed phases; the model is the per-key total count."""
    rng = random.Random(seed)
    return [
        [rng.choice(KEYS) for _ in range(per_phase)] for _ in range(phases)
    ]


def assert_router_matches_stores(runner):
    """Routed answers must be byte-identical to direct raw-store reads."""
    router = StateQueryRouter(runner)
    for key in KEYS:
        task_id = partition_for_key(key, runner.num_tasks)
        direct = runner.task(task_id).stores["counts"].get(key)
        assert router.get("counts", key).value == direct
    merged = dict(router.range("counts").value)
    direct_all = {
        k: v
        for instance in runner.tasks()
        for k, v in instance.stores["counts"].items()
    }
    assert merged == direct_all
    assert router.approximate_count("counts").value == len(direct_all)


def drain(cluster, topic="out", partitions=3):
    """Every output record as comparable (partition, offset, key, value, ts)."""
    records = []
    for partition in range(partitions):
        offset = 0
        while True:
            result = cluster.fetch(topic, partition, offset, 500)
            if not result.records:
                break
            for record in result.records:
                records.append(
                    (partition, record.offset, record.key, record.value,
                     record.timestamp)
                )
            offset = result.next_offset
    return records


class TestFailoverServing:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_promotion_failover_keeps_queries_exact(self, seed):
        _clock, cluster, producer, runner = build(seed, standbys=2)
        phases = workload(seed)
        model: dict = {}
        for phase in phases[:2]:
            for key in phase:
                producer.send("in", {"e": 1}, key=key)
                model[key] = model.get(key, 0) + 1
            runner.run_until_idle()
            runner.checkpoint()
        runner.crash()
        report = runner.recover()
        assert report.standby_promotions() == runner.num_tasks
        assert_router_matches_stores(runner)
        # Keep processing after the failover; totals stay exact.
        for phase in phases[2:]:
            for key in phase:
                producer.send("in", {"e": 1}, key=key)
                model[key] = model.get(key, 0) + 1
            runner.run_until_idle()
            runner.checkpoint()
        router = StateQueryRouter(runner)
        for key, total in model.items():
            assert router.get("counts", key).value == total
            # The replacement standbys re-warmed at the checkpoints above,
            # so stale-tolerant reads are exact again too.
            stale = router.get("counts", key, allow_stale=True)
            assert stale.served_by == "standby"
            assert stale.value == total
        assert_router_matches_stores(runner)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_on_promotion_degrades_to_cold_restore(self, seed):
        _clock, cluster, producer, runner = build(seed, standbys=2)
        model: dict = {}
        for phase in workload(seed, phases=2):
            for key in phase:
                producer.send("in", {"e": 1}, key=key)
                model[key] = model.get(key, 0) + 1
            runner.run_until_idle()
            runner.checkpoint()
        runner.crash()
        rng = random.Random(seed)
        registry().arm(
            "serving.promote",
            raising(lambda: MessagingError("chaos: promote")),
            probability=0.5,
            rng=rng,
        )
        registry().arm(
            "serving.catch_up",
            raising(lambda: MessagingError("chaos: catch up")),
            probability=0.5,
            rng=rng,
        )
        report = runner.recover()
        registry().disarm_all()
        # However many promotions the chaos let through, state is exact.
        assert report.stores_restored >= runner.num_tasks
        router = StateQueryRouter(runner)
        for key, total in model.items():
            assert router.get("counts", key).value == total
        assert_router_matches_stores(runner)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_broker_churn_between_phases(self, seed):
        """Standby catch-up must shrug off a changelog leader going away."""
        _clock, cluster, producer, runner = build(seed, standbys=1)
        model: dict = {}
        for i, phase in enumerate(workload(seed, phases=3)):
            for key in phase:
                producer.send("in", {"e": 1}, key=key)
                model[key] = model.get(key, 0) + 1
            runner.run_until_idle()
            cluster.kill_broker(i % 3)
            runner.checkpoint()  # standby catch-up failures are swallowed
            cluster.restart_broker(i % 3)
            cluster.run_until_replicated()
        router = StateQueryRouter(runner)
        for key, total in model.items():
            assert router.get("counts", key).value == total
        assert_router_matches_stores(runner)


class TestStandbysAreFree:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_output_byte_identical_with_and_without_standbys(self, seed):
        """num_standby_replicas must not change one emitted byte or tick."""
        outputs = {}
        clocks = {}
        for standbys in (0, 2):
            clock, cluster, producer, runner = build(seed, standbys=standbys)
            for phase in workload(seed):
                for key in phase:
                    producer.send("in", {"e": 1}, key=key)
                runner.run_until_idle()
                runner.checkpoint()
            outputs[standbys] = drain(cluster)
            clocks[standbys] = clock.now()
        assert outputs[0] == outputs[2]
        assert clocks[0] == clocks[2]
        assert len(outputs[0]) == 4 * 40  # every input produced one output
