"""Integration: every shipped example must run green end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_are_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 4  # quickstart + >=3 domain scenarios


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{example} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert "OK" in result.stdout
