"""Integration: availability under broker failures (§4.3, E5's mechanics)."""

import pytest

from repro.cluster.failures import FailureInjector
from repro.common.clock import SimClock
from repro.common.errors import MessagingError
from repro.common.records import TopicPartition
from repro.messaging.cluster import ACKS_ALL, ACKS_LEADER, MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.producer import Producer

TP = TopicPartition("t", 0)


def make_cluster(brokers=3, min_insync=2) -> MessagingCluster:
    cluster = MessagingCluster(num_brokers=brokers, clock=SimClock())
    cluster.create_topic(
        "t", num_partitions=1, replication_factor=brokers,
        min_insync_replicas=min_insync,
    )
    return cluster


class TestLeaderFailover:
    def test_acked_data_survives_leader_crash(self):
        cluster = make_cluster()
        producer = Producer(cluster, acks=ACKS_ALL)
        for i in range(50):
            producer.send("t", {"i": i})
        cluster.kill_broker(cluster.leader_of("t", 0))
        records, _ = cluster.fetch("t", 0, 0, max_messages=1000)
        assert [r.value["i"] for r in records] == list(range(50))

    def test_writes_continue_through_n_minus_1_failures(self):
        cluster = make_cluster(brokers=3, min_insync=1)
        producer = Producer(cluster, acks=ACKS_ALL, max_retries=3)
        produced = 0
        for round_no in range(3):
            for i in range(10):
                producer.send("t", {"round": round_no, "i": i})
                produced += 1
            if round_no < 2:
                cluster.kill_broker(cluster.leader_of("t", 0))
        records, _ = cluster.fetch("t", 0, 0, max_messages=1000)
        assert len(records) == produced  # nothing acked was lost

    def test_all_brokers_down_is_unavailable(self):
        cluster = make_cluster()
        producer = Producer(cluster, max_retries=1)
        for broker_id in range(3):
            cluster.kill_broker(broker_id)
        with pytest.raises(MessagingError):
            producer.send("t", "v")

    def test_epoch_fences_consumers_from_stale_reads(self):
        cluster = make_cluster()
        producer = Producer(cluster, acks=ACKS_ALL)
        for i in range(10):
            producer.send("t", i)
        old_leader = cluster.leader_of("t", 0)
        old_epoch = cluster.controller.epoch_for(TP)
        cluster.kill_broker(old_leader)
        assert cluster.controller.epoch_for(TP) > old_epoch
        # The old leader's replica is offline; fetches go to the new leader.
        new_leader = cluster.leader_of("t", 0)
        assert new_leader != old_leader
        records, _ = cluster.fetch("t", 0, 0)
        assert len(records) == 10


class TestRecoveryAndCatchup:
    def test_restarted_broker_catches_up_and_rejoins_isr(self):
        cluster = make_cluster()
        producer = Producer(cluster, acks=ACKS_LEADER)
        victim = [b for b in range(3) if b != cluster.leader_of("t", 0)][0]
        cluster.kill_broker(victim)
        for i in range(100):
            producer.send("t", i)
        cluster.tick(0.1)
        assert victim not in cluster.controller.isr_for(TP)
        cluster.restart_broker(victim)
        cluster.run_until_replicated()
        assert victim in cluster.controller.isr_for(TP)
        replica = cluster.broker(victim).replica(TP)
        leader = cluster.broker(cluster.leader_of("t", 0)).replica(TP)
        assert replica.log_end_offset == leader.log_end_offset

    def test_full_cluster_restart_preserves_log(self):
        cluster = make_cluster()
        producer = Producer(cluster, acks=ACKS_ALL)
        for i in range(20):
            producer.send("t", i)
        for broker_id in range(3):
            cluster.kill_broker(broker_id)
        for broker_id in range(3):
            cluster.restart_broker(broker_id)
        cluster.run_until_replicated()
        records, _ = cluster.fetch("t", 0, 0, max_messages=100)
        assert [r.value for r in records] == list(range(20))

    def test_divergent_follower_truncates_and_converges(self):
        cluster = make_cluster(min_insync=1)
        producer = Producer(cluster, acks=ACKS_LEADER)
        for i in range(10):
            producer.send("t", i)
        cluster.tick(0.1)
        # Kill the leader; its last writes may not be on the new leader.
        old_leader = cluster.leader_of("t", 0)
        for i in range(5):  # acks=leader writes that never replicate
            cluster.broker(old_leader).replica(TP).append_batch(
                [(None, f"lost-{i}", 0.0, {})]
            )
        cluster.kill_broker(old_leader)
        for i in range(3):
            producer.send("t", f"new-{i}")
        cluster.restart_broker(old_leader)
        cluster.run_until_replicated()
        old_log = [
            m.value for m in cluster.broker(old_leader).replica(TP).log.all_messages()
        ]
        new_leader = cluster.leader_of("t", 0)
        new_log = [
            m.value for m in cluster.broker(new_leader).replica(TP).log.all_messages()
        ]
        assert old_log == new_log
        assert not any(
            isinstance(v, str) and v.startswith("lost-") for v in old_log
        )


class TestScriptedFaults:
    def test_injector_driven_kill_and_recovery(self):
        clock = SimClock()
        cluster = MessagingCluster(num_brokers=3, clock=clock)
        cluster.create_topic("t", num_partitions=1, replication_factor=3)
        injector = FailureInjector(clock)
        injector.kill_leader_at(5.0, cluster, "t", 0)
        injector.restart_broker_at(10.0, cluster, 0)

        producer = Producer(cluster, acks=ACKS_ALL, max_retries=3)
        sent = 0
        for step in range(20):
            cluster.tick(1.0)
            producer.send("t", {"step": step})
            sent += 1
        assert len(injector.events()) >= 1
        cluster.run_until_replicated()
        records, _ = cluster.fetch("t", 0, 0, max_messages=1000)
        assert len(records) == sent


class TestConsumerContinuity:
    def test_consumer_rides_through_failover(self):
        cluster = make_cluster()
        producer = Producer(cluster, acks=ACKS_ALL)
        consumer = Consumer(cluster)
        consumer.assign([TP])
        for i in range(30):
            producer.send("t", i)
        first = consumer.poll(10)
        cluster.kill_broker(cluster.leader_of("t", 0))
        rest = []
        for _ in range(10):
            rest.extend(consumer.poll(10))
        values = [r.value for r in first + rest]
        assert values == list(range(30))
