"""Integration: full produce → process → consume flows across the stack."""

from repro.common.records import TopicPartition
from repro.core.etl import CleaningTask, GroupCountTask, MapTask
from repro.core.liquid import Liquid
from repro.processing.job import JobConfig, StoreConfig


def drain(liquid: Liquid, topic: str, group: str):
    consumer = liquid.consumer(group=group)
    consumer.subscribe([topic])
    out = []
    while True:
        batch = consumer.poll(500)
        if not batch:
            break
        out.extend(batch)
    return out


class TestThreeStagePipeline:
    def test_clean_then_count_then_consume(self):
        liquid = Liquid(num_brokers=3)
        liquid.create_feed("raw", partitions=2)
        liquid.submit_job(
            JobConfig(
                name="clean",
                inputs=["raw"],
                task_factory=lambda: CleaningTask(
                    "clean-out", {"city": str.title}
                ),
            ),
            outputs=["clean-out"],
        )
        liquid.submit_job(
            JobConfig(
                name="count",
                inputs=["clean-out"],
                task_factory=lambda: GroupCountTask(
                    "city-counts", lambda v: v["city"]
                ),
                stores=[StoreConfig("counts")],
            ),
            outputs=["city-counts"],
        )
        producer = liquid.producer()
        cities = ["london", "paris", "london", "berlin"] * 25
        for i, city in enumerate(cities):
            producer.send("raw", {"city": city, "i": i}, key=city)
        processed = liquid.process_available()
        assert processed == 200  # 100 per stage
        liquid.tick(0.1)

        counts = drain(liquid, "city-counts", "dashboard")
        final = {}
        for record in counts:
            final[record.value["group"]] = record.value["count"]
        assert final == {"London": 50, "Paris": 25, "Berlin": 25}

    def test_multiple_consumer_groups_see_full_stream(self):
        """§3.1: pub/sub across groups, queue within a group."""
        liquid = Liquid(num_brokers=3)
        liquid.create_feed("raw", partitions=4)
        producer = liquid.producer()
        for i in range(100):
            producer.send("raw", i, key=f"k{i}")
        liquid.tick(0.1)

        # Group A: two consumers split the stream.
        a1 = liquid.consumer(group="a")
        a2 = liquid.consumer(group="a")
        a1.subscribe(["raw"])
        a2.subscribe(["raw"])
        got_a1, got_a2 = [], []
        for _ in range(10):
            got_a1.extend(a1.poll(50))
            got_a2.extend(a2.poll(50))
        assert len(got_a1) + len(got_a2) == 100
        assert got_a1 and got_a2  # both actually shared the work
        overlap = {(r.partition, r.offset) for r in got_a1} & {
            (r.partition, r.offset) for r in got_a2
        }
        assert overlap == set()

        # Group B: independent full copy.
        got_b = drain(liquid, "raw", "b")
        assert len(got_b) == 100

    def test_derived_feed_of_derived_feed_lineage(self):
        liquid = Liquid(num_brokers=1)
        liquid.create_feed("raw")
        liquid.submit_job(
            JobConfig(name="j1", inputs=["raw"],
                      task_factory=lambda: MapTask("mid")),
            outputs=["mid"],
        )
        liquid.submit_job(
            JobConfig(name="j2", inputs=["mid"],
                      task_factory=lambda: MapTask("final")),
            outputs=["final"],
        )
        assert liquid.feeds.ancestors("final") == ["raw", "mid"]
        chain = liquid.feeds.provenance("final")
        assert [link.produced_by for link in chain] == ["j1", "j2"]


class TestRewindReprocessing:
    def test_new_job_version_reprocesses_from_scratch(self):
        """The §5.1 data-cleaning flow: v2 re-reads everything v1 saw."""
        liquid = Liquid(num_brokers=1)
        liquid.create_feed("raw", partitions=1)
        producer = liquid.producer()
        for i in range(50):
            producer.send("raw", {"n": i})

        v1 = liquid.submit_job(
            JobConfig(name="algo-v1", inputs=["raw"], version="v1",
                      task_factory=lambda: MapTask("out-v1")),
            outputs=["out-v1"],
        )
        liquid.process_available()
        assert v1.records_processed == 50

        # Algorithm changes: submit v2 as a NEW job; it starts from offset 0.
        v2 = liquid.submit_job(
            JobConfig(name="algo-v2", inputs=["raw"], version="v2",
                      task_factory=lambda: MapTask(
                          "out-v2", fn=lambda v: {"n": v["n"] * 2}
                      )),
            outputs=["out-v2"],
        )
        liquid.process_available()
        assert v2.records_processed == 50
        liquid.tick(0.1)
        out = drain(liquid, "out-v2", "check")
        assert sorted(r.value["n"] for r in out) == [n * 2 for n in range(50)]

    def test_consumer_rewinds_by_timestamp(self):
        liquid = Liquid(num_brokers=1)
        liquid.create_feed("raw", partitions=1)
        producer = liquid.producer()
        for i in range(20):
            producer.send("raw", i, timestamp=float(i))
        liquid.tick(0.0)
        tp = TopicPartition("raw", 0)
        consumer = liquid.consumer()
        consumer.assign([tp])
        while consumer.poll(50):
            pass
        # Back-end system needs to replay the last 5 seconds.
        consumer.seek_to_timestamp(tp, 15.0)
        replayed = consumer.poll(50)
        assert [r.value for r in replayed] == [15, 16, 17, 18, 19]
