"""Seeded chaos soak: client invariants under a deterministic fault storm.

Each soak drives an idempotent acks=all producer and a committing consumer
group against a 5-broker cluster while a :class:`ChaosSchedule` crashes
brokers, churns leaders, stalls replication, injects transient client
errors, and races retention against the consumer.  After the horizon the
cluster is healed and :class:`ChaosReport` audits the invariants:

* no acked record lost (retention-reclaimed offsets exempt),
* no committed offset regression,
* idempotent dedup holds.

Every random draw is derived from the seed, so one seed reproduces one run
byte-for-byte — including the injected-event trace.
"""

import pytest

from repro.chaos import ChaosConfig, ChaosReport, ChaosSchedule
from repro.chaos.failpoints import registry
from repro.common.clock import SimClock
from repro.common.errors import MessagingError
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.consumer_group import GroupCoordinator
from repro.messaging.producer import Producer
from repro.messaging.topic import TopicConfig
from repro.storage.retention import RetentionConfig

SEEDS = [1011, 2022, 3033]
HORIZON = 25.0


@pytest.fixture(autouse=True)
def clean_registry():
    registry().disarm_all()
    yield
    registry().disarm_all()


def run_soak(seed, compression="none"):
    """One full soak; returns (cluster, schedule, report)."""
    cluster = MessagingCluster(num_brokers=5, clock=SimClock())
    cluster.create_topic(
        TopicConfig(
            name="events",
            num_partitions=4,
            replication_factor=3,
            min_insync_replicas=2,
            retention=RetentionConfig(retention_seconds=15.0),
        )
    )
    schedule = ChaosSchedule(
        cluster, seed=seed, topics=["events"],
        config=ChaosConfig(horizon=HORIZON),
    )
    schedule.install()
    report = ChaosReport()
    # retry_jitter_seed pinned to the soak seed: producer ids are allocated
    # process-globally, so the default (id-derived) jitter stream would
    # differ between two runs of the same seed and fork the traces.
    producer = Producer(
        cluster,
        acks=ACKS_ALL,
        idempotent=True,
        max_retries=2,
        retry_jitter_seed=seed,
        compression=compression,
    )
    coordinator = GroupCoordinator(cluster)
    consumer = Consumer(cluster, group="soak", group_coordinator=coordinator)
    consumer.subscribe(["events"])

    next_value = 0
    while cluster.clock.now() < HORIZON:
        for _ in range(3):
            value = f"v{next_value}"
            key = f"k{next_value}"
            next_value += 1
            try:
                ack = producer.send("events", value, key=key)
                if ack is not None:
                    report.note_ack(ack.partition, ack, [value])
            except MessagingError as exc:
                report.note_error("produce", exc)
        try:
            consumer.poll(50)
            consumer.commit()
            for tp in consumer.assignment():
                report.note_commit("soak", tp, consumer.position(tp))
        except MessagingError as exc:
            report.note_error("consume", exc)
        cluster.tick(0.25)

    # Heal and drain: parked/buffered batches must all make it out.
    schedule.heal()
    cluster.run_until_replicated()
    parked_values = {
        tp: [[value for (_k, value, _ts, _h) in entries] for _seq, entries in batches]
        for tp, batches in producer._failed_batches.items()
    }
    buffered_values = {
        tp: [value for (_k, value, _ts, _h) in buffer]
        for tp, buffer in producer._buffers.items()
    }
    for ack in producer.flush():
        tp = ack.partition
        if parked_values.get(tp):
            values = parked_values[tp].pop(0)
        else:
            values = buffered_values.pop(tp)
        report.note_ack(tp, ack, values)
    assert producer.pending() == 0
    cluster.run_until_replicated()
    return cluster, schedule, report


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_invariants_hold(seed):
    cluster, schedule, report = run_soak(seed)
    # The storm actually happened and the clients actually worked through it.
    assert schedule.trace()
    summary = report.summary()
    assert summary["acked_records"] >= 100
    report.assert_invariants(cluster)


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_soak_invariants_hold_compressed(seed):
    """The no-acked-record-lost audit holds with the wire format compressed:
    retried/parked batches recompress identically and dedup still works."""
    cluster, schedule, report = run_soak(seed, compression="zlib:6")
    assert schedule.trace()
    summary = report.summary()
    assert summary["acked_records"] >= 100
    report.assert_invariants(cluster)
    # The storm really ran through the compressed wire format: every batch
    # the producer flushed left as a frame.  (Single tiny records often
    # inflate under zlib, so bytes_saved may legitimately stay 0 here.)
    assert (
        cluster.metrics.histogram("messaging.producer.compression_ratio").count
        > 0
    )


def test_compression_does_not_fork_the_chaos_schedule():
    """Compression only changes byte accounting, never the fault plan or the
    set of acked records."""
    _, schedule_a, report_a = run_soak(SEEDS[0])
    _, schedule_b, report_b = run_soak(SEEDS[0], compression="zlib:1")
    assert schedule_a.plan() == schedule_b.plan()
    assert (
        report_a.summary()["acked_records"] == report_b.summary()["acked_records"]
    )


def test_same_seed_replays_byte_for_byte():
    _, schedule_a, report_a = run_soak(SEEDS[0])
    _, schedule_b, report_b = run_soak(SEEDS[0])
    assert schedule_a.plan() == schedule_b.plan()
    assert schedule_a.trace() == schedule_b.trace()
    assert report_a.summary() == report_b.summary()


def test_different_seeds_diverge():
    _, schedule_a, _ = run_soak(SEEDS[0])
    _, schedule_b, _ = run_soak(SEEDS[1])
    assert schedule_a.plan() != schedule_b.plan()
