"""Integration: application-side dedup completes the §4.3 delivery story.

"the messaging layer provides at-least-once delivery semantics ... This is
sufficient for applications that only handle keyed data with idempotent
updates, because duplicates can be detected easily by the application."

A retrying producer duplicates records into a feed; a DeduplicateTask job
restores an exactly-once derived feed — including across a job crash, since
the seen-ids store is changelogged.
"""

from repro.common.clock import SimClock
from repro.core.etl import DeduplicateTask
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobRunner, StoreConfig


def make_env():
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("raw", num_partitions=1, replication_factor=3)
    cluster.create_topic("clean", num_partitions=1, replication_factor=3)
    runner = JobRunner(
        JobConfig(
            name="dedup",
            inputs=["raw"],
            task_factory=lambda: DeduplicateTask(
                "clean", id_fn=lambda v: v["event_id"], ttl_seconds=1e9
            ),
            stores=[StoreConfig("seen")],
            changelog_replication=3,
        ),
        cluster,
    )
    return cluster, runner


def produce_with_duplicates(cluster, n, duplicate_every=5):
    """Emulates at-least-once retries: every Nth batch is re-sent."""
    producer = Producer(cluster, acks=ACKS_ALL)
    for i in range(n):
        event = {"event_id": f"evt-{i}", "n": i}
        producer.send("raw", event, key=event["event_id"])
        if i % duplicate_every == 0:
            producer.send("raw", event, key=event["event_id"])  # the retry
    return producer


def clean_values(cluster):
    cluster.tick(0.0)
    result = cluster.fetch("clean", 0, 0, max_messages=100_000)
    return [r.value["n"] for r in result.records]


class TestAppSideDedup:
    def test_duplicated_stream_becomes_exactly_once(self):
        cluster, runner = make_env()
        produce_with_duplicates(cluster, 50)
        runner.run_until_idle()
        assert clean_values(cluster) == list(range(50))

    def test_dedup_state_survives_job_crash(self):
        cluster, runner = make_env()
        produce_with_duplicates(cluster, 30)
        runner.run_until_idle()
        runner.checkpoint()
        runner.crash()
        runner.recover()
        # The SAME events arrive again (e.g. an upstream replay): the
        # restored seen-set still filters every one of them.
        produce_with_duplicates(cluster, 30)
        runner.run_until_idle()
        assert clean_values(cluster) == list(range(30))

    def test_broker_failover_does_not_break_dedup(self):
        cluster, runner = make_env()
        produce_with_duplicates(cluster, 20)
        runner.run_until_idle()
        cluster.kill_broker(cluster.leader_of("raw", 0))
        produce_with_duplicates(cluster, 20)  # replayed post-failover
        runner.run_until_idle()
        assert clean_values(cluster) == list(range(20))
