"""Integration tests for the elasticity layer.

Two claims are checked end to end:

1. **Transparency** — a scripted load spike makes the controller scale a
   job out and back, and the drained output is byte-identical to a static
   run (elasticity changes *when* records are processed, never *what* is
   emitted).

2. **Safety under churn** — an elastic job scaled while a seeded
   :class:`ChaosSchedule` crashes brokers and churns leaders still loses no
   acked input record and never regresses a checkpoint commit
   (:class:`ChaosReport` invariants, three seeds).
"""

import pytest

from repro.chaos import ChaosConfig, ChaosReport, ChaosSchedule
from repro.chaos.failpoints import registry
from repro.common.clock import SimClock
from repro.common.errors import MessagingError
from repro.elasticity import (
    SCALE_IN,
    SCALE_OUT,
    ElasticJobController,
    ScalingPolicy,
)
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.producer import Producer
from repro.messaging.topic import TopicConfig
from repro.processing.job import JobConfig, JobRunner

SEEDS = [1011, 2022, 3033]
HORIZON = 20.0
PARTITIONS = 4


@pytest.fixture(autouse=True)
def clean_registry():
    registry().disarm_all()
    yield
    registry().disarm_all()


class PassThrough:
    """Emit-preserving task: output records carry the input's bytes."""

    def process(self, record, collector):
        collector.send("out", record.value, key=record.key,
                       partition=record.partition, timestamp=record.timestamp)


def make_cluster(brokers=3):
    cluster = MessagingCluster(num_brokers=brokers, clock=SimClock())
    for topic in ("events", "out"):
        cluster.create_topic(topic, num_partitions=PARTITIONS,
                             replication_factor=3)
    return cluster


def spike(cluster, n):
    producer = Producer(cluster)
    for i in range(n):
        producer.send("events", f"v{i}", key=f"k{i}", partition=i % PARTITIONS)
    producer.flush()
    cluster.run_until_replicated()


def make_runner(cluster):
    return JobRunner(
        JobConfig(name="enrich", inputs=["events"], task_factory=PassThrough,
                  cpu_cost_per_message=0.005),
        cluster,
    )


def dump_output(cluster):
    cluster.run_until_replicated()
    out = []
    for partition in range(PARTITIONS):
        result = cluster.fetch("out", partition, 0, 100_000)
        out.append([
            (r.offset, r.key, r.value, r.timestamp) for r in result.records
        ])
    return out


class TestScaleOutAndBack:
    def test_spike_triggers_scale_out_then_scale_back(self):
        cluster = make_cluster()
        spike(cluster, 2400)
        runner = make_runner(cluster)
        controller = ElasticJobController(
            runner,
            ScalingPolicy(min_containers=1, max_containers=4,
                          scale_out_lag=100.0, scale_in_lag=10.0,
                          cooldown=1.0),
            quantum=0.25,
        )
        controller.run_until_drained()
        actions = [event.action for event in controller.events]
        assert SCALE_OUT in actions, controller.timeline()
        assert SCALE_IN in actions, controller.timeline()
        # The scale-out happened while the backlog stood, the scale-in after.
        first_out = actions.index(SCALE_OUT)
        last_in = len(actions) - 1 - actions[::-1].index(SCALE_IN)
        assert first_out < last_in
        assert runner.backlog() == 0
        assert controller.containers < 4  # shrank again once drained

    def test_elastic_output_is_byte_identical_to_static_run(self):
        def run_elastic():
            cluster = make_cluster()
            spike(cluster, 2400)
            runner = make_runner(cluster)
            controller = ElasticJobController(
                runner,
                ScalingPolicy(min_containers=1, max_containers=4,
                              scale_out_lag=100.0, scale_in_lag=10.0,
                              cooldown=1.0),
                quantum=0.25,
            )
            controller.run_until_drained()
            assert any(e.migrated_tasks for e in controller.events)
            return cluster

        def run_static_max_parallelism():
            cluster = make_cluster()
            spike(cluster, 2400)
            runner = make_runner(cluster)
            runner.auto_advance_clock = False
            budget = max(1, int(0.25 / runner.cpu_cost))
            for _ in range(10_000):
                if runner.backlog() == 0:
                    break
                # One container per task: every task gets a full budget.
                for task_id in range(runner.num_tasks):
                    runner.poll_tasks([task_id], max_messages=budget)
                runner.clock.advance(0.25)
            assert runner.backlog() == 0
            return cluster

        assert dump_output(run_elastic()) == dump_output(
            run_static_max_parallelism()
        )

    def test_elastic_run_replays_deterministically(self):
        def run():
            cluster = make_cluster()
            spike(cluster, 1200)
            runner = make_runner(cluster)
            controller = ElasticJobController(
                runner,
                ScalingPolicy(max_containers=4, scale_out_lag=50.0,
                              scale_in_lag=5.0, cooldown=0.5),
                quantum=0.25,
            )
            controller.run_until_drained()
            return controller.timeline(), dump_output(cluster)

        assert run() == run()


def run_scale_soak(seed):
    """Elastic job under a chaos storm; returns (cluster, controller, report)."""
    cluster = MessagingCluster(num_brokers=5, clock=SimClock())
    for topic in ("events", "out"):
        cluster.create_topic(
            TopicConfig(name=topic, num_partitions=PARTITIONS,
                        replication_factor=3, min_insync_replicas=2)
        )
    schedule = ChaosSchedule(
        cluster, seed=seed, topics=["events"],
        config=ChaosConfig(horizon=HORIZON),
    )
    schedule.install()
    report = ChaosReport()
    producer = Producer(cluster, acks=ACKS_ALL, idempotent=True,
                        max_retries=2, retry_jitter_seed=seed)
    runner = make_runner(cluster)
    controller = ElasticJobController(
        runner,
        ScalingPolicy(min_containers=1, max_containers=4,
                      scale_out_lag=50.0, scale_in_lag=5.0, cooldown=1.0),
        quantum=0.25,
    )
    group = runner.checkpoints.group

    next_value = 0

    def send_one():
        nonlocal next_value
        value = f"v{next_value}"
        next_value += 1
        try:
            ack = producer.send("events", value, key=value)
            if ack is not None:
                report.note_ack(ack.partition, ack, [value])
        except MessagingError as exc:
            report.note_error("produce", exc)

    # A standing backlog before the storm, so the controller has something
    # to scale for while brokers churn.
    for _ in range(1200):
        send_one()

    while cluster.clock.now() < HORIZON:
        for _ in range(4):
            send_one()
        try:
            controller.step()
        except MessagingError as exc:
            # A fetch/commit/migration hit a mid-failover broker; the
            # controller state stays consistent and the next step retries.
            report.note_error("process", exc)
            cluster.tick(0.25)
        for tp, commit in cluster.offset_manager.fetch_group(group).items():
            report.note_commit(group, tp, commit.offset)

    # Heal and drain: parked/buffered batches must all make it out.
    schedule.heal()
    cluster.run_until_replicated()
    parked_values = {
        tp: [[value for (_k, value, _ts, _h) in entries]
             for _seq, entries in batches]
        for tp, batches in producer._failed_batches.items()
    }
    buffered_values = {
        tp: [value for (_k, value, _ts, _h) in buffer]
        for tp, buffer in producer._buffers.items()
    }
    for ack in producer.flush():
        tp = ack.partition
        if parked_values.get(tp):
            values = parked_values[tp].pop(0)
        else:
            values = buffered_values.pop(tp)
        report.note_ack(tp, ack, values)
    assert producer.pending() == 0
    cluster.run_until_replicated()
    # Drain whatever the storm left behind.
    controller.run_until_drained()
    for tp, commit in cluster.offset_manager.fetch_group(group).items():
        report.note_commit(group, tp, commit.offset)
    return cluster, controller, report


class TestScaleUnderChurn:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_acked_loss_and_no_commit_regression(self, seed):
        cluster, controller, report = run_scale_soak(seed)
        assert controller.events, "the storm must actually trigger scaling"
        summary = report.summary()
        assert summary["acked_records"] >= 100
        report.assert_invariants(cluster)

    def test_scale_soak_replays_byte_for_byte(self):
        _, controller_a, report_a = run_scale_soak(SEEDS[0])
        _, controller_b, report_b = run_scale_soak(SEEDS[0])
        assert controller_a.timeline() == controller_b.timeline()
        assert report_a.summary() == report_b.summary()
