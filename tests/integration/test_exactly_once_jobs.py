"""Exactly-once vs at-least-once under crash schedules (§4.3).

The acceptance bar for the exactly-once job mode: across seeded crash
schedules, the *same* job config run ``at_least_once`` exhibits duplicate
emits (replay from the last checkpoint re-emits work the crash lost), while
``exactly_once`` exhibits zero — and the exactly-once output is
byte-identical across same-seed replays and across elastic task migrations.
"""

import json
import random

import pytest

from repro.chaos.failpoints import registry
from repro.common.clock import SimClock
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.job import (
    AT_LEAST_ONCE,
    EXACTLY_ONCE,
    JobConfig,
    JobRunner,
    StoreConfig,
)

SEEDS = [1011, 2022, 3033]
INPUTS = 240
PARTITIONS = 2


@pytest.fixture(autouse=True)
def _clean_failpoints():
    registry().disarm_all()
    yield
    registry().disarm_all()


class StatefulTagTask:
    """Tag every input with its offset and a running per-key count — both a
    duplicate detector (offset multiplicity) and a changelog workout."""

    def init(self, context):
        self.counts = context.store("counts")

    def process(self, record, collector):
        n = self.counts.get_or_default(record.key, 0) + 1
        self.counts.put(record.key, n)
        collector.send(
            "out",
            {"offset": record.offset, "key": record.key, "n": n},
            key=record.key,
            partition=record.partition,
        )


def build(guarantee):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=3, clock=clock)
    cluster.create_topic("in", num_partitions=PARTITIONS, replication_factor=3)
    cluster.create_topic("out", num_partitions=PARTITIONS, replication_factor=3)
    producer = Producer(cluster)
    for i in range(INPUTS):
        producer.send("in", {"i": i}, key=f"k{i % 7}", partition=i % PARTITIONS)
    producer.flush()
    cluster.run_until_replicated()
    runner = JobRunner(
        JobConfig(
            name="soak",
            inputs=["in"],
            task_factory=StatefulTagTask,
            stores=(StoreConfig("counts"),),
            checkpoint_interval=10,
            changelog_replication=3,
            processing_guarantee=guarantee,
        ),
        cluster,
    )
    return cluster, runner


def run_soak(seed, guarantee, migrate=False):
    """Drive the job through a seeded schedule of partial polls, container
    crashes, and (optionally) task migrations until the input drains."""
    cluster, runner = build(guarantee)
    rng = random.Random(seed)
    for _step in range(200):
        runner.poll_once(max_messages=rng.randint(2, 9))
        roll = rng.random()
        # Crash only when some task holds uncheckpointed work, so every
        # crash is a *meaningful* one (at-least-once must replay something).
        # The predicate evolves identically under both guarantees — the
        # realized schedule is the same either way.
        pending = any(
            task.records_since_checkpoint > 0 for task in runner.tasks()
        )
        if roll < 0.35 and pending:
            runner.crash()
            runner.recover()
        elif migrate and roll < 0.55:
            runner.migrate_task(rng.randrange(runner.num_tasks))
        if runner.backlog() == 0:
            break
    runner.run_until_idle()
    isolation = (
        "read_committed" if guarantee == EXACTLY_ONCE else "read_uncommitted"
    )
    outputs = []
    for partition in range(PARTITIONS):
        fetched = cluster.fetch(
            "out", partition, 0, max_messages=100_000, isolation=isolation
        )
        outputs.append(
            [
                (r.key, r.value, r.timestamp, sorted(r.headers.items()))
                for r in fetched.records
            ]
        )
    return outputs


def offsets_seen(outputs):
    return [
        (partition, record[1]["offset"])
        for partition, records in enumerate(outputs)
        for record in records
    ]


class TestChaosSoak:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_at_least_once_duplicates_where_exactly_once_has_none(self, seed):
        at_least_once = offsets_seen(run_soak(seed, AT_LEAST_ONCE))
        exactly_once = offsets_seen(run_soak(seed, EXACTLY_ONCE))
        expected = {
            (i % PARTITIONS, i // PARTITIONS) for i in range(INPUTS)
        }
        # Both guarantees process everything...
        assert set(at_least_once) == expected
        assert set(exactly_once) == expected
        # ...but under this crash schedule at-least-once re-emitted replayed
        # work, while exactly-once emitted every input exactly once.
        assert len(at_least_once) > INPUTS, (
            f"seed {seed}: crash schedule produced no replays; "
            "the contrast case is vacuous"
        )
        assert len(exactly_once) == INPUTS

    @pytest.mark.parametrize("seed", SEEDS)
    def test_exactly_once_output_byte_identical_across_replays(self, seed):
        first = run_soak(seed, EXACTLY_ONCE)
        second = run_soak(seed, EXACTLY_ONCE)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_exactly_once_survives_elastic_migrations(self, seed):
        """Migrations commit-or-abort at the boundary and fence the old
        incarnation: same outputs, zero duplicates, content identical to a
        migration-free run (timestamps aside — migration costs time)."""
        migrated = run_soak(seed, EXACTLY_ONCE, migrate=True)
        plain = run_soak(seed, EXACTLY_ONCE)
        assert offsets_seen(migrated) == offsets_seen(plain)
        strip = lambda outputs: [
            [(key, value) for key, value, _ts, _hdr in records]
            for records in outputs
        ]
        assert strip(migrated) == strip(plain)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_exactly_once_migrated_run_replays_byte_identically(self, seed):
        first = run_soak(seed, EXACTLY_ONCE, migrate=True)
        second = run_soak(seed, EXACTLY_ONCE, migrate=True)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
