"""Integration: processing-layer failure recovery through changelogs (§3.2)."""

from repro.common.clock import SimClock
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobRunner, StoreConfig
from repro.processing.state import changelog_topic_name


class RunningAverageTask:
    """Stateful: per-key running mean (numeric state with two fields)."""

    def init(self, context):
        self.store = context.store("means")

    def process(self, record, collector):
        key = record.key
        entry = self.store.get_or_default(key, {"n": 0, "total": 0.0})
        entry = {"n": entry["n"] + 1, "total": entry["total"] + record.value}
        self.store.put(key, entry)
        collector.send(
            "means-out",
            {"key": key, "mean": entry["total"] / entry["n"]},
            key=key,
        )


def make_env(partitions=2):
    clock = SimClock()
    cluster = MessagingCluster(num_brokers=3, clock=clock)
    cluster.create_topic("nums", num_partitions=partitions, replication_factor=3)
    cluster.create_topic("means-out", num_partitions=partitions, replication_factor=3)
    producer = Producer(cluster)
    return clock, cluster, producer


def job_config(**kwargs) -> JobConfig:
    defaults = dict(
        name="avg",
        inputs=["nums"],
        task_factory=RunningAverageTask,
        stores=[StoreConfig("means")],
        checkpoint_interval=10,
        changelog_replication=3,
    )
    defaults.update(kwargs)
    return JobConfig(**defaults)


def all_state(runner: JobRunner) -> dict:
    return {
        k: v
        for instance in runner.tasks()
        for k, v in instance.stores["means"].items()
    }


class TestCrashRecovery:
    def test_state_identical_after_crash(self):
        _clock, cluster, producer = make_env()
        for i in range(100):
            producer.send("nums", float(i), key=f"k{i % 7}")
        runner = JobRunner(job_config(), cluster)
        runner.run_until_idle()
        runner.checkpoint()
        before = all_state(runner)
        runner.crash()
        report = runner.recover()
        assert report.records_replayed > 0
        assert all_state(runner) == before

    def test_continues_correctly_after_recovery(self):
        """Recovered state + new input == never-crashed state."""
        _clock, cluster, producer = make_env()
        for i in range(50):
            producer.send("nums", float(i), key=f"k{i % 3}")
        crashing = JobRunner(job_config(name="crashing"), cluster)
        crashing.run_until_idle()
        crashing.checkpoint()
        crashing.crash()
        crashing.recover()
        for i in range(50, 80):
            producer.send("nums", float(i), key=f"k{i % 3}")
        crashing.run_until_idle()

        steady = JobRunner(job_config(name="steady"), cluster)
        steady.run_until_idle()

        crashed_state = {
            k: v for t in crashing.tasks() for k, v in t.stores["means"].items()
        }
        steady_state = {
            k: v for t in steady.tasks() for k, v in t.stores["means"].items()
        }
        assert crashed_state == steady_state

    def test_changelog_survives_broker_failure(self):
        """The changelog is itself replicated: losing a broker doesn't lose
        state recovery (the paper's fallback-to-messaging-layer argument)."""
        _clock, cluster, producer = make_env()
        for i in range(60):
            producer.send("nums", float(i), key=f"k{i % 5}")
        runner = JobRunner(job_config(), cluster)
        runner.run_until_idle()
        runner.checkpoint()
        before = all_state(runner)
        # Kill the broker leading the changelog partition 0, then recover.
        changelog = changelog_topic_name("avg", "means")
        cluster.tick(0.1)
        leader = cluster.leader_of(changelog, 0)
        cluster.kill_broker(leader)
        runner.crash()
        runner.recover()
        assert all_state(runner) == before

    def test_compacted_changelog_recovers_same_state_faster(self):
        """E4's effect at the job level."""
        _clock, cluster, producer = make_env(partitions=1)
        for i in range(400):
            producer.send("nums", float(i), key=f"k{i % 4}")  # 100 updates/key
        runner = JobRunner(job_config(changelog_segment_messages=50), cluster)
        runner.run_until_idle()
        runner.checkpoint()
        before = all_state(runner)

        runner.crash()
        uncompacted = runner.recover()

        # Now compact the changelog and recover again.
        for broker in cluster.brokers():
            broker.run_compaction()
        runner.crash()
        compacted = runner.recover()

        assert all_state(runner) == before
        assert compacted.records_replayed < uncompacted.records_replayed
        assert compacted.simulated_seconds < uncompacted.simulated_seconds
