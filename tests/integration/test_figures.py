"""Executable demonstrations of the paper's figures (F1-F3).

The paper's three figures are architecture diagrams; these tests assert the
*behaviour* each diagram depicts, so the reproduction of the figures is
checked, not just drawn.
"""

from repro.baselines.dfs import SimulatedDFS
from repro.baselines.mapreduce import MapReduceEngine, MRJobSpec
from repro.common.clock import SimClock
from repro.common.records import TopicPartition
from repro.core.etl import MapTask
from repro.core.liquid import Liquid
from repro.messaging.cluster import MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.consumer_group import GroupCoordinator
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig


class TestFigure1:
    """F1: the MR/DFS stack vs. Liquid's low-latency path.

    Same workload (user activity -> normalize -> back-end); the figure's
    point is that Liquid serves the back-end in seconds while the MR path
    needs a batch job.
    """

    def test_liquid_path_beats_mr_dfs_path(self):
        clock = SimClock()
        events = [{"user": f"u{i}", "action": "view"} for i in range(200)]

        # Legacy path: land in DFS, run an MR normalize job, read output.
        dfs = SimulatedDFS(clock)
        dfs.write_file("/activity/part-0", events)
        engine = MapReduceEngine(dfs, clock)
        result = engine.run(
            MRJobSpec(
                name="normalize",
                input_paths=["/activity"],
                output_path="/normalized",
                map_fn=lambda r: [(r["user"], r)],
                reduce_fn=lambda key, values: values,
            ),
            advance_clock=False,
        )
        mr_latency = result.total_seconds

        # Liquid path: produce to a feed, run the job, consume.
        liquid = Liquid(num_brokers=3, clock=SimClock())
        liquid.create_feed("activity", partitions=2)
        runner = liquid.submit_job(
            JobConfig(name="normalize", inputs=["activity"],
                      task_factory=lambda: MapTask("normalized")),
            outputs=["normalized"],
        )
        producer = liquid.producer()
        start = liquid.clock.now()
        for event in events:
            producer.send("activity", event, key=event["user"])
        liquid.process_available()
        liquid_latency = liquid.clock.now() - start

        assert runner.records_processed == 200
        # The figure's claim: orders of magnitude, driven by job startup.
        assert mr_latency > 100 * liquid_latency


class TestFigure2:
    """F2: two layers exchanging data through feeds with stateful tasks."""

    def test_feed_job_feed_topology(self):
        liquid = Liquid(num_brokers=3)
        liquid.create_feed("in-feed", partitions=3)
        runner = liquid.submit_job(
            JobConfig(name="job", inputs=["in-feed"],
                      task_factory=lambda: MapTask("out-feed")),
            outputs=["out-feed"],
        )
        # One task per partition, as drawn.
        assert len(runner.tasks()) == 3
        # Data flows in at the messaging layer and out at the messaging layer.
        producer = liquid.producer()
        for i in range(30):
            producer.send("in-feed", i, key=str(i))
        liquid.process_available()
        liquid.tick(0.1)
        total_out = sum(
            liquid.cluster.end_offset(tp)
            for tp in liquid.cluster.partitions_of("out-feed")
        )
        assert total_out == 30
        # The derived feed knows its derivation (lineage annotations).
        assert liquid.feed("out-feed").lineage.produced_by == "job"


class TestFigure3:
    """F3: producers, brokers/partitions, and consumer-group semantics."""

    def test_figure3_exact_topology(self):
        cluster = MessagingCluster(num_brokers=2, clock=SimClock())
        cluster.create_topic("topic-a", num_partitions=2, replication_factor=1)
        cluster.create_topic("topic-b", num_partitions=2, replication_factor=1)
        gc = GroupCoordinator(cluster)

        producer_1 = Producer(cluster)
        producer_2 = Producer(cluster)
        for i in range(20):
            producer_1.send("topic-a", {"from": "p1", "i": i})
            producer_2.send("topic-a", {"from": "p2", "i": i})
            producer_2.send("topic-b", {"from": "p2", "i": i})
        cluster.tick(0.1)

        # CG-1 subscribed to topic-a; CG-2 (two members) to topic-b.
        cg1 = Consumer(cluster, group="cg-1", group_coordinator=gc)
        cg1.subscribe(["topic-a"])
        cg2_a = Consumer(cluster, group="cg-2", group_coordinator=gc)
        cg2_b = Consumer(cluster, group="cg-2", group_coordinator=gc)
        cg2_a.subscribe(["topic-b"])
        cg2_b.subscribe(["topic-b"])

        got_cg1, got_cg2a, got_cg2b = [], [], []
        for _ in range(10):
            got_cg1.extend(cg1.poll(20))
            got_cg2a.extend(cg2_a.poll(20))
            got_cg2b.extend(cg2_b.poll(20))

        # CG-1 alone receives all of topic-a (from both producers).
        assert len(got_cg1) == 40
        assert {r.value["from"] for r in got_cg1} == {"p1", "p2"}
        # Within CG-2, topic-b behaves as a queue: each message to exactly
        # one member, the two members splitting the load.
        coords_a = {(r.partition, r.offset) for r in got_cg2a}
        coords_b = {(r.partition, r.offset) for r in got_cg2b}
        assert coords_a.isdisjoint(coords_b)
        assert len(coords_a | coords_b) == 20
        assert got_cg2a and got_cg2b

    def test_partitions_distributed_over_brokers(self):
        cluster = MessagingCluster(num_brokers=2, clock=SimClock())
        cluster.create_topic("topic-a", num_partitions=2, replication_factor=1)
        leaders = {
            cluster.leader_of("topic-a", p)
            for p in range(2)
        }
        assert leaders == {0, 1}  # one partition per broker, as drawn

    def test_offsets_identify_positions(self):
        """The distributed-commit-log inset: offsets are dense per partition
        and independent across partitions."""
        cluster = MessagingCluster(num_brokers=1, clock=SimClock())
        cluster.create_topic("t", num_partitions=2, replication_factor=1)
        for i in range(6):
            cluster.produce("t", i % 2, [(None, i, None, {})])
        tp0 = TopicPartition("t", 0)
        tp1 = TopicPartition("t", 1)
        assert cluster.end_offset(tp0) == 3
        assert cluster.end_offset(tp1) == 3
        records, _ = cluster.fetch("t", 0, 0)
        assert [r.offset for r in records] == [0, 1, 2]
