"""Integration: exactly-once consume-transform-produce (§4.3 completed).

The end state of the paper's "ongoing effort": a processing loop that reads
an input feed, writes a derived feed, and commits its input offsets — all
atomically.  A crash between any two steps either replays nothing (the
transaction committed) or replays everything (it aborted), so the derived
feed sees each input's effect exactly once.
"""

from repro.common.clock import SimClock
from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.producer import Producer
from repro.messaging.transactions import TransactionalProducer

IN_TP = TopicPartition("in", 0)


def make_cluster() -> MessagingCluster:
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("in", num_partitions=1, replication_factor=3)
    cluster.create_topic("out", num_partitions=1, replication_factor=3)
    return cluster


class ExactlyOnceTransformer:
    """One consume-transform-produce worker with a stable transactional id.

    ``crash_after_send`` simulates dying after producing but before the
    transaction commits — the dangerous window that plain at-least-once
    processing turns into duplicates.
    """

    def __init__(self, cluster: MessagingCluster, worker_id: str = "etl") -> None:
        self.cluster = cluster
        self.producer = TransactionalProducer(cluster, worker_id)
        self.group = f"group-{worker_id}"

    def _position(self) -> int:
        commit = self.cluster.offset_manager.fetch(self.group, IN_TP)
        return commit.offset if commit is not None else 0

    def run_once(self, batch: int = 100, crash_after_send: bool = False) -> int:
        self.cluster.tick(0.0)
        position = self._position()
        result = self.cluster.fetch(
            "in", 0, position, batch, isolation="read_committed"
        )
        if not result.records:
            return 0
        self.producer.begin()
        for record in result.records:
            self.producer.send(
                "out", {"doubled": record.value * 2}, key=record.key
            )
        if crash_after_send:
            # The process dies here: outputs written but not committed,
            # offsets not advanced.  A restart fences + aborts the txn.
            return len(result.records)
        self.producer.send_offsets_to_transaction(
            self.group, {IN_TP: result.next_offset}
        )
        self.producer.commit()
        return len(result.records)


def committed_outputs(cluster) -> list:
    cluster.tick(0.0)
    result = cluster.fetch(
        "out", 0, 0, max_messages=10_000, isolation="read_committed"
    )
    return [r.value["doubled"] for r in result.records]


class TestExactlyOncePipeline:
    def test_happy_path_transforms_each_input_once(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        for i in range(50):
            producer.send("in", i, key=str(i))
        worker = ExactlyOnceTransformer(cluster)
        while worker.run_once():
            pass
        assert committed_outputs(cluster) == [i * 2 for i in range(50)]

    def test_crash_before_commit_produces_no_duplicates(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        for i in range(30):
            producer.send("in", i, key=str(i))

        worker = ExactlyOnceTransformer(cluster, "etl-7")
        worker.run_once(batch=10)                       # committed: 0-9
        worker.run_once(batch=10, crash_after_send=True)  # dies: 10-19 in limbo

        # Restart: the new incarnation fences the old one, aborting its
        # uncommitted outputs, and resumes from the committed offsets.
        restarted = ExactlyOnceTransformer(cluster, "etl-7")
        while restarted.run_once(batch=10):
            pass
        assert committed_outputs(cluster) == [i * 2 for i in range(30)]

    def test_repeated_crashes_still_exactly_once(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        for i in range(40):
            producer.send("in", i, key=str(i))
        for _attempt in range(4):
            worker = ExactlyOnceTransformer(cluster, "flaky")
            worker.run_once(batch=7, crash_after_send=True)
        final = ExactlyOnceTransformer(cluster, "flaky")
        while final.run_once(batch=7):
            pass
        assert committed_outputs(cluster) == [i * 2 for i in range(40)]

    def test_read_uncommitted_shows_the_garbage_exactly_once_hides(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        for i in range(10):
            producer.send("in", i, key=str(i))
        worker = ExactlyOnceTransformer(cluster, "etl-9")
        worker.run_once(batch=10, crash_after_send=True)
        ExactlyOnceTransformer(cluster, "etl-9")  # fences -> abort markers
        cluster.tick(0.0)
        dirty = cluster.fetch("out", 0, 0, max_messages=1000)
        clean = cluster.fetch(
            "out", 0, 0, max_messages=1000, isolation="read_committed"
        )
        assert len(dirty.records) == 10   # aborted garbage is in the log...
        assert len(clean.records) == 0    # ...but committed readers never see it

    def test_downstream_consumer_sees_consistent_stream(self):
        cluster = make_cluster()
        producer = Producer(cluster)
        consumer = Consumer(cluster, isolation_level="read_committed")
        consumer.assign([TopicPartition("out", 0)])
        worker = ExactlyOnceTransformer(cluster, "etl-10")
        seen = []
        for i in range(30):
            producer.send("in", i, key=str(i))
            if i % 7 == 3:
                worker.run_once(batch=100)
                seen.extend(r.value["doubled"] for r in consumer.poll(100))
        worker.run_once(batch=100)
        cluster.tick(0.0)
        seen.extend(r.value["doubled"] for r in consumer.poll(100))
        assert seen == [i * 2 for i in range(30)]
