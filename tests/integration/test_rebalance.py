"""Integration: consumer-group elasticity (§3.1, E9's mechanics)."""

from repro.common.clock import SimClock
from repro.messaging.cluster import ACKS_ALL, MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.consumer_group import GroupCoordinator
from repro.messaging.producer import Producer


def make_env(partitions=6, n=120):
    cluster = MessagingCluster(num_brokers=3, clock=SimClock())
    cluster.create_topic("t", num_partitions=partitions, replication_factor=3)
    producer = Producer(cluster, acks=ACKS_ALL)
    for i in range(n):
        producer.send("t", {"i": i}, key=f"k{i}")
    gc = GroupCoordinator(cluster)
    return cluster, gc, producer


def new_consumer(cluster, gc, group="g") -> Consumer:
    consumer = Consumer(cluster, group=group, group_coordinator=gc)
    consumer.subscribe(["t"])
    return consumer


class TestScalingUp:
    def test_no_message_lost_or_duplicated_across_scale_up(self):
        cluster, gc, producer = make_env(n=60)
        c1 = new_consumer(cluster, gc)
        got = {id(c1): []}
        # c1 consumes half the stream alone.
        for _ in range(3):
            got[id(c1)].extend(c1.poll(10))
        c1.commit()
        # Scale up: c2 joins, both continue.
        c2 = new_consumer(cluster, gc)
        got[id(c2)] = []
        for _ in range(20):
            got[id(c1)].extend(c1.poll(10))
            got[id(c2)].extend(c2.poll(10))
        everything = got[id(c1)] + got[id(c2)]
        coords = [(r.partition, r.offset) for r in everything]
        # At-least-once across a rebalance (uncommitted records may repeat),
        # but nothing may be missing.
        assert len(set(coords)) == 60

    def test_partitions_split_after_join(self):
        cluster, gc, _producer = make_env()
        c1 = new_consumer(cluster, gc)
        c2 = new_consumer(cluster, gc)
        c1.poll(1)
        assert len(c1.assignment()) == 3
        assert len(c2.assignment()) == 3

    def test_idle_extra_consumers_get_nothing(self):
        cluster, gc, _producer = make_env(partitions=2)
        consumers = [new_consumer(cluster, gc) for _ in range(4)]
        for consumer in consumers:
            consumer.poll(1)
        sizes = sorted(len(c.assignment()) for c in consumers)
        assert sizes == [0, 0, 1, 1]


class TestScalingDown:
    def test_departed_consumers_partitions_reassigned(self):
        cluster, gc, producer = make_env(n=0)
        c1 = new_consumer(cluster, gc)
        c2 = new_consumer(cluster, gc)
        c1.poll(1)
        c2.poll(1)
        # c2 processes some, commits, leaves.
        for i in range(30):
            producer.send("t", {"i": i}, key=f"k{i}")
        c2.poll(100)
        c2.commit()
        c2.close()
        # c1 picks up c2's partitions from the committed offsets.
        remaining = []
        for _ in range(10):
            remaining.extend(c1.poll(50))
        all_coords = {(r.partition, r.offset) for r in remaining}
        committed_away = c2.records_consumed
        assert len(all_coords) == 30 - committed_away

    def test_group_survives_total_turnover(self):
        cluster, gc, _producer = make_env(n=40)
        first = new_consumer(cluster, gc)
        got_first = []
        for _ in range(3):
            got_first.extend(first.poll(10))
        first.commit()
        first.close()
        second = new_consumer(cluster, gc)
        got_second = []
        for _ in range(10):
            got_second.extend(second.poll(10))
        coords = {(r.partition, r.offset) for r in got_first + got_second}
        assert len(coords) == 40
