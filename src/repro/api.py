"""The supported public API surface, in one curated module.

``repro.api`` is the stability contract: everything re-exported here (and
listed in ``__all__``) is covered by the API-snapshot test
(``tests/unit/test_public_api.py``) and the policy in DESIGN.md §11 —
additions are fine, removals and signature changes of these names are
breaking.  Anything imported from deeper module paths is internal and may
change without notice.

Grouped by role:

* **stack** — :class:`Liquid` (the facade), :class:`MessagingCluster`;
* **clients** — :class:`Producer` / :class:`Consumer` and their frozen
  config dataclasses;
* **processing** — :class:`JobConfig`, :class:`StoreConfig`,
  :class:`JobRunner`, the typed :class:`RecoveryReport`;
* **serving** — the queryable-state read path: :class:`StateQueryRouter`,
  :class:`StateServer`, :class:`StandbyReplica`, :class:`QueryResult` and
  the consistency-mode constants;
* **elasticity** — the lag-driven autoscaling loop
  (:class:`LagMonitor` → :class:`ScalingPolicy` →
  :class:`ElasticJobController`) and the :class:`BackpressureValve`;
* **observability** — the tracer and its install/query helpers, the
  self-hosted telemetry exporter and its reserved feeds, SLO burn-rate
  monitoring, and the cluster health rollup;
* **records / time** — the record types, :class:`TopicPartition`,
  :class:`SimClock`, :class:`CostModel`;
* **errors** — the root :class:`LiquidError` plus the error types callers
  are expected to catch.
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.costmodel import CostModel
from repro.common.errors import (
    AuthorizationError,
    ConfigError,
    LiquidError,
    MessagingError,
    ProcessingError,
    ProducerFencedError,
    SerdeError,
    ServingError,
    TransactionError,
)
from repro.common.metrics import MetricsRegistry, metric_name
from repro.common.records import (
    TRACE_HEADER,
    ConsumerRecord,
    ProducerRecord,
    TopicPartition,
)
from repro.core.liquid import Liquid
from repro.elasticity import (
    BackpressureValve,
    ElasticJobController,
    LagMonitor,
    LagSample,
    ScaleEvent,
    ScalingDecision,
    ScalingPolicy,
)
from repro.messaging.cluster import (
    ACKS_ALL,
    ACKS_LEADER,
    ACKS_NONE,
    MessagingCluster,
)
from repro.messaging.config import (
    PARTITIONER_HASH,
    PARTITIONER_ROUND_ROBIN,
    ConsumerConfig,
    ProducerConfig,
)
from repro.messaging.consumer import Consumer
from repro.messaging.producer import Producer
from repro.messaging.transactions import TransactionalProducer
from repro.observability.health import (
    ClusterHealthReport,
    HealthReason,
    evaluate_cluster_health,
)
from repro.observability.slo import (
    Alert,
    ClusterSloSampler,
    Slo,
    SloMonitor,
    standard_slos,
)
from repro.observability.telemetry import (
    TELEMETRY_ALERTS_FEED,
    TELEMETRY_METRICS_FEED,
    TELEMETRY_SPANS_FEED,
    TelemetryExporter,
    is_telemetry_feed,
)
from repro.observability.trace import (
    Span,
    TraceContext,
    Tracer,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)
from repro.processing.job import (
    AT_LEAST_ONCE,
    EXACTLY_ONCE,
    JobConfig,
    JobRunner,
    StoreConfig,
)
from repro.processing.recovery import RecoveryReport, RestoredStore
from repro.serving import (
    CONSISTENCY_BOUNDED,
    CONSISTENCY_SNAPSHOT,
    CatchUpStats,
    QueryResult,
    StandbyReplica,
    StateQueryRouter,
    StateServer,
)
from repro.tools.admin import (
    AdminClient,
    ConsumerLagReport,
    GroupLagReport,
    OpenTransaction,
    PartitionLag,
    StageLatency,
    StageLatencyReport,
    TransactionReport,
)
from repro.tools.tracequery import SpanNode, TraceQuery, render_timeline

__all__ = [
    # stack
    "Liquid",
    "MessagingCluster",
    # clients + configs
    "Producer",
    "ProducerConfig",
    "Consumer",
    "ConsumerConfig",
    "ACKS_NONE",
    "ACKS_LEADER",
    "ACKS_ALL",
    "PARTITIONER_HASH",
    "PARTITIONER_ROUND_ROBIN",
    "TransactionalProducer",
    # processing
    "JobConfig",
    "StoreConfig",
    "JobRunner",
    "AT_LEAST_ONCE",
    "EXACTLY_ONCE",
    "RecoveryReport",
    "RestoredStore",
    # serving
    "StateQueryRouter",
    "StateServer",
    "StandbyReplica",
    "CatchUpStats",
    "QueryResult",
    "CONSISTENCY_BOUNDED",
    "CONSISTENCY_SNAPSHOT",
    # elasticity
    "LagMonitor",
    "LagSample",
    "ScalingPolicy",
    "ScalingDecision",
    "ElasticJobController",
    "ScaleEvent",
    "BackpressureValve",
    # observability
    "Tracer",
    "Span",
    "TraceContext",
    "TRACE_HEADER",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "tracing",
    "TraceQuery",
    "SpanNode",
    "render_timeline",
    # telemetry / SLOs / health
    "TelemetryExporter",
    "TELEMETRY_METRICS_FEED",
    "TELEMETRY_SPANS_FEED",
    "TELEMETRY_ALERTS_FEED",
    "is_telemetry_feed",
    "SloMonitor",
    "Slo",
    "Alert",
    "ClusterSloSampler",
    "standard_slos",
    "ClusterHealthReport",
    "HealthReason",
    "evaluate_cluster_health",
    # tools / metrics
    "AdminClient",
    "ConsumerLagReport",
    "GroupLagReport",
    "PartitionLag",
    "TransactionReport",
    "OpenTransaction",
    "StageLatencyReport",
    "StageLatency",
    "MetricsRegistry",
    "metric_name",
    # records / time
    "ProducerRecord",
    "ConsumerRecord",
    "TopicPartition",
    "SimClock",
    "CostModel",
    # errors
    "LiquidError",
    "ConfigError",
    "MessagingError",
    "ProcessingError",
    "SerdeError",
    "ServingError",
    "AuthorizationError",
    "TransactionError",
    "ProducerFencedError",
]
