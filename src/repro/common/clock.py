"""Simulated time for deterministic benchmarks and tests.

Every latency-sensitive component in the reproduction charges costs against a
:class:`SimClock` instead of reading the wall clock.  This gives three
properties the paper's evaluation environment cannot:

* **Determinism** — the same seed and workload produce identical latency
  numbers on any machine, so EXPERIMENTS.md is reproducible.
* **Speed** — simulating a 10-second retention timeout takes microseconds.
* **Precision** — failure injection can kill a broker at an exact instant
  between two produces.

The clock doubles as an event scheduler (like a single-threaded reactor):
components register timers (log flush timeouts, retention sweeps, session
heartbeats) and the driver advances time, firing timers in order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Minimal clock interface used throughout the library."""

    def now(self) -> float:
        """Return the current time in (simulated) seconds."""
        ...


class TimerHandle:
    """Handle to a scheduled callback, used for cancellation."""

    __slots__ = ("when", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        when: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "TimerHandle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"TimerHandle(when={self.when:.6f}, {state})"


class SimClock:
    """A manually-advanced clock with an ordered timer queue.

    Timers scheduled for the same instant fire in scheduling order, which
    keeps multi-component simulations deterministic.

    Example::

        clock = SimClock()
        clock.schedule(5.0, flush_log)
        clock.advance(10.0)   # flush_log fires at t=5.0
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._timers: list[TimerHandle] = []
        self._seq = itertools.count()

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Raises :class:`ValueError` for negative delays; a zero delay fires on
        the next :meth:`advance` (even ``advance(0.0)``).
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        handle = TimerHandle(self._now + delay, next(self._seq), callback, args)
        heapq.heappush(self._timers, handle)
        return handle

    def schedule_at(
        self, when: float, callback: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule in the past: {when} < now {self._now}"
            )
        handle = TimerHandle(when, next(self._seq), callback, args)
        heapq.heappush(self._timers, handle)
        return handle

    def advance(self, dt: float) -> int:
        """Advance time by ``dt`` seconds, firing due timers in order.

        Returns the number of timers fired.  Callbacks may schedule further
        timers; those also fire if they fall within the window.
        """
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        return self.advance_to(self._now + dt)

    def advance_to(self, deadline: float) -> int:
        """Advance time to ``deadline``, firing due timers in order."""
        if deadline < self._now:
            raise ValueError(
                f"cannot move backwards: {deadline} < now {self._now}"
            )
        fired = 0
        while self._timers and self._timers[0].when <= deadline:
            handle = heapq.heappop(self._timers)
            if handle.cancelled:
                continue
            # Move time to the timer's instant so callbacks observe it.
            self._now = max(self._now, handle.when)
            handle.callback(*handle.args)
            fired += 1
        self._now = deadline
        return fired

    def run_pending(self) -> int:
        """Fire timers due at exactly the current instant."""
        return self.advance_to(self._now)

    def next_deadline(self) -> float | None:
        """Time of the earliest pending timer, or ``None`` if queue is empty."""
        while self._timers and self._timers[0].cancelled:
            heapq.heappop(self._timers)
        if not self._timers:
            return None
        return self._timers[0].when

    def pending_timers(self) -> int:
        """Number of live (non-cancelled) timers."""
        return sum(1 for t in self._timers if not t.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.6f}, pending={self.pending_timers()})"
