"""Stable key-to-partition hashing shared by all clients.

§3.1: "producers can choose to which partition to publish data in a
round-robin fashion or according to a hash function".  The hash function
must be *stable* — the same key must land on the same partition across
producers, transactional sessions, and process restarts — because keyed
ordering and log compaction are both defined per partition.

Keys are first reduced to bytes with an explicit, documented encoding:

* ``bytes``/``bytearray``/``memoryview`` — used as-is;
* ``str`` — UTF-8;
* ``bool`` — one byte (``b"\\x01"``/``b"\\x00"``; handled before ``int``
  since ``bool`` is an ``int`` subclass);
* ``int`` — 8-byte big-endian two's complement (values outside the signed
  64-bit range fall through to the ``repr`` fallback);
* anything else — ``repr(key)`` encoded as UTF-8.  ``repr`` is stable for
  the builtin scalar/container types but is *not* guaranteed stable for
  arbitrary objects across interpreter versions; callers who need durable
  assignments should key with bytes, str, or int.

The byte string is hashed with CRC32 (matching Kafka's murmur2-on-bytes
spirit with a stdlib-only primitive) and reduced modulo the partition count.
"""

from __future__ import annotations

import zlib
from typing import Any

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def key_to_bytes(key: Any) -> bytes:
    """Reduce a message key to its canonical byte encoding (see module doc)."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, (bytearray, memoryview)):
        return bytes(key)
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, bool):  # before int: bool is an int subclass
        return b"\x01" if key else b"\x00"
    if isinstance(key, int) and _INT64_MIN <= key <= _INT64_MAX:
        return key.to_bytes(8, "big", signed=True)
    return repr(key).encode("utf-8")


def stable_hash(key: Any) -> int:
    """CRC32 of the key's canonical byte encoding (non-negative 32-bit int)."""
    return zlib.crc32(key_to_bytes(key))


def partition_for_key(key: Any, num_partitions: int) -> int:
    """Deterministically map a key onto one of ``num_partitions``."""
    return stable_hash(key) % num_partitions
