"""Message types exchanged through the messaging layer.

The paper's unit of data is the *message*: an optionally-keyed value appended
to a topic partition, identified by a per-partition monotonically increasing
*offset* (§3.1).  We mirror the Kafka client split:

* :class:`ProducerRecord` — what a client hands to a producer (no offset yet;
  partition may be left for the partitioner to choose).
* :class:`StoredMessage` — what the log physically keeps (key, value,
  timestamp, headers; the offset is implied by log position and stamped on
  the way out).
* :class:`ConsumerRecord` — what a consumer receives (full provenance:
  topic, partition, offset).
"""

from __future__ import annotations

import sys
from collections.abc import Mapping as _AbcMapping
from dataclasses import dataclass, field
from typing import Any, Mapping


#: Per-record framing overhead charged by the log (offset, length, crc).
RECORD_FRAMING_BYTES = 24

#: Reserved header key carrying a
#: :class:`~repro.observability.trace.TraceContext`.  Size accounting skips
#: it so installing a tracer never changes a record's charged bytes — the
#: observe-don't-mutate invariant the trace-transparency property test
#: enforces.
TRACE_HEADER = "__trace"


def estimate_size(value: Any) -> int:
    """Approximate serialized size in bytes of a message component.

    The page cache and cost model charge I/O by byte count, so sizes need to
    be stable and cheap, not exact.  Strings/bytes use their true length;
    containers recurse; other scalars use fixed costs.

    This sits on the per-message append path, so the common concrete types
    (str/dict/int/...) take exact-``type`` fast paths; subclasses and exotic
    containers fall through to the isinstance chain with identical results.
    """
    if value is None:
        return 0
    tp = type(value)
    if tp is str:
        return len(value.encode("utf-8"))
    if tp is dict:
        total = 0
        for k, v in value.items():
            if k == TRACE_HEADER:
                continue  # accounting-invisible (see TRACE_HEADER)
            total += estimate_size(k) + estimate_size(v) + 2
        return total
    if tp is int:
        return 8
    if tp is bytes:
        return len(value)
    if tp is float:
        return 8
    if tp is bool:
        return 1
    if tp is list or tp is tuple:
        return sum(estimate_size(item) + 1 for item in value)
    return _estimate_size_slow(value)


def _estimate_size_slow(value: Any) -> int:
    """Subclass / exotic-type fallback for :func:`estimate_size`."""
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, _AbcMapping):
        return sum(
            estimate_size(k) + estimate_size(v) + 2
            for k, v in value.items()
            if k != TRACE_HEADER
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) + 1 for item in value)
    # Fallback: shallow object size, better than guessing zero.
    return sys.getsizeof(value)


@dataclass
class ProducerRecord:
    """A message as submitted by a producer.

    ``partition=None`` delegates the choice to the producer's partitioner
    (hash of key if keyed, round-robin otherwise), matching §3.1: "producers
    can choose to which partition to publish data in a round-robin fashion or
    according to a hash function".
    """

    topic: str
    value: Any
    key: Any = None
    partition: int | None = None
    timestamp: float | None = None
    headers: dict[str, Any] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return (
            estimate_size(self.key)
            + estimate_size(self.value)
            + estimate_size(self.headers)
        )


@dataclass(slots=True)
class StoredMessage:
    """A message at rest inside a log segment.

    Offsets are positional: ``segment.base_offset + index``.  Storing them
    implicitly keeps compaction simple (surviving messages keep their
    original offsets via an explicit field set at append time).
    """

    key: Any
    value: Any
    timestamp: float
    offset: int
    headers: dict[str, Any] = field(default_factory=dict)
    size: int = 0
    stored_size: int = 0

    def __post_init__(self) -> None:
        if self.size == 0:
            self.size = (
                estimate_size(self.key)
                + estimate_size(self.value)
                + estimate_size(self.headers)
                + RECORD_FRAMING_BYTES
            )
        # ``size`` is the record's *logical* payload (what a consumer is
        # billed for); ``stored_size`` is its *physical* footprint — its
        # share of the (possibly compressed) batch frame it arrived in.
        # Segments, the page cache, replication and the cold tier all move
        # physical bytes, so they charge stored_size; uncompressed records
        # occupy exactly their logical size.
        if self.stored_size == 0:
            self.stored_size = self.size


@dataclass(frozen=True, slots=True)
class ConsumerRecord:
    """A message as delivered to a consumer, with full provenance.

    ``size`` (payload bytes, excluding log framing) is computed once at
    construction — fetch paths that already know the stored size pass it in
    so quota/WAN accounting never re-walks keys, values and headers.
    """

    topic: str
    partition: int
    offset: int
    key: Any
    value: Any
    timestamp: float
    headers: Mapping[str, Any] = field(default_factory=dict)
    size: int = 0

    def __post_init__(self) -> None:
        if self.size == 0:
            object.__setattr__(
                self,
                "size",
                estimate_size(self.key)
                + estimate_size(self.value)
                + estimate_size(dict(self.headers)),
            )


@dataclass(frozen=True)
class TopicPartition:
    """Identifies one partition of one topic (hashable; used as dict key)."""

    topic: str
    partition: int

    def __str__(self) -> str:
        return f"{self.topic}-{self.partition}"
