"""Message types exchanged through the messaging layer.

The paper's unit of data is the *message*: an optionally-keyed value appended
to a topic partition, identified by a per-partition monotonically increasing
*offset* (§3.1).  We mirror the Kafka client split:

* :class:`ProducerRecord` — what a client hands to a producer (no offset yet;
  partition may be left for the partitioner to choose).
* :class:`StoredMessage` — what the log physically keeps (key, value,
  timestamp, headers; the offset is implied by log position and stamped on
  the way out).
* :class:`ConsumerRecord` — what a consumer receives (full provenance:
  topic, partition, offset).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Mapping


def estimate_size(value: Any) -> int:
    """Approximate serialized size in bytes of a message component.

    The page cache and cost model charge I/O by byte count, so sizes need to
    be stable and cheap, not exact.  Strings/bytes use their true length;
    containers recurse; other scalars use fixed costs.
    """
    if value is None:
        return 0
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, Mapping):
        return sum(
            estimate_size(k) + estimate_size(v) + 2 for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) + 1 for item in value)
    # Fallback: shallow object size, better than guessing zero.
    return sys.getsizeof(value)


@dataclass
class ProducerRecord:
    """A message as submitted by a producer.

    ``partition=None`` delegates the choice to the producer's partitioner
    (hash of key if keyed, round-robin otherwise), matching §3.1: "producers
    can choose to which partition to publish data in a round-robin fashion or
    according to a hash function".
    """

    topic: str
    value: Any
    key: Any = None
    partition: int | None = None
    timestamp: float | None = None
    headers: dict[str, Any] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return (
            estimate_size(self.key)
            + estimate_size(self.value)
            + estimate_size(self.headers)
        )


@dataclass
class StoredMessage:
    """A message at rest inside a log segment.

    Offsets are positional: ``segment.base_offset + index``.  Storing them
    implicitly keeps compaction simple (surviving messages keep their
    original offsets via an explicit field set at append time).
    """

    key: Any
    value: Any
    timestamp: float
    offset: int
    headers: dict[str, Any] = field(default_factory=dict)
    size: int = 0

    def __post_init__(self) -> None:
        if self.size == 0:
            self.size = (
                estimate_size(self.key)
                + estimate_size(self.value)
                + estimate_size(self.headers)
                + 24  # per-record framing overhead (offset, length, crc)
            )


@dataclass(frozen=True)
class ConsumerRecord:
    """A message as delivered to a consumer, with full provenance."""

    topic: str
    partition: int
    offset: int
    key: Any
    value: Any
    timestamp: float
    headers: Mapping[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return (
            estimate_size(self.key)
            + estimate_size(self.value)
            + estimate_size(dict(self.headers))
        )


@dataclass(frozen=True)
class TopicPartition:
    """Identifies one partition of one topic (hashable; used as dict key)."""

    topic: str
    partition: int

    def __str__(self) -> str:
        return f"{self.topic}-{self.partition}"
