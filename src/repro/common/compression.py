"""Compressed record-batch frames: the wire and storage unit of a batch.

Liquid's cost argument hinges on moving bytes cheaply between feeds (§2.3,
§5.2): every hop — producer to leader, leader to follower, broker to
consumer, hot tier to cold store — is charged per byte, so shrinking the
bytes shrinks the bill.  Kafka's answer, mirrored here, is the *compressed
record batch*: the producer serializes and compresses one linger batch into
a single frame, and from then on the frame travels as an **opaque blob**.
Brokers append and replicate it without re-encoding records; the tiered
archiver ships it to the object store as-is; only the consumer inflates it
— lazily, per batch, behind a memoryview so untouched batches stay cold.

A :class:`BatchFrame` carries two byte counts:

* ``payload_bytes`` — the logical (uncompressed) payload size, computed with
  the same :func:`~repro.common.records.estimate_size` accounting as the
  uncompressed path, so the ``none`` codec is byte-identical to a build
  without compression at all;
* ``wire_bytes`` — what the frame costs on the wire and on disk: the real
  ``len()`` of the zlib-compressed canonical serialization plus a fixed
  frame header.

Batch-level metadata that Kafka keeps in the (uncompressed) batch header —
idempotent producer id/sequence, per-record trace contexts — rides on the
frame object rather than inside the payload.  The reserved ``__trace``
header is therefore *excluded* from the canonical serialization, preserving
the observe-don't-mutate invariant: installing a tracer never changes a
frame's compressed bytes, so traced and untraced runs stay byte-identical
even with compression armed.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any

from repro.common.errors import ConfigError
from repro.common.records import TRACE_HEADER, estimate_size

#: Supported codec names.
CODEC_NONE = "none"
CODEC_ZLIB = "zlib"
CODECS = (CODEC_NONE, CODEC_ZLIB)

#: Default zlib level when a bare ``"zlib"`` spec is given.
DEFAULT_ZLIB_LEVEL = 6

#: Fixed per-frame header overhead charged on the wire and on disk: codec
#: id, record count, base timestamp, producer id/seq, payload length, crc.
BATCH_FRAME_HEADER_BYTES = 32


def parse_compression(spec: str) -> tuple[str, int]:
    """Parse a compression spec into ``(codec, level)``.

    Accepted forms: ``"none"``, ``"zlib"`` (level ``6``), ``"zlib:N"`` with
    ``N`` in 1..9.  Raises :class:`~repro.common.errors.ConfigError` on
    anything else.
    """
    if not isinstance(spec, str):
        raise ConfigError(f"compression must be a string, got {spec!r}")
    codec, _, level_part = spec.partition(":")
    if codec == CODEC_NONE:
        if level_part:
            raise ConfigError(f"codec 'none' takes no level, got {spec!r}")
        return CODEC_NONE, 0
    if codec == CODEC_ZLIB:
        if not level_part:
            return CODEC_ZLIB, DEFAULT_ZLIB_LEVEL
        try:
            level = int(level_part)
        except ValueError:
            raise ConfigError(f"bad compression level in {spec!r}") from None
        if not 1 <= level <= 9:
            raise ConfigError(f"zlib level must be 1..9, got {level}")
        return CODEC_ZLIB, level
    raise ConfigError(
        f"unknown compression codec {codec!r}; expected one of {CODECS}"
    )


def encode_payload(payload: bytes, codec: str, level: int) -> bytes:
    """Compress raw payload bytes under ``codec`` (identity for ``none``)."""
    if codec == CODEC_NONE:
        return payload
    if codec == CODEC_ZLIB:
        return zlib.compress(payload, level)
    raise ConfigError(f"unknown compression codec {codec!r}")


def decode_payload(payload: bytes | memoryview, codec: str) -> bytes:
    """Inverse of :func:`encode_payload`; accepts a memoryview (zero-copy)."""
    if codec == CODEC_NONE:
        return bytes(payload)
    if codec == CODEC_ZLIB:
        return zlib.decompress(payload)
    raise ConfigError(f"unknown compression codec {codec!r}")


def _sanitize(
    entries: list[tuple[Any, Any, float | None, dict[str, Any]]],
) -> tuple[list[tuple[Any, Any, float | None, dict[str, Any]]], tuple]:
    """Split entries into a trace-free canonical form plus the contexts.

    Returns ``(clean_entries, trace_contexts)`` where ``trace_contexts[i]``
    is the i-th record's ``__trace`` header value (or None).  The contexts
    ride in the frame header — accounting-invisible, like the header itself.
    """
    clean = []
    contexts = []
    dirty = False
    for key, value, timestamp, headers in entries:
        ctx = headers.get(TRACE_HEADER) if headers else None
        contexts.append(ctx)
        if ctx is not None:
            headers = {k: v for k, v in headers.items() if k != TRACE_HEADER}
            dirty = True
        clean.append((key, value, timestamp, headers))
    return clean, tuple(contexts) if dirty else ()


class BatchFrame:
    """One compressed batch: the opaque unit brokers store and replicate.

    ``payload`` is the zlib-compressed canonical serialization of the
    batch's ``(key, value, timestamp, headers)`` entries (headers minus the
    reserved ``__trace`` key).  :meth:`entries` inflates it lazily through a
    memoryview and memoizes the result, so a frame that is never read is
    never decompressed.
    """

    __slots__ = (
        "codec",
        "level",
        "count",
        "payload",
        "payload_bytes",
        "wire_bytes",
        "sizes",
        "trace_contexts",
        "producer_id",
        "producer_seq",
        "_entries",
    )

    def __init__(
        self,
        codec: str,
        level: int,
        count: int,
        payload: bytes,
        payload_bytes: int,
        sizes: tuple[int, ...],
        trace_contexts: tuple = (),
    ) -> None:
        self.codec = codec
        self.level = level
        self.count = count
        self.payload = payload
        self.payload_bytes = payload_bytes
        self.wire_bytes = len(payload) + BATCH_FRAME_HEADER_BYTES
        self.sizes = sizes
        self.trace_contexts = trace_contexts
        # Batch-header producer state (Kafka keeps these uncompressed in the
        # batch header too); set by the producer after sequence allocation.
        self.producer_id: int | None = None
        self.producer_seq: int | None = None
        self._entries: list | None = None

    # -- payload access ------------------------------------------------------

    def entries(self) -> list[tuple[Any, Any, float | None, dict[str, Any]]]:
        """Inflate the payload (once) and return the canonical entries.

        The decompressor is handed a :class:`memoryview` over the payload so
        no intermediate copy of the compressed blob is made.
        """
        if self._entries is None:
            raw = decode_payload(memoryview(self.payload), self.codec)
            self._entries = pickle.loads(raw)
        return self._entries

    @property
    def inflated(self) -> bool:
        return self._entries is not None

    @property
    def ratio(self) -> float:
        """Logical payload bytes per wire byte (>1 means compression won)."""
        if self.wire_bytes <= 0:
            return 1.0
        return self.payload_bytes / self.wire_bytes

    def stored_sizes(self) -> list[int]:
        """Apportion the frame's wire bytes across its records.

        The frame is the physical unit, but the log's byte accounting is
        per-record; every record receives an equal share (at least one byte)
        with the remainder on the first record, so the shares are
        deterministic and sum to at least ``wire_bytes``.
        """
        base = max(self.wire_bytes, self.count)
        per = base // self.count
        rem = base - per * self.count
        return [per + 1 if i < rem else per for i in range(self.count)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BatchFrame({self.codec}:{self.level}, n={self.count}, "
            f"{self.payload_bytes}B -> {self.wire_bytes}B)"
        )


def compress_entries(
    entries: list[tuple[Any, Any, float | None, dict[str, Any]]],
    codec: str,
    level: int,
) -> BatchFrame | None:
    """Build a :class:`BatchFrame` for one linger batch.

    Returns ``None`` for the ``none`` codec (the uncompressed path carries
    no frame at all, keeping it byte-identical to a build without this
    module) and for payloads the canonical serializer cannot handle — the
    producer then falls back to sending the batch uncompressed.
    """
    if codec == CODEC_NONE or not entries:
        return None
    clean, contexts = _sanitize(entries)
    try:
        raw = pickle.dumps(clean, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None  # unpicklable payload: fall back to uncompressed
    sizes = tuple(
        estimate_size(key) + estimate_size(value) + estimate_size(headers)
        for key, value, _ts, headers in clean
    )
    payload = encode_payload(raw, codec, level)
    return BatchFrame(
        codec=codec,
        level=level,
        count=len(entries),
        payload=payload,
        payload_bytes=sum(sizes),
        sizes=sizes,
        trace_contexts=contexts,
    )


def decompress_entries(
    frame: BatchFrame,
) -> list[tuple[Any, Any, float | None, dict[str, Any]]]:
    """Round-trip inverse of :func:`compress_entries` (sans ``__trace``)."""
    return frame.entries()
