"""Serializers/deserializers for message keys and values.

The messaging layer itself is schema-agnostic (the paper stresses Liquid
"operates on unstructured data"), but clients usually want typed access.
A :class:`Serde` pairs a ``serialize`` and ``deserialize`` function; the
producer/consumer clients apply them at the boundary, so everything inside
the brokers deals with opaque values.
"""

from __future__ import annotations

import json
from typing import Any, Generic, Protocol, TypeVar

from repro.common.errors import SerdeError

T = TypeVar("T")


class Serde(Protocol[T]):
    """Symmetric serializer: ``deserialize(serialize(x)) == x``."""

    def serialize(self, value: T) -> bytes: ...

    def deserialize(self, data: bytes) -> T: ...


class BytesSerde:
    """Identity serde for already-encoded payloads."""

    def serialize(self, value: bytes) -> bytes:
        if not isinstance(value, (bytes, bytearray)):
            raise SerdeError(f"BytesSerde expects bytes, got {type(value).__name__}")
        return bytes(value)

    def deserialize(self, data: bytes) -> bytes:
        return bytes(data)


class StringSerde:
    """UTF-8 string serde."""

    def serialize(self, value: str) -> bytes:
        if not isinstance(value, str):
            raise SerdeError(f"StringSerde expects str, got {type(value).__name__}")
        return value.encode("utf-8")

    def deserialize(self, data: bytes) -> str:
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SerdeError(f"invalid utf-8 payload: {exc}") from exc


class IntSerde:
    """Big-endian signed 64-bit integer serde."""

    def serialize(self, value: int) -> bytes:
        if not isinstance(value, int) or isinstance(value, bool):
            raise SerdeError(f"IntSerde expects int, got {type(value).__name__}")
        try:
            return value.to_bytes(8, "big", signed=True)
        except OverflowError as exc:
            raise SerdeError(f"int out of 64-bit range: {value}") from exc

    def deserialize(self, data: bytes) -> int:
        if len(data) != 8:
            raise SerdeError(f"IntSerde expects 8 bytes, got {len(data)}")
        return int.from_bytes(data, "big", signed=True)


class JsonSerde:
    """JSON serde for dict/list/scalar payloads.

    Uses sorted keys so serialization is deterministic — log compaction and
    changelog tests compare byte-for-byte.
    """

    def serialize(self, value: Any) -> bytes:
        try:
            return json.dumps(value, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
        except (TypeError, ValueError) as exc:
            raise SerdeError(f"value is not JSON-serializable: {exc}") from exc

    def deserialize(self, data: bytes) -> Any:
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerdeError(f"invalid JSON payload: {exc}") from exc


class NoopSerde:
    """Pass-through serde for in-process pipelines.

    The in-process simulation does not need to round-trip every payload
    through bytes; NoopSerde keeps Python objects intact while still letting
    code paths that expect a serde stay uniform.
    """

    def serialize(self, value: Any) -> Any:
        return value

    def deserialize(self, data: Any) -> Any:
        return data


#: Serdes by name for config-driven construction.
SERDES: dict[str, Any] = {
    "bytes": BytesSerde(),
    "string": StringSerde(),
    "int": IntSerde(),
    "json": JsonSerde(),
    "noop": NoopSerde(),
}


def serde_by_name(name: str) -> Any:
    """Look up a built-in serde, raising :class:`SerdeError` if unknown."""
    try:
        return SERDES[name]
    except KeyError:
        raise SerdeError(
            f"unknown serde {name!r}; known: {sorted(SERDES)}"
        ) from None
