"""Lightweight metrics registry: counters, gauges, and latency histograms.

Both layers of the stack expose operational metrics the way the paper's §5.1
"operational analysis" use case assumes — everything a broker, producer, or
job does is countable and timeable.  The registry is also how benchmarks
collect simulated latencies: components record observations, the harness
reads percentiles.

Kept intentionally simple: histograms store plain lists by default because
runs are bounded and determinism matters more than constant memory.  Long
soaks can opt into a deterministic bounded reservoir (``max_samples`` with
keep-every-k decimation); the default path is byte-for-byte unchanged.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Iterator

from repro.common.errors import ConfigError

#: Layers a conventional metric name may start with.  The convention is
#: ``layer.component.metric`` (dot-separated, lower-case, digits and
#: underscores allowed inside segments) — e.g.
#: ``messaging.broker.messages_in`` or ``processing.job.enrich.processed``.
METRIC_LAYERS = (
    "messaging",
    "storage",
    "processing",
    "elasticity",
    "serving",
    "observability",
    "core",
    "tools",
)

#: Full-name pattern for :func:`is_conventional`: at least three segments,
#: starting with a known layer.
_CONVENTION = re.compile(
    r"^(?:%s)(?:\.[a-z0-9_]+){2,}$" % "|".join(METRIC_LAYERS)
)


def metric_name(layer: str, component: str, *parts: str) -> str:
    """Build a convention-compliant metric name.

    Deployment metrics all funnel through this helper (call sites hoist the
    result to a module-level constant, so the hot path pays only a dict
    lookup).  The registry itself stays name-agnostic — tests and scratch
    code can register short ad-hoc names.
    """
    if layer not in METRIC_LAYERS:
        raise ConfigError(
            f"unknown metric layer {layer!r}; expected one of {METRIC_LAYERS}"
        )
    if not component or not parts:
        raise ConfigError("metric_name needs a component and at least one part")
    return ".".join((layer, component) + parts)


def is_conventional(name: str) -> bool:
    """True if ``name`` follows the ``layer.component.metric`` convention."""
    return _CONVENTION.match(name) is not None


_SEGMENT_CLEANER = re.compile(r"[^a-z0-9_]")


def metric_segment(raw: str) -> str:
    """Normalize a runtime identifier (group/job name) into a legal segment.

    Consumer groups and jobs are named by users (``job-enrich``, ``Soak``),
    but metric segments only allow ``[a-z0-9_]``.  Per-entity instruments
    (e.g. the lag monitor's per-group gauges) funnel names through here so
    the whole registry stays :func:`is_conventional`.
    """
    cleaned = _SEGMENT_CLEANER.sub("_", raw.lower())
    if not cleaned.strip("_"):
        raise ConfigError(f"cannot derive a metric segment from {raw!r}")
    return cleaned


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        """Zero the count in place (the instrument object survives)."""
        self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A value that can move up and down (e.g. cache residency bytes)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def add(self, delta: float) -> None:
        self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        """Zero the gauge in place (the instrument object survives)."""
        self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """Records observations and answers percentile queries.

    Percentiles use linear interpolation between closest ranks, matching
    ``numpy.percentile``'s default, so report numbers are stable across
    implementations.

    By default every observation is retained (deterministic, exact).  For
    long soaks, ``max_samples`` bounds memory with keep-every-k decimation:
    once the retained list would exceed the bound, every second retained
    sample is dropped and only every ``k``-th future observation is kept
    (``k`` doubles on each decimation).  Count/total/min/max stay exact in
    bounded mode; percentiles are computed over the retained thinning.
    """

    __slots__ = (
        "name",
        "max_samples",
        "_values",
        "_sorted",
        "_count",
        "_total",
        "_min",
        "_max",
        "_keep_every",
        "_delta",
    )

    def __init__(self, name: str, max_samples: int | None = None) -> None:
        if max_samples is not None and max_samples < 2:
            raise ConfigError(
                f"histogram {name!r}: max_samples must be >= 2, got {max_samples}"
            )
        self.name = name
        self.max_samples = max_samples
        self._values: list[float] = []
        self._sorted = True
        # Exact aggregates, maintained only in bounded mode; the default
        # (unbounded) hot path computes them from ``_values`` as before.
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._keep_every = 1
        # Observations since the last delta_snapshot(); None until the first
        # call arms delta tracking, so untelemetered runs pay one branch.
        self._delta: list[float] | None = None

    def observe(self, value: float) -> None:
        if self._delta is not None:
            self._delta.append(value)
        if self.max_samples is None:
            if self._values and value < self._values[-1]:
                self._sorted = False
            self._values.append(value)
            return
        self._observe_bounded(value)

    def _observe_bounded(self, value: float) -> None:
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if (self._count - 1) % self._keep_every:
            return
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)
        if len(self._values) > self.max_samples:
            # Keep every second retained sample (a deterministic uniform
            # thinning whether the list is in arrival or sorted order).
            self._values = self._values[::2]
            self._keep_every *= 2

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        if self.max_samples is None:
            return len(self._values)
        return self._count

    @property
    def total(self) -> float:
        # While undecimated the reservoir still holds every observation, so
        # the exactly-rounded fsum keeps bounded mode byte-identical to
        # unbounded; only after the first decimation does the running
        # accumulator (naive adds) take over.
        if self.max_samples is None or self._keep_every == 1:
            return math.fsum(self._values)
        return self._total

    @property
    def mean(self) -> float:
        count = self.count
        if not count:
            return 0.0
        return self.total / count

    @property
    def min(self) -> float:
        if self.max_samples is None:
            return min(self._values) if self._values else 0.0
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        if self.max_samples is None:
            return max(self._values) if self._values else 0.0
        return self._max if self._count else 0.0

    def percentile(self, pct: float) -> float:
        """Return the ``pct``-th percentile (0-100) of observations."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        values = self._values
        if len(values) == 1:
            return values[0]
        rank = (pct / 100) * (len(values) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return values[low]
        frac = rank - low
        return values[low] * (1 - frac) + values[high] * frac

    def snapshot(self) -> dict[str, float]:
        """Summary dict (count/mean/min/p50/p95/p99/max) for reports."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def delta_snapshot(self) -> dict[str, float]:
        """Summary of the observations made since the previous call.

        The first call arms delta tracking and covers the histogram's whole
        history; every later call summarizes only the window since the call
        before it.  The telemetry exporter publishes these windows so each
        export cycle carries fresh percentiles, not an ever-flattening
        lifetime aggregate.
        """
        pending = self._delta
        self._delta = []
        if pending is None:
            return self.snapshot()
        if not pending:
            return dict(_EMPTY_SUMMARY)
        return _summarize(pending)

    def discard_delta(self) -> None:
        """Drop the pending delta window without summarizing it.

        Arms delta tracking if it was off (so history up to this point is
        excluded from the next window, exactly like ``delta_snapshot``).
        O(1); the telemetry exporter uses this to absorb observations its
        own sends generated — summarizing a window just to throw it away
        would put registry-walk cost on every export cycle.
        """
        self._delta = []

    def reset(self) -> None:
        """Drop all observations in place (the instrument object survives)."""
        self._values.clear()
        self._sorted = True
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._keep_every = 1
        if self._delta is not None:
            self._delta = []

    def values(self) -> list[float]:
        """Copy of raw observations (benchmarks fit curves on these)."""
        return list(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.6g})"


#: What ``snapshot()`` reports for a histogram with no observations.
_EMPTY_SUMMARY = {
    "count": 0.0, "mean": 0.0, "min": 0.0,
    "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
}


def _summarize(values: list[float]) -> dict[str, float]:
    """Snapshot-shaped summary of a plain list of observations."""
    scratch = Histogram("delta")
    scratch.observe_many(values)
    return scratch.snapshot()


class MetricsRegistry:
    """Namespace of metrics, created on first use.

    A metric name identifies one instrument; asking for the same name with a
    different type is an error, which catches typos early.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, max_samples: int | None = None) -> Histogram:
        existing = self._metrics.get(name)
        if existing is None:
            created = Histogram(name, max_samples=max_samples)
            self._metrics[name] = created
            return created
        if not isinstance(existing, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(existing).__name__}, requested Histogram"
            )
        # max_samples only applies at creation; later callers get the
        # instrument as configured by whoever registered it first.
        return existing

    def _get_or_create(self, name: str, cls: type) -> "Counter | Gauge | Histogram":
        existing = self._metrics.get(name)
        if existing is None:
            created = cls(name)
            self._metrics[name] = created
            return created
        if not isinstance(existing, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(existing).__name__}, requested {cls.__name__}"
            )
        return existing

    def get(self, name: str) -> "Counter | Gauge | Histogram | None":
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __iter__(self) -> Iterator["Counter | Gauge | Histogram"]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, object]:
        """Flatten all metrics into a report-friendly dict."""
        out: dict[str, object] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        return out

    def reset(self) -> None:
        """Zero every instrument in place.

        Call sites hoist instruments to module/instance attributes (the hot
        path pays only an attribute load), so dropping entries from the
        registry would leave those live references diverged from what the
        registry reports.  Resetting in place keeps both views consistent.
        """
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Deprecated alias for :meth:`reset`.

        The old behavior (``dict.clear()``) orphaned every hoisted
        instrument: components kept counting into objects the registry no
        longer knew about.  Kept as an alias so old call sites get the safe
        semantics instead of the divergence.
        """
        self.reset()
