"""Hardware cost model for the simulated substrate.

The paper's performance claims (§4.1: constant throughput independent of log
size, RAM-speed head-of-log reads, seek-then-prefetch rewind reads; §1: MR
pipeline latency) all reduce to the relative costs of RAM access, sequential
disk I/O, random disk I/O, and network hops.  This module centralizes those
costs so every layer — page cache, replication, DFS baseline, MR engine —
charges time consistently, and so EXPERIMENTS.md can document the exact
parameters behind each number.

Defaults approximate the commodity hardware of the paper's era (2014):
7200rpm disks behind an OS page cache, 10GbE-class intra-datacenter links,
and multi-second MR job startup on YARN.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Latency/bandwidth parameters charged to the simulated clock.

    All times are seconds, all bandwidths bytes/second.  Instances are
    immutable; derive variants with :meth:`scaled` or ``dataclasses.replace``.
    """

    # Memory hierarchy.
    ram_bandwidth: float = 10e9           # sequential RAM copy
    disk_seq_read_bandwidth: float = 150e6
    disk_seq_write_bandwidth: float = 120e6
    disk_seek_time: float = 8e-3          # one random seek (7200rpm class)
    page_size: int = 64 * 1024            # granularity of the page cache

    # Network (intra-datacenter).
    network_rtt: float = 0.5e-3
    network_bandwidth: float = 1.0e9      # ~10GbE with protocol overhead

    # Per-request software overheads.
    request_overhead: float = 50e-6       # RPC dispatch, bookkeeping
    cpu_per_message: float = 2e-6         # serialization + routing per message

    # Batch compression (zlib-class deflate on one core).  The producer pays
    # the compress cost once per linger batch; consumers pay the (much
    # cheaper) inflate cost lazily, per batch actually read.
    compress_bandwidth: float = 60e6      # deflate throughput, logical bytes/s
    decompress_bandwidth: float = 300e6   # inflate throughput, logical bytes/s

    # Batch-stack costs (MR/DFS baseline).
    mr_job_startup: float = 10.0          # YARN container negotiation + JVM spin-up
    mr_task_startup: float = 1.0          # per map/reduce task launch
    dfs_open_overhead: float = 20e-3      # namenode round trip + block lookup
    dfs_block_size: int = 64 * 1024 * 1024

    # Cold tier (offline object store reached across the serving/offline
    # boundary).  Cold fetches pay a request round trip much larger than a
    # broker RPC, then stream at a bandwidth below local disk — the price of
    # moving history off the serving path (tiered storage, §2.2/§4.1).
    cold_fetch_overhead: float = 50e-3    # object-store request round trip
    cold_read_bandwidth: float = 80e6     # hydration stream (cross-tier)
    cold_write_bandwidth: float = 60e6    # archival upload stream

    # State-store costs (RocksDB-like).
    store_memtable_get: float = 0.5e-6
    store_run_get: float = 30e-6          # one sorted-run probe (bloom miss path)
    store_put: float = 1.0e-6

    def __post_init__(self) -> None:
        for name in (
            "ram_bandwidth",
            "disk_seq_read_bandwidth",
            "disk_seq_write_bandwidth",
            "network_bandwidth",
            "cold_read_bandwidth",
            "cold_write_bandwidth",
            "compress_bandwidth",
            "decompress_bandwidth",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be > 0")
        if self.page_size <= 0 or self.dfs_block_size <= 0:
            raise ConfigError("page_size and dfs_block_size must be > 0")

    # -- memory / disk ------------------------------------------------------

    def ram_read(self, nbytes: int) -> float:
        """Cost of copying ``nbytes`` out of the page cache."""
        return nbytes / self.ram_bandwidth

    def ram_write(self, nbytes: int) -> float:
        """Cost of writing ``nbytes`` into the page cache."""
        return nbytes / self.ram_bandwidth

    def disk_sequential_read(self, nbytes: int) -> float:
        """Cost of streaming ``nbytes`` from disk with no seek."""
        return nbytes / self.disk_seq_read_bandwidth

    def disk_sequential_write(self, nbytes: int) -> float:
        """Cost of streaming ``nbytes`` to disk with no seek."""
        return nbytes / self.disk_seq_write_bandwidth

    def disk_random_read(self, nbytes: int) -> float:
        """One seek followed by a sequential read of ``nbytes``."""
        return self.disk_seek_time + self.disk_sequential_read(nbytes)

    # -- network ------------------------------------------------------------

    def network_transfer(self, nbytes: int) -> float:
        """One round trip plus the wire time for ``nbytes``."""
        return self.network_rtt + nbytes / self.network_bandwidth

    def network_oneway(self, nbytes: int) -> float:
        """Half a round trip plus wire time (fire-and-forget sends)."""
        return self.network_rtt / 2 + nbytes / self.network_bandwidth

    # -- software -----------------------------------------------------------

    def request(self, nmessages: int = 1) -> float:
        """Fixed request overhead plus per-message CPU cost."""
        return self.request_overhead + nmessages * self.cpu_per_message

    def compress(self, nbytes: int) -> float:
        """CPU cost of deflating ``nbytes`` of logical payload."""
        return nbytes / self.compress_bandwidth

    def decompress(self, nbytes: int) -> float:
        """CPU cost of inflating a frame back to ``nbytes`` of payload."""
        return nbytes / self.decompress_bandwidth

    # -- cold tier ------------------------------------------------------------

    def cold_fetch(self, nbytes: int) -> float:
        """One object-store round trip plus the cross-tier hydration stream."""
        return self.cold_fetch_overhead + nbytes / self.cold_read_bandwidth

    def cold_put(self, nbytes: int) -> float:
        """One object-store round trip plus the archival upload stream."""
        return self.cold_fetch_overhead + nbytes / self.cold_write_bandwidth

    # -- derivation helpers ---------------------------------------------------

    def scaled(self, factor: float) -> "CostModel":
        """Return a model with every *time* cost multiplied by ``factor``.

        Bandwidths are divided by the factor so that all derived latencies
        scale uniformly.  Useful for modelling slower/faster hardware tiers
        in ablation benchmarks.
        """
        if factor <= 0:
            raise ConfigError(f"scale factor must be > 0, got {factor}")
        return replace(
            self,
            ram_bandwidth=self.ram_bandwidth / factor,
            disk_seq_read_bandwidth=self.disk_seq_read_bandwidth / factor,
            disk_seq_write_bandwidth=self.disk_seq_write_bandwidth / factor,
            network_bandwidth=self.network_bandwidth / factor,
            disk_seek_time=self.disk_seek_time * factor,
            network_rtt=self.network_rtt * factor,
            request_overhead=self.request_overhead * factor,
            cpu_per_message=self.cpu_per_message * factor,
            compress_bandwidth=self.compress_bandwidth / factor,
            decompress_bandwidth=self.decompress_bandwidth / factor,
            mr_job_startup=self.mr_job_startup * factor,
            mr_task_startup=self.mr_task_startup * factor,
            dfs_open_overhead=self.dfs_open_overhead * factor,
            cold_fetch_overhead=self.cold_fetch_overhead * factor,
            cold_read_bandwidth=self.cold_read_bandwidth / factor,
            cold_write_bandwidth=self.cold_write_bandwidth / factor,
            store_memtable_get=self.store_memtable_get * factor,
            store_run_get=self.store_run_get * factor,
            store_put=self.store_put * factor,
        )

    def describe(self) -> dict[str, Any]:
        """Dict of parameters for inclusion in experiment reports."""
        return {
            "ram_bandwidth_gbps": self.ram_bandwidth / 1e9,
            "disk_seq_read_mbps": self.disk_seq_read_bandwidth / 1e6,
            "disk_seq_write_mbps": self.disk_seq_write_bandwidth / 1e6,
            "disk_seek_ms": self.disk_seek_time * 1e3,
            "network_rtt_us": self.network_rtt * 1e6,
            "network_bandwidth_gbps": self.network_bandwidth / 1e9,
            "request_overhead_us": self.request_overhead * 1e6,
            "compress_mbps": self.compress_bandwidth / 1e6,
            "decompress_mbps": self.decompress_bandwidth / 1e6,
            "mr_job_startup_s": self.mr_job_startup,
            "dfs_block_size_mb": self.dfs_block_size / (1024 * 1024),
            "cold_fetch_overhead_ms": self.cold_fetch_overhead * 1e3,
            "cold_read_mbps": self.cold_read_bandwidth / 1e6,
            "cold_write_mbps": self.cold_write_bandwidth / 1e6,
        }


#: Default model used when a component is constructed without one.
DEFAULT_COST_MODEL = CostModel()
