"""Shared substrate: simulated clock, cost model, metrics, records, serdes."""

from repro.common.clock import Clock, SimClock, TimerHandle
from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import LiquidError
from repro.common.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.common.records import (
    ConsumerRecord,
    ProducerRecord,
    StoredMessage,
    TopicPartition,
    estimate_size,
)
from repro.common.serde import (
    BytesSerde,
    IntSerde,
    JsonSerde,
    NoopSerde,
    Serde,
    StringSerde,
    serde_by_name,
)

__all__ = [
    "Clock",
    "SimClock",
    "TimerHandle",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "LiquidError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ConsumerRecord",
    "ProducerRecord",
    "StoredMessage",
    "TopicPartition",
    "estimate_size",
    "Serde",
    "BytesSerde",
    "StringSerde",
    "IntSerde",
    "JsonSerde",
    "NoopSerde",
    "serde_by_name",
]
