"""Exception hierarchy for the Liquid reproduction.

Every error raised by the library derives from :class:`LiquidError`, so
callers can catch one base type at the public-API boundary.  The hierarchy
mirrors the paper's subsystems: messaging-layer errors correspond to the
failure modes a Kafka client would see, processing-layer errors to Samza job
failures, and coordination errors to ZooKeeper session problems.
"""

from __future__ import annotations


class LiquidError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(LiquidError):
    """A configuration value is missing, malformed, or inconsistent."""


class SerdeError(LiquidError):
    """A value could not be serialized or deserialized."""


# ---------------------------------------------------------------------------
# Messaging layer
# ---------------------------------------------------------------------------

class MessagingError(LiquidError):
    """Base class for messaging-layer (Kafka-like) errors."""


class TopicNotFoundError(MessagingError):
    """The requested topic does not exist on the cluster."""


class TopicAlreadyExistsError(MessagingError):
    """Attempted to create a topic that already exists."""


class PartitionNotFoundError(MessagingError):
    """The requested partition id is outside the topic's partition range."""


class OffsetOutOfRangeError(MessagingError):
    """A fetch requested an offset below the log start or above the end.

    Carries the valid range so clients can implement auto-reset policies.
    """

    def __init__(self, requested: int, log_start: int, log_end: int) -> None:
        super().__init__(
            f"offset {requested} out of range [{log_start}, {log_end})"
        )
        self.requested = requested
        self.log_start = log_start
        self.log_end = log_end


class BrokerUnavailableError(MessagingError):
    """The broker addressed by the request is offline."""


class NotLeaderForPartitionError(MessagingError):
    """A produce/fetch was sent to a replica that is not the leader.

    Clients respond by refreshing metadata and retrying, exactly as Kafka
    clients do.
    """


class NotEnoughReplicasError(MessagingError):
    """acks=all produce rejected: in-sync replica set below ``min.insync``."""


class ProducerFlushError(MessagingError):
    """``Producer.flush()`` could not deliver every buffered batch.

    Carries the partial result: ``acks`` for the batches that made it, and
    ``failures`` as ``(partition, error)`` pairs for those that did not.
    Failed batches stay buffered inside the producer (in order), so a later
    ``flush()`` retries them — nothing is silently dropped.
    """

    def __init__(self, acks: list, failures: list) -> None:
        partitions = ", ".join(str(tp) for tp, _exc in failures)
        super().__init__(
            f"flush failed for {len(failures)} partition(s) [{partitions}]; "
            f"{len(acks)} batch(es) acked; failed batches remain buffered"
        )
        self.acks = acks
        self.failures = failures


class MessageTooLargeError(MessagingError):
    """A produced message exceeds the broker's maximum message size."""


class StaleEpochError(MessagingError):
    """A replication request carried an outdated leader epoch."""


class RebalanceInProgressError(MessagingError):
    """Consumer-group operation attempted while the group is rebalancing."""


class UnknownMemberError(MessagingError):
    """A consumer addressed the group coordinator with an expired member id."""


class CommitFailedError(MessagingError):
    """An offset commit was rejected (stale generation or unknown member)."""


class ProducerFencedError(MessagingError):
    """A transactional producer was superseded by a newer instance."""


class TransactionError(MessagingError):
    """A transactional produce sequence was used incorrectly."""


# ---------------------------------------------------------------------------
# Coordination
# ---------------------------------------------------------------------------

class CoordinationError(LiquidError):
    """Base class for coordinator (ZooKeeper-like) errors."""


class SessionExpiredError(CoordinationError):
    """The client's ephemeral session is no longer valid."""


class NodeExistsError(CoordinationError):
    """Attempted to create a znode path that already exists."""


class NoNodeError(CoordinationError):
    """The referenced znode path does not exist."""


class NotControllerError(CoordinationError):
    """A controller-only operation was invoked on a non-controller."""


# ---------------------------------------------------------------------------
# Processing layer
# ---------------------------------------------------------------------------

class ProcessingError(LiquidError):
    """Base class for processing-layer (Samza-like) errors."""


class JobConfigError(ProcessingError):
    """A job definition is invalid (missing inputs, cyclic dataflow, ...)."""


class TaskFailedError(ProcessingError):
    """A stream task raised while processing a message."""


class StateStoreError(ProcessingError):
    """A state store operation failed."""


class CheckpointError(ProcessingError):
    """Reading or writing a task checkpoint failed."""


class QuotaExceededError(ProcessingError):
    """A container exceeded its CPU or memory quota.

    Raised only when hard enforcement is enabled; soft enforcement throttles
    instead (see :mod:`repro.processing.containers`).
    """


# ---------------------------------------------------------------------------
# Serving layer
# ---------------------------------------------------------------------------

class ServingError(LiquidError):
    """A state-serving query is invalid (unknown store, bad consistency
    mode, task out of range; see :mod:`repro.serving`)."""


# ---------------------------------------------------------------------------
# Liquid core
# ---------------------------------------------------------------------------

class AuthorizationError(LiquidError):
    """The principal lacks the required grant (see :mod:`repro.core.access`)."""


class FeedError(LiquidError):
    """Base class for feed-registry errors."""


class FeedNotFoundError(FeedError):
    """The referenced feed is not registered with the Liquid stack."""


class FeedAlreadyExistsError(FeedError):
    """Attempted to register a feed name twice."""


class LineageError(FeedError):
    """A derived feed's lineage is inconsistent (unknown parent, cycle)."""


# ---------------------------------------------------------------------------
# Tiered storage
# ---------------------------------------------------------------------------

class TieredStorageError(LiquidError):
    """Base class for cold-tier (archival) storage errors."""


class ObjectNotFoundError(TieredStorageError):
    """The requested object key does not exist in the cold store."""


class ObjectExistsError(TieredStorageError):
    """Attempted to overwrite an existing (immutable) cold-store object."""


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------

class DfsError(LiquidError):
    """Base class for simulated-DFS errors."""


class FileNotFoundInDfsError(DfsError):
    """The DFS path does not exist."""


class FileExistsInDfsError(DfsError):
    """The DFS path already exists (DFS files are immutable once closed)."""


class MapReduceError(LiquidError):
    """A MapReduce job failed."""
