"""Observability: per-record distributed tracing across both layers.

See :mod:`repro.observability.trace` for the tracer itself and
:mod:`repro.tools.tracequery` for reconstruction/rendering of span trees.
"""

from repro.observability.trace import (
    TRACE_HEADER,
    Span,
    TraceContext,
    Tracer,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)

__all__ = [
    "TraceContext",
    "Span",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "tracing",
    "TRACE_HEADER",
]
