"""Observability: tracing, self-hosted telemetry, SLOs, and health.

See :mod:`repro.observability.trace` for the per-record tracer,
:mod:`repro.observability.telemetry` for the exporter that publishes
metric deltas/spans/alerts into the ``__telemetry.*`` system feeds,
:mod:`repro.observability.slo` for burn-rate SLO monitoring, and
:mod:`repro.observability.health` for the cluster health rollup.
"""

from repro.observability.health import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    ClusterHealthReport,
    HealthReason,
    evaluate_cluster_health,
)
from repro.observability.slo import (
    ALERT_FIRING,
    ALERT_RESOLVED,
    Alert,
    ClusterSloSampler,
    Slo,
    SloMonitor,
    SloStatus,
    attach_standard_slos,
    standard_slos,
)
from repro.observability.telemetry import (
    TELEMETRY_ALERTS_FEED,
    TELEMETRY_FEEDS,
    TELEMETRY_METRICS_FEED,
    TELEMETRY_SPANS_FEED,
    TelemetryExporter,
    is_telemetry_feed,
)
from repro.observability.trace import (
    TRACE_HEADER,
    Span,
    TraceContext,
    Tracer,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)

__all__ = [
    "TraceContext",
    "Span",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "tracing",
    "TRACE_HEADER",
    "TelemetryExporter",
    "TELEMETRY_METRICS_FEED",
    "TELEMETRY_SPANS_FEED",
    "TELEMETRY_ALERTS_FEED",
    "TELEMETRY_FEEDS",
    "is_telemetry_feed",
    "Slo",
    "SloMonitor",
    "SloStatus",
    "Alert",
    "ALERT_FIRING",
    "ALERT_RESOLVED",
    "ClusterSloSampler",
    "standard_slos",
    "attach_standard_slos",
    "ClusterHealthReport",
    "HealthReason",
    "evaluate_cluster_health",
    "HEALTHY",
    "DEGRADED",
    "UNHEALTHY",
]
