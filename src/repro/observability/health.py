"""Cluster-wide health rollup: one status, machine-readable reasons.

`AdminClient.health_check` answers "is messaging healthy?" with raw lists;
this module aggregates *everything* an operator pages on — broker liveness,
ISR state, consumer lag, backpressure valves, open transactions, standby
staleness — into a single ``healthy`` / ``degraded`` / ``unhealthy`` verdict
with typed reasons, so dashboards and the telemetry dogfood job can act on
codes instead of parsing prose.

Severity model: conditions that lose data or block progress (offline
partitions, no live broker) are *unhealthy*; conditions that merely erode
headroom (under-replication, lag, throttled valves, stuck transactions,
stale standbys) are *degraded*.  The worst reason wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

#: Overall statuses, ordered best to worst.
HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

_SEVERITY_RANK = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}


@dataclass(frozen=True)
class HealthReason:
    """One contributing condition, machine-readable first."""

    code: str          # stable identifier, e.g. "offline_partitions"
    severity: str      # DEGRADED | UNHEALTHY
    value: float       # the measurement that tripped the rule
    detail: str        # human-readable elaboration

    def as_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "value": self.value,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ClusterHealthReport:
    """The rollup: status, reasons, and the raw numbers behind them."""

    status: str
    reasons: tuple[HealthReason, ...]
    checked_at: float
    live_brokers: int
    total_brokers: int
    offline_partitions: int
    under_replicated: int
    max_group_lag: int
    open_transactions: int
    lso_lag: int
    closed_valves: int
    throttled_valves: int
    max_standby_staleness: int

    @property
    def healthy(self) -> bool:
        return self.status == HEALTHY

    def reason_codes(self) -> list[str]:
        return [reason.code for reason in self.reasons]

    def as_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "reasons": [reason.as_dict() for reason in self.reasons],
            "checked_at": self.checked_at,
            "live_brokers": self.live_brokers,
            "total_brokers": self.total_brokers,
            "offline_partitions": self.offline_partitions,
            "under_replicated": self.under_replicated,
            "max_group_lag": self.max_group_lag,
            "open_transactions": self.open_transactions,
            "lso_lag": self.lso_lag,
            "closed_valves": self.closed_valves,
            "throttled_valves": self.throttled_valves,
            "max_standby_staleness": self.max_standby_staleness,
        }


def evaluate_cluster_health(
    cluster,
    *,
    runners: Iterable = (),
    valves: Iterable = (),
    servers: Iterable = (),
    max_group_lag: int = 1000,
    max_standby_staleness: int = 1000,
    max_lso_lag: int = 1000,
    now: float | None = None,
) -> ClusterHealthReport:
    """Evaluate every health rule against live cluster state."""
    # Runtime imports: tools.admin pulls in messaging; this module stays
    # import-light so ``repro.observability`` never drags messaging eagerly.
    from repro.elasticity.backpressure import VALVE_CLOSED, VALVE_THROTTLED
    from repro.observability.slo import _runner_standby_lag
    from repro.tools.admin import AdminClient

    admin = AdminClient(cluster)
    if now is None:
        now = cluster.clock.now()
    reasons: list[HealthReason] = []

    controller = cluster.controller
    live = len(controller.live_brokers())
    total = len(cluster.brokers())
    offline = len(controller.offline_partitions())
    under_replicated = len(admin.under_replicated_partitions())

    if live == 0:
        reasons.append(HealthReason(
            code="no_live_brokers",
            severity=UNHEALTHY,
            value=float(total),
            detail=f"all {total} brokers are down",
        ))
    elif live < total:
        reasons.append(HealthReason(
            code="dead_brokers",
            severity=DEGRADED,
            value=float(total - live),
            detail=f"{total - live} of {total} brokers down",
        ))
    if offline:
        reasons.append(HealthReason(
            code="offline_partitions",
            severity=UNHEALTHY,
            value=float(offline),
            detail=f"{offline} partitions have no electable leader",
        ))
    if under_replicated:
        reasons.append(HealthReason(
            code="under_replicated_partitions",
            severity=DEGRADED,
            value=float(under_replicated),
            detail=f"{under_replicated} partitions below replication factor",
        ))

    worst_lag = 0
    for group, lag in admin.all_group_lags().items():
        if group.startswith("__"):
            continue  # system groups have their own alerts
        worst_lag = max(worst_lag, lag)
        if lag > max_group_lag:
            reasons.append(HealthReason(
                code="consumer_lag",
                severity=DEGRADED,
                value=float(lag),
                detail=f"group {group!r} lag {lag} > {max_group_lag}",
            ))

    transactions = admin.transaction_report()
    open_count = len(transactions.open_transactions)
    lso_total = sum(transactions.lso_lag.values())
    if lso_total > max_lso_lag:
        reasons.append(HealthReason(
            code="transaction_lso_lag",
            severity=DEGRADED,
            value=float(lso_total),
            detail=(
                f"{open_count} open transactions hold back {lso_total} "
                f"records (> {max_lso_lag})"
            ),
        ))

    closed = throttled = 0
    for valve in valves:
        if valve.state == VALVE_CLOSED:
            closed += 1
        elif valve.state == VALVE_THROTTLED:
            throttled += 1
    if closed:
        reasons.append(HealthReason(
            code="backpressure_closed",
            severity=DEGRADED,
            value=float(closed),
            detail=f"{closed} backpressure valves fully closed",
        ))
    if throttled:
        reasons.append(HealthReason(
            code="backpressure_throttled",
            severity=DEGRADED,
            value=float(throttled),
            detail=f"{throttled} backpressure valves throttled",
        ))

    staleness = 0
    for server in servers:
        for lag in server.standby_staleness().values():
            staleness = max(staleness, lag)
    for runner in runners:
        staleness = max(staleness, _runner_standby_lag(runner))
    if staleness > max_standby_staleness:
        reasons.append(HealthReason(
            code="standby_staleness",
            severity=DEGRADED,
            value=float(staleness),
            detail=(
                f"worst standby replica is {staleness} changelog records "
                f"behind (> {max_standby_staleness})"
            ),
        ))

    status = HEALTHY
    for reason in reasons:
        if _SEVERITY_RANK[reason.severity] > _SEVERITY_RANK[status]:
            status = reason.severity

    return ClusterHealthReport(
        status=status,
        reasons=tuple(reasons),
        checked_at=now,
        live_brokers=live,
        total_brokers=total,
        offline_partitions=offline,
        under_replicated=under_replicated,
        max_group_lag=worst_lag,
        open_transactions=open_count,
        lso_lag=lso_total,
        closed_valves=closed,
        throttled_valves=throttled,
        max_standby_staleness=staleness,
    )
