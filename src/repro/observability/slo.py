"""Declarative SLOs with multi-window burn-rate alerting.

The paper's §5.1 operational-analysis use case assumes the system's own
signals are continuously evaluable; Reactive Liquid (arXiv:1902.05968)
makes the same point for elasticity decisions.  This module supplies the
evaluation half: an :class:`Slo` declares an objective over one signal
(end-to-end freshness, consumer lag, ISR availability, standby staleness —
or anything a caller observes), and :class:`SloMonitor` classifies each
observation as good or bad, keeps sliding windows, and fires alerts on the
SRE-style *multi-window burn rate*: the alert fires only when both a short
and a long window burn error budget faster than a threshold, and resolves
with hysteresis so a signal hovering at the boundary cannot flap.

Everything is driven by the deterministic sim clock — same run, same
alerts, byte for byte.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.common.clock import SimClock
from repro.common.errors import ConfigError

#: Alert states.
ALERT_FIRING = "firing"
ALERT_RESOLVED = "resolved"

#: Directions: whether the signal is good when it stays at-or-below the
#: objective (latency-like) or at-or-above it (availability-like).
BELOW = "below"
ABOVE = "above"


@dataclass(frozen=True)
class Slo:
    """One declarative objective over one observed signal.

    ``error_budget`` is the fraction of observations allowed to be bad;
    the *burn rate* of a window is ``bad_fraction / error_budget`` — 1.0
    means budget is being consumed exactly as provisioned, 2.0 means twice
    as fast.  An alert fires when **both** windows burn at or above
    ``burn_threshold`` and resolves only when both drop below
    ``clear_threshold`` (hysteresis).
    """

    name: str
    signal: str                      # human label, e.g. "freshness_seconds"
    objective: float                 # good/bad boundary on the signal value
    direction: str = BELOW           # good when value <= objective (BELOW)
    short_window: float = 30.0       # seconds of sim time
    long_window: float = 300.0
    error_budget: float = 0.01       # allowed bad fraction
    burn_threshold: float = 2.0      # fire when both burns >= this
    clear_threshold: float = 1.0     # resolve when both burns < this

    def __post_init__(self) -> None:
        if self.direction not in (BELOW, ABOVE):
            raise ConfigError(
                f"slo {self.name!r}: direction must be {BELOW!r} or {ABOVE!r}"
            )
        if not 0 < self.error_budget <= 1:
            raise ConfigError(
                f"slo {self.name!r}: error_budget must be in (0, 1]"
            )
        if self.short_window <= 0 or self.long_window < self.short_window:
            raise ConfigError(
                f"slo {self.name!r}: need 0 < short_window <= long_window"
            )
        if self.clear_threshold > self.burn_threshold:
            raise ConfigError(
                f"slo {self.name!r}: clear_threshold must not exceed "
                f"burn_threshold (hysteresis band)"
            )

    def is_good(self, value: float) -> bool:
        if self.direction == BELOW:
            return value <= self.objective
        return value >= self.objective


@dataclass(frozen=True)
class Alert:
    """A typed alert record: one edge of one SLO's firing state."""

    slo: str
    signal: str
    state: str                       # ALERT_FIRING | ALERT_RESOLVED
    burn_short: float
    burn_long: float
    timestamp: float
    reason: str

    def as_dict(self) -> dict:
        return {
            "slo": self.slo,
            "signal": self.signal,
            "state": self.state,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "timestamp": self.timestamp,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class SloStatus:
    """Point-in-time view of one SLO for reports."""

    slo: str
    firing: bool
    burn_short: float
    burn_long: float
    samples: int

    def as_dict(self) -> dict:
        return {
            "slo": self.slo,
            "firing": self.firing,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "samples": self.samples,
        }


class _Window:
    """Sliding window of (timestamp, good) samples for one SLO."""

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: deque[tuple[float, bool]] = deque()

    def append(self, timestamp: float, good: bool) -> None:
        self.samples.append((timestamp, good))

    def prune(self, horizon: float) -> None:
        samples = self.samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    def bad_fraction(self, since: float) -> float:
        total = bad = 0
        for timestamp, good in self.samples:
            if timestamp >= since:
                total += 1
                if not good:
                    bad += 1
        if total == 0:
            # An empty window burns no budget: absence of evidence never
            # fires (and lets a firing alert resolve after a clock jump).
            return 0.0
        return bad / total


class SloMonitor:
    """Registers SLOs, ingests observations, and emits edge-triggered alerts.

    Callers (or :class:`ClusterSloSampler`) push raw signal values via
    :meth:`observe`; :meth:`evaluate` computes both windows' burn rates for
    every SLO and returns the *edges* — an :data:`ALERT_FIRING` alert when a
    quiet SLO starts burning, an :data:`ALERT_RESOLVED` alert when a firing
    one calms down past the hysteresis band.  Steady states emit nothing,
    so the alert feed stays quiet unless something changes.
    """

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._slos: dict[str, Slo] = {}
        self._windows: dict[str, _Window] = {}
        self._firing: dict[str, bool] = {}
        self.alerts_emitted = 0

    # -- registration ------------------------------------------------------------

    def register(self, slo: Slo) -> Slo:
        if slo.name in self._slos:
            raise ConfigError(f"slo {slo.name!r} already registered")
        self._slos[slo.name] = slo
        self._windows[slo.name] = _Window()
        self._firing[slo.name] = False
        return slo

    def slos(self) -> list[Slo]:
        return [self._slos[name] for name in sorted(self._slos)]

    def __contains__(self, name: str) -> bool:
        return name in self._slos

    # -- ingestion ---------------------------------------------------------------

    def observe(self, name: str, value: float, timestamp: float | None = None) -> bool:
        """Classify one signal value against its SLO; returns goodness."""
        slo = self._slos.get(name)
        if slo is None:
            raise ConfigError(f"unknown slo {name!r}")
        if timestamp is None:
            timestamp = self.clock.now()
        good = slo.is_good(value)
        self._windows[name].append(timestamp, good)
        return good

    # -- evaluation --------------------------------------------------------------

    def burn_rates(self, name: str, now: float | None = None) -> tuple[float, float]:
        """(short, long) burn-rate multiples for one SLO."""
        slo = self._slos.get(name)
        if slo is None:
            raise ConfigError(f"unknown slo {name!r}")
        if now is None:
            now = self.clock.now()
        window = self._windows[name]
        short = window.bad_fraction(now - slo.short_window) / slo.error_budget
        long = window.bad_fraction(now - slo.long_window) / slo.error_budget
        return short, long

    def evaluate(self, now: float | None = None) -> list[Alert]:
        """Advance every SLO's alert state; return the edges crossed."""
        if now is None:
            now = self.clock.now()
        alerts: list[Alert] = []
        for name in sorted(self._slos):
            slo = self._slos[name]
            window = self._windows[name]
            window.prune(now - slo.long_window)
            short, long = self.burn_rates(name, now)
            firing = self._firing[name]
            if not firing:
                if short >= slo.burn_threshold and long >= slo.burn_threshold:
                    self._firing[name] = True
                    alerts.append(Alert(
                        slo=name,
                        signal=slo.signal,
                        state=ALERT_FIRING,
                        burn_short=short,
                        burn_long=long,
                        timestamp=now,
                        reason=(
                            f"burn {short:.2f}x/{long:.2f}x >= "
                            f"{slo.burn_threshold:.2f}x in both windows"
                        ),
                    ))
            else:
                if short < slo.clear_threshold and long < slo.clear_threshold:
                    self._firing[name] = False
                    alerts.append(Alert(
                        slo=name,
                        signal=slo.signal,
                        state=ALERT_RESOLVED,
                        burn_short=short,
                        burn_long=long,
                        timestamp=now,
                        reason=(
                            f"burn {short:.2f}x/{long:.2f}x < "
                            f"{slo.clear_threshold:.2f}x in both windows"
                        ),
                    ))
        self.alerts_emitted += len(alerts)
        return alerts

    def is_firing(self, name: str) -> bool:
        if name not in self._slos:
            raise ConfigError(f"unknown slo {name!r}")
        return self._firing[name]

    def status(self, now: float | None = None) -> list[SloStatus]:
        if now is None:
            now = self.clock.now()
        out = []
        for name in sorted(self._slos):
            short, long = self.burn_rates(name, now)
            out.append(SloStatus(
                slo=name,
                firing=self._firing[name],
                burn_short=short,
                burn_long=long,
                samples=len(self._windows[name].samples),
            ))
        return out


# -- the standard signal set -----------------------------------------------------

#: Default SLO names wired by :class:`ClusterSloSampler`.
SLO_FRESHNESS = "freshness"
SLO_CONSUMER_LAG = "consumer_lag"
SLO_ISR_AVAILABILITY = "isr_availability"
SLO_STANDBY_STALENESS = "standby_staleness"


def standard_slos(
    *,
    freshness_objective: float = 30.0,
    lag_objective: float = 1000.0,
    staleness_objective: float = 1000.0,
    short_window: float = 30.0,
    long_window: float = 300.0,
    error_budget: float = 0.05,
) -> list[Slo]:
    """The four paper-motivated objectives with sensible defaults."""
    return [
        Slo(
            name=SLO_FRESHNESS,
            signal="freshness_seconds",
            objective=freshness_objective,
            direction=BELOW,
            short_window=short_window,
            long_window=long_window,
            error_budget=error_budget,
        ),
        Slo(
            name=SLO_CONSUMER_LAG,
            signal="total_lag_records",
            objective=lag_objective,
            direction=BELOW,
            short_window=short_window,
            long_window=long_window,
            error_budget=error_budget,
        ),
        Slo(
            name=SLO_ISR_AVAILABILITY,
            signal="in_sync_fraction",
            objective=1.0,
            direction=ABOVE,
            short_window=short_window,
            long_window=long_window,
            error_budget=error_budget,
        ),
        Slo(
            name=SLO_STANDBY_STALENESS,
            signal="standby_lag_records",
            objective=staleness_objective,
            direction=BELOW,
            short_window=short_window,
            long_window=long_window,
            error_budget=error_budget,
        ),
    ]


class ClusterSloSampler:
    """Feeds the standard signals into an :class:`SloMonitor` from live state.

    One call to :meth:`sample` observes, for the wired deployment:

    - **freshness** — each job runner's last processed-record age;
    - **consumer lag** — total lag summed over non-system consumer groups;
    - **ISR availability** — fraction of partitions fully in sync;
    - **standby staleness** — worst standby-replica changelog lag.

    The telemetry exporter calls this on its cadence when given a monitor
    built by :func:`attach_standard_slos`, closing the loop: the system's
    own feeds carry the alerts about the system.
    """

    def __init__(
        self,
        monitor: SloMonitor,
        cluster,
        runners: Iterable = (),
        servers: Iterable = (),
    ) -> None:
        self.monitor = monitor
        self.cluster = cluster
        self.runners = list(runners)
        self.servers = list(servers)
        for slo in standard_slos():
            if slo.name not in monitor:
                monitor.register(slo)

    def sample(self, now: float | None = None) -> None:
        if now is None:
            now = self.cluster.clock.now()
        monitor = self.monitor
        for runner in self.runners:
            monitor.observe(SLO_FRESHNESS, runner.freshness(), timestamp=now)
        monitor.observe(
            SLO_CONSUMER_LAG, float(self._total_lag()), timestamp=now
        )
        monitor.observe(
            SLO_ISR_AVAILABILITY, self._in_sync_fraction(), timestamp=now
        )
        monitor.observe(
            SLO_STANDBY_STALENESS, float(self._max_standby_lag()), timestamp=now
        )

    # -- signal collection -------------------------------------------------------

    def _total_lag(self) -> int:
        # Runtime import: tools.admin imports messaging; keep this module
        # import-light so observability never drags messaging in eagerly.
        from repro.tools.admin import AdminClient

        lags = AdminClient(self.cluster).all_group_lags()
        return sum(
            lag for group, lag in lags.items() if not group.startswith("__")
        )

    def _in_sync_fraction(self) -> float:
        from repro.tools.admin import AdminClient

        admin = AdminClient(self.cluster)
        total = sum(
            len(self.cluster.partitions_of(topic))
            for topic in self.cluster.topics()
        )
        if total == 0:
            return 1.0
        behind = len(admin.under_replicated_partitions())
        return (total - behind) / total

    def _max_standby_lag(self) -> int:
        worst = 0
        for server in self.servers:
            for lag in server.standby_staleness().values():
                worst = max(worst, lag)
        for runner in self.runners:
            worst = max(worst, _runner_standby_lag(runner))
        return worst


def _runner_standby_lag(runner) -> int:
    """Worst changelog lag across a runner's standby replica sets."""
    worst = 0
    for task_id in range(runner.num_tasks):
        for replica_set in runner.standby_replicas(task_id):
            for replica in replica_set.values():
                worst = max(worst, replica.lag())
    return worst


def attach_standard_slos(
    cluster,
    runners: Iterable = (),
    servers: Iterable = (),
    monitor: SloMonitor | None = None,
) -> tuple[SloMonitor, ClusterSloSampler]:
    """Convenience: a monitor with the standard SLOs wired to live state."""
    if monitor is None:
        monitor = SloMonitor(cluster.clock)
    sampler = ClusterSloSampler(monitor, cluster, runners=runners, servers=servers)
    return monitor, sampler
