"""Self-hosted telemetry: Liquid monitors itself through its own feeds.

At LinkedIn the monitoring data itself flowed through the nearline layer
(§5.1 "operational analysis"); the Kafka design-patterns survey
(arXiv:2512.16146) documents metrics-over-the-log as the standard
production pattern.  This module closes that loop for the simulator: a
:class:`TelemetryExporter` runs on a deterministic sim-clock cadence and
publishes, through an **ordinary producer** into **reserved system feeds**,

- per-instrument *deltas* of the metrics registry (counter/gauge high-water
  marks, :meth:`Histogram.delta_snapshot` windows) into
  ``__telemetry.metrics``;
- spans drained from the installed tracer into ``__telemetry.spans``;
- edge-triggered SLO alerts from an attached :class:`SloMonitor` into
  ``__telemetry.alerts``.

Because the records travel ordinary feeds, "the monitor is just another
job": anything that can consume a feed can consume the telemetry.

**No feedback loop.**  Exporting telemetry itself moves metrics (produce
counters, wire bytes, broker latencies).  Two guards keep the exporter from
amplifying itself: instruments in the ``observability.telemetry.*``
namespace are never exported, and after each cycle's sends the exporter
*absorbs* every delta its own traffic just generated (re-marks counters and
gauges, discards histogram windows) — sound because the simulator is
single-threaded, so nothing else can move a metric between the snapshot and
the absorb.  The tracer is uninstalled around the sends so telemetry
produces never create spans.

**Transparency.**  The exporter fires from sim-clock timers during
``cluster.tick`` and its produces never advance the clock, so a job's
drained output is byte-identical with telemetry enabled or disabled (pinned
by ``tests/properties/test_telemetry_transparency.py``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.common.clock import SimClock, TimerHandle
from repro.common.errors import ConfigError
from repro.common.metrics import Counter, Gauge, Histogram, metric_name
from repro.observability.slo import ClusterSloSampler, SloMonitor
from repro.observability.trace import current_tracer, install_tracer, uninstall_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.messaging.cluster import MessagingCluster
    from repro.observability.trace import Span, Tracer

#: Reserved system feeds.  The ``__`` prefix marks them as system-owned
#: (same convention as the offsets topic); ``Liquid.create_feed`` refuses
#: user feeds in this namespace.
TELEMETRY_PREFIX = "__telemetry."
TELEMETRY_METRICS_FEED = "__telemetry.metrics"
TELEMETRY_SPANS_FEED = "__telemetry.spans"
TELEMETRY_ALERTS_FEED = "__telemetry.alerts"

TELEMETRY_FEEDS = (
    TELEMETRY_METRICS_FEED,
    TELEMETRY_SPANS_FEED,
    TELEMETRY_ALERTS_FEED,
)


def is_telemetry_feed(name: str) -> bool:
    """True for the reserved ``__telemetry.*`` namespace."""
    return name.startswith(TELEMETRY_PREFIX)


#: The exporter's own instruments — excluded from export by namespace.
_SELF_NAMESPACE = "observability.telemetry."
_M_CYCLES = metric_name("observability", "telemetry", "export_cycles")
_M_METRIC_RECORDS = metric_name("observability", "telemetry", "metric_records")
_M_SPAN_RECORDS = metric_name("observability", "telemetry", "span_records")
_M_ALERT_RECORDS = metric_name("observability", "telemetry", "alert_records")


def span_record(span: "Span") -> dict[str, Any]:
    """Wire shape of one drained span."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "attrs": {str(k): v for k, v in sorted(span.attrs.items())},
    }


class TelemetryExporter:
    """Publishes metric deltas, spans, and alerts into the telemetry feeds.

    Cadence is a :class:`SimClock` timer (``start`` / ``stop``), so export
    points are deterministic; ``publish_once`` is also callable directly
    for one-shot exports (end of run, tests).
    """

    def __init__(
        self,
        cluster: "MessagingCluster",
        interval: float = 5.0,
        tracer: "Tracer | None" = None,
        slo_monitor: SloMonitor | None = None,
        sampler: ClusterSloSampler | None = None,
        partitions: int = 1,
        replication_factor: int | None = None,
    ) -> None:
        if interval <= 0:
            raise ConfigError(f"telemetry interval must be > 0, got {interval}")
        if not isinstance(cluster.clock, SimClock):
            raise ConfigError("TelemetryExporter needs the cluster's SimClock")
        if sampler is not None and slo_monitor is None:
            slo_monitor = sampler.monitor
        self.cluster = cluster
        self.interval = interval
        self.slo_monitor = slo_monitor
        self.sampler = sampler
        self._tracer = tracer
        self._partitions = partitions
        self._replication_factor = replication_factor
        self._ensure_feeds()
        # Runtime import: producer imports this package's trace module.
        from repro.messaging.producer import Producer

        # Linger high and flush once per cycle: each cycle's records land
        # as one batch per feed (the vectorized append path), which keeps
        # the exporter's wall-clock overhead inside the <=5% budget.
        self._producer = Producer(cluster, linger_messages=500)
        #: Counter/gauge high-water marks: name -> last exported value.
        self._marks: dict[str, float] = {}
        self._timer: TimerHandle | None = None
        self.running = False
        self.cycles = 0
        self.records_published = 0
        #: Real seconds spent inside publish cycles (self-measurement; the
        #: wall-clock benchmark gates this against the workload's wall).
        self.publish_wall_s = 0.0
        metrics = cluster.metrics
        self._c_cycles = metrics.counter(_M_CYCLES)
        self._c_metric_records = metrics.counter(_M_METRIC_RECORDS)
        self._c_span_records = metrics.counter(_M_SPAN_RECORDS)
        self._c_alert_records = metrics.counter(_M_ALERT_RECORDS)

    # -- feeds -------------------------------------------------------------------

    def _ensure_feeds(self) -> None:
        from repro.messaging.topic import TopicConfig

        replication = self._replication_factor
        if replication is None:
            replication = min(3, len(self.cluster.brokers()))
        existing = set(self.cluster.topics())
        for feed in TELEMETRY_FEEDS:
            if feed not in existing:
                self.cluster.create_topic(TopicConfig(
                    name=feed,
                    num_partitions=self._partitions,
                    replication_factor=replication,
                ))

    # -- scheduling --------------------------------------------------------------

    def start(self) -> None:
        """Begin exporting every ``interval`` simulated seconds."""
        if self.running:
            return
        self.running = True
        self._schedule_next()

    def stop(self) -> None:
        self.running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _schedule_next(self) -> None:
        self._timer = self.cluster.clock.schedule(self.interval, self._fire)

    def _fire(self) -> None:
        if not self.running:
            return
        self.publish_once()
        if self.running:
            self._schedule_next()

    # -- one export cycle --------------------------------------------------------

    def publish_once(self) -> dict[str, int]:
        """Export one cycle; returns record counts per feed."""
        wall_start = time.perf_counter()
        now = self.cluster.clock.now()
        if self.sampler is not None:
            self.sampler.sample(now)
        metric_records = self._collect_metric_deltas(now)
        spans = self._drain_spans()
        alerts = (
            self.slo_monitor.evaluate(now)
            if self.slo_monitor is not None
            else []
        )
        published = len(metric_records) + len(spans) + len(alerts)
        if published:
            with self._tracing_suppressed():
                for record in metric_records:
                    self._producer.send(
                        TELEMETRY_METRICS_FEED,
                        record,
                        key=record["metric"],
                        timestamp=now,
                    )
                for span in spans:
                    self._producer.send(
                        TELEMETRY_SPANS_FEED,
                        span_record(span),
                        key=span.trace_id,
                        timestamp=now,
                    )
                for alert in alerts:
                    self._producer.send(
                        TELEMETRY_ALERTS_FEED,
                        alert.as_dict(),
                        key=alert.slo,
                        timestamp=now,
                    )
                self._producer.flush()
        self.cycles += 1
        self.records_published += published
        self._c_cycles.increment()
        self._c_metric_records.increment(len(metric_records))
        self._c_span_records.increment(len(spans))
        self._c_alert_records.increment(len(alerts))
        if published:
            # Feedback-loop guard, part 2: everything that moved since the
            # snapshot above was moved by our own sends (single-threaded
            # sim), so absorb it — next cycle exports only non-telemetry
            # activity.  (An empty cycle sent nothing: skip the walk.)
            self._absorb_own_traffic()
        self.publish_wall_s += time.perf_counter() - wall_start
        return {
            "metrics": len(metric_records),
            "spans": len(spans),
            "alerts": len(alerts),
        }

    # -- collection --------------------------------------------------------------

    def _collect_metric_deltas(self, now: float) -> list[dict[str, Any]]:
        records: list[dict[str, Any]] = []
        marks = self._marks
        for name in self.cluster.metrics.names():
            if name.startswith(_SELF_NAMESPACE):
                continue  # feedback-loop guard, part 1
            metric = self.cluster.metrics.get(name)
            if isinstance(metric, Counter):
                delta = metric.value - marks.get(name, 0.0)
                if delta == 0.0:
                    continue
                marks[name] = metric.value
                records.append({
                    "metric": name,
                    "kind": "counter",
                    "delta": delta,
                    "value": metric.value,
                    "timestamp": now,
                })
            elif isinstance(metric, Gauge):
                if marks.get(name) == metric.value:
                    continue
                marks[name] = metric.value
                records.append({
                    "metric": name,
                    "kind": "gauge",
                    "value": metric.value,
                    "timestamp": now,
                })
            elif isinstance(metric, Histogram):
                window = metric.delta_snapshot()
                if window["count"] == 0:
                    continue
                records.append({
                    "metric": name,
                    "kind": "histogram",
                    "timestamp": now,
                    **window,
                })
        return records

    def _drain_spans(self) -> list["Span"]:
        tracer = self._tracer if self._tracer is not None else current_tracer()
        if tracer is None:
            return []
        drained = tracer.drain()
        # Defense in depth: tracing is suppressed around our own sends, but
        # never ship a span about telemetry traffic even if one sneaks in.
        return [
            span
            for span in drained
            if not is_telemetry_feed(str(span.attrs.get("topic", "")))
        ]

    def _absorb_own_traffic(self) -> None:
        marks = self._marks
        for name in self.cluster.metrics.names():
            metric = self.cluster.metrics.get(name)
            if isinstance(metric, (Counter, Gauge)):
                marks[name] = metric.value
            elif isinstance(metric, Histogram):
                metric.discard_delta()

    @contextmanager
    def _tracing_suppressed(self) -> Iterator[None]:
        tracer = current_tracer()
        if tracer is None:
            yield
            return
        uninstall_tracer()
        try:
            yield
        finally:
            install_tracer(tracer)
