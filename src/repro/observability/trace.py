"""Per-record distributed tracing (§5.1 "operational analysis").

The paper's operational-analysis use case assumes every hop a record takes
through the stack is observable and attributable.  The aggregate metrics in
:mod:`repro.common.metrics` answer "how is the produce path doing overall?";
this module answers "what happened to *this* record?" — produce, leader
append, replication fan-out, (cold-tier) fetch, consume, job execution, and
the append into any derived feed the job emits to, as one connected tree of
:class:`Span`\\ s sharing a trace id.

Design constraints, in order:

1. **Observe, never mutate.**  A traced run must be byte-identical to an
   untraced run: same record contents, same offsets, same simulated
   latencies, same metrics.  The :class:`TraceContext` travels in the
   reserved ``__trace`` record header
   (:data:`repro.common.records.TRACE_HEADER`), which every size-accounting
   path excludes, so injecting it perturbs nothing the simulation measures
   (property-tested in ``tests/properties/test_trace_transparency.py``).
2. **Free when off.**  Following the failpoint pattern
   (:mod:`repro.chaos.failpoints`), every hot-path hook starts with one
   ``current_tracer() is None`` check and does nothing else when no tracer
   is installed — guarded against ``bench_wallclock.py``.
3. **Bounded.**  Spans land in a ring buffer (``capacity`` spans, oldest
   evicted first) and head-based sampling (``sample_rate``) decides at the
   root whether a record is traced at all, so tracing can stay on in
   long soaks.
4. **Deterministic.**  Trace ids come from a seeded RNG and span ids from a
   counter — never the wall clock — so traced runs replay identically.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.common.errors import ConfigError
from repro.common.records import TRACE_HEADER

__all__ = [
    "TraceContext",
    "Span",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "tracing",
    "TRACE_HEADER",
]


@dataclass(frozen=True, slots=True)
class TraceContext:
    """What propagates between stages: the trace plus the parent span.

    Producers inject it into the ``__trace`` record header; every later
    stage parents its span on ``span_id`` and passes the header through
    untouched (jobs re-stamp it so derived-feed records continue the same
    trace under the emitting task's span).
    """

    trace_id: str
    span_id: int


@dataclass(slots=True)
class Span:
    """One stage of one record's journey, on the simulated clock."""

    trace_id: str
    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def context(self) -> TraceContext:
        """Context a child stage should parent on."""
        return TraceContext(self.trace_id, self.span_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, [{self.start:.6f}..{self.end:.6f}])"
        )


class Tracer:
    """Collects spans into a bounded ring buffer with head-based sampling.

    ``sample_rate=1`` (the default, used by tests) traces every record;
    ``sample_rate=N`` traces one in every N *new* traces — the decision is
    made once at the root (``Producer.send`` of an untraced record) and
    inherited by every downstream stage, so a trace is always complete or
    absent, never partial.
    """

    def __init__(
        self,
        sample_rate: int = 1,
        capacity: int = 65536,
        seed: int = 0,
    ) -> None:
        if sample_rate < 1:
            raise ConfigError(f"sample_rate must be >= 1, got {sample_rate}")
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.sample_rate = sample_rate
        self.capacity = capacity
        # Deterministic ids: seeded RNG for trace ids, counter for span ids.
        self._rng = random.Random(seed)
        self._next_span_id = itertools.count(1)
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._roots_considered = 0
        self.traces_started = 0
        self.traces_sampled_out = 0
        self.spans_recorded = 0

    # -- span lifecycle -----------------------------------------------------------

    def open_span(
        self,
        name: str,
        parent: TraceContext | None,
        start: float,
        **attrs: Any,
    ) -> Span | None:
        """Open a span; ``parent=None`` starts a new trace (sampled).

        Returns ``None`` when head-based sampling rejects a new root —
        callers then skip all tracing work for that record.  A span with a
        parent context is never sampled out (the decision was made at the
        root).  The span is not in the buffer until :meth:`close`.
        """
        if parent is None:
            self._roots_considered += 1
            if (self._roots_considered - 1) % self.sample_rate != 0:
                self.traces_sampled_out += 1
                return None
            trace_id = f"{self._rng.getrandbits(48):012x}"
            parent_id = None
            self.traces_started += 1
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(
            trace_id, next(self._next_span_id), parent_id, name, start, start,
            attrs,
        )

    def close(self, span: Span, end: float | None = None) -> Span:
        """Finish an open span and commit it to the ring buffer."""
        if end is not None:
            if end < span.start:
                raise ConfigError(
                    f"span {span.name!r} ends before it starts "
                    f"({end} < {span.start})"
                )
            span.end = end
        self._spans.append(span)
        self.spans_recorded += 1
        return span

    def record(
        self,
        name: str,
        ctx: TraceContext,
        start: float,
        end: float,
        **attrs: Any,
    ) -> Span:
        """One-shot span for stages whose timing is known when they finish."""
        span = Span(
            ctx.trace_id, next(self._next_span_id), ctx.span_id, name, start,
            end, attrs,
        )
        return self.close(span)

    # -- queries ------------------------------------------------------------------

    def spans(self) -> list[Span]:
        """All retained spans, in completion order."""
        return list(self._spans)

    def drain(self) -> list[Span]:
        """Remove and return all retained spans, in completion order.

        The telemetry exporter calls this each cycle so every span is
        shipped exactly once; ``spans_recorded`` keeps counting across
        drains.
        """
        spans = list(self._spans)
        self._spans.clear()
        return spans

    def spans_for(self, trace_id: str) -> list[Span]:
        """Retained spans of one trace, ordered by (start, span id)."""
        found = [s for s in self._spans if s.trace_id == trace_id]
        found.sort(key=lambda s: (s.start, s.span_id))
        return found

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in the buffer, ordered by first appearance."""
        seen: dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    @property
    def spans_dropped(self) -> int:
        """Spans evicted by the ring buffer since construction."""
        return self.spans_recorded - len(self._spans)

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Tracer(spans={len(self._spans)}/{self.capacity}, "
            f"traces={self.traces_started}, "
            f"sample_rate={self.sample_rate})"
        )


# ---------------------------------------------------------------------------
# Installation: one process-wide tracer, mirroring the failpoint registry.
# ---------------------------------------------------------------------------

_ACTIVE: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` — the hot-path guard check."""
    return _ACTIVE


def install_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer; returns it."""
    global _ACTIVE
    if not isinstance(tracer, Tracer):
        raise ConfigError(f"expected a Tracer, got {type(tracer).__name__}")
    _ACTIVE = tracer
    return tracer


def uninstall_tracer() -> None:
    """Remove the installed tracer (hot paths return to the no-op check)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of a ``with`` block::

        with tracing() as tracer:
            liquid.producer().send("feed", value)
        print(render_timeline(tracer.trace_ids()[0], tracer))
    """
    installed = install_tracer(tracer if tracer is not None else Tracer())
    try:
        yield installed
    finally:
        uninstall_tracer()
