"""repro — a from-scratch reproduction of Liquid (CIDR 2015).

Liquid is LinkedIn's nearline data integration stack: a highly-available
publish/subscribe *messaging layer* (Apache Kafka) underneath a stateful
stream-processing *processing layer* (Apache Samza).  This package rebuilds
both layers, their substrates (segmented commit logs, a simulated OS page
cache, a ZooKeeper-like coordinator, an LSM state store), and the systems
the paper compares against (an MR/DFS stack, the Lambda and Kappa
architectures), all over a deterministic simulated clock.

Public entry point::

    from repro import Liquid

    liquid = Liquid(num_brokers=3)
    liquid.create_feed("page-views", partitions=4)

See README.md for the architecture tour and examples/ for runnable
scenarios.
"""

from repro.common.clock import SimClock
from repro.common.costmodel import CostModel
from repro.common.errors import LiquidError
from repro.common.records import ConsumerRecord, ProducerRecord, TopicPartition
from repro.core.liquid import Liquid
from repro.messaging.cluster import MessagingCluster
from repro.messaging.consumer import Consumer
from repro.messaging.producer import Producer
from repro.processing.job import JobConfig, JobRunner, StoreConfig

__version__ = "0.1.0"

__all__ = [
    "Liquid",
    "MessagingCluster",
    "Producer",
    "Consumer",
    "JobConfig",
    "JobRunner",
    "StoreConfig",
    "SimClock",
    "CostModel",
    "LiquidError",
    "TopicPartition",
    "ProducerRecord",
    "ConsumerRecord",
    "__version__",
]
