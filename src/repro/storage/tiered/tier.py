"""The cold tier of one partition: manifest + archiver + reader, stitched.

:class:`ColdTier` is what the messaging layer holds per tiered partition
replica.  It bundles the three tiered-storage pieces around the partition's
hot :class:`~repro.storage.log.PartitionLog` and provides the one read
operation the broker needs: :meth:`read_through`, which serves an offset
range that may start in the archive and continue seamlessly into the hot
log — the §2.2 rewindability claim made real after retention has truncated
the hot tier.
"""

from __future__ import annotations

from repro.common.clock import Clock
from repro.common.errors import OffsetOutOfRangeError
from repro.common.metrics import MetricsRegistry, metric_name
from repro.storage.log import PartitionLog, ReadResult
from repro.storage.tiered.archiver import SegmentArchiver
from repro.storage.tiered.coldreader import ColdReader
from repro.storage.tiered.config import TieredConfig
from repro.storage.tiered.manifest import TierManifest
from repro.storage.tiered.objectstore import ObjectStore

# Metric names precomputed once (layer.component.metric convention).
_M_COLD_READS = metric_name("storage", "tiered", "cold_reads")
_M_COLD_READ_LATENCY = metric_name("storage", "tiered", "cold_read_latency")


class ColdTier:
    """Cold-tier state and read path for one partition replica."""

    def __init__(
        self,
        log: PartitionLog,
        store: ObjectStore,
        namespace: str,
        config: TieredConfig | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.log = log
        self.config = config if config is not None else TieredConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        clock = clock if clock is not None else log.clock
        self.manifest = TierManifest()
        self.archiver = SegmentArchiver(
            store, self.manifest, namespace, clock, self.metrics
        )
        self.reader = ColdReader(
            store,
            self.manifest,
            clock,
            cost_model=log.cost_model,
            page_cache=log.page_cache,
            hydration_cache_bytes=self.config.hydration_cache_bytes,
            metrics=self.metrics,
        )

    # -- offsets ---------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.manifest.is_empty

    @property
    def earliest_offset(self) -> int:
        """Oldest readable offset across both tiers."""
        start = self.manifest.start_offset
        if start is None:
            return self.log.log_start_offset
        return min(start, self.log.log_start_offset)

    def covers(self, offset: int) -> bool:
        """True iff the archive can serve a read starting at ``offset``."""
        start = self.manifest.start_offset
        end = self.manifest.end_offset
        return start is not None and start <= offset < end

    # -- read path ---------------------------------------------------------------

    def read_through(
        self,
        offset: int,
        max_messages: int = 100,
        max_bytes: int | None = None,
    ) -> ReadResult:
        """Read from the archive, continuing into the hot log if budget remains.

        ``log_end_offset`` of the result is the *hot* log's end offset, so
        callers see the same sequencing surface as a pure hot read.  Raises
        :class:`OffsetOutOfRangeError` (with the full tiered range) when
        ``offset`` precedes the oldest archived record.
        """
        if offset < self.earliest_offset:
            raise OffsetOutOfRangeError(
                offset, self.earliest_offset, self.log.log_end_offset
            )
        if not self.covers(offset):
            return self.log.read(offset, max_messages, max_bytes)
        cold = self.reader.read(offset, max_messages, max_bytes)
        self.metrics.counter(_M_COLD_READS).increment()
        self.metrics.histogram(_M_COLD_READ_LATENCY).observe(cold.latency)
        messages = cold.messages
        latency = cold.latency
        next_offset = cold.next_offset
        remaining = max_messages - len(messages)
        byte_budget = None
        if max_bytes is not None:
            byte_budget = max_bytes - sum(m.stored_size for m in messages)
        # The archive ended at or before the hot log's start; continue the
        # scan in the hot tier when the caller's budgets are not exhausted.
        if (
            remaining > 0
            and (byte_budget is None or byte_budget > 0)
            and next_offset >= self.log.log_start_offset
            and next_offset < self.log.log_end_offset
        ):
            hot = self.log.read(
                max(next_offset, self.log.log_start_offset),
                remaining,
                byte_budget,
            )
            messages = messages + hot.messages
            latency += hot.latency
            next_offset = hot.next_offset
        return ReadResult(
            messages, latency, self.log.log_end_offset, next_offset
        )

    def offset_for_timestamp(self, timestamp: float) -> int | None:
        """Tier-spanning timestamp lookup: archive first, then hot log."""
        found = self.reader.offset_for_timestamp(timestamp)
        if found is not None:
            return found
        return self.log.offset_for_timestamp(timestamp)

    # -- operational stats --------------------------------------------------------

    def stats(self) -> dict[str, float | int | None]:
        """Per-partition snapshot for the admin surface."""
        return {
            "archived_segments": self.manifest.segment_count,
            "archived_bytes": self.manifest.total_bytes,
            "archived_messages": self.manifest.total_messages,
            "archived_start_offset": self.manifest.start_offset,
            "archived_end_offset": self.manifest.end_offset,
            "hydrated_segments": self.reader.hydrated_segments,
            "hydrated_bytes": self.reader.hydrated_bytes,
            "cold_hits": self.reader.hits,
            "cold_misses": self.reader.misses,
            "cold_hit_ratio": self.reader.hit_ratio,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColdTier({self.archiver.namespace!r}, "
            f"archived=[{self.manifest.start_offset}, "
            f"{self.manifest.end_offset}), hot_start="
            f"{self.log.log_start_offset})"
        )
