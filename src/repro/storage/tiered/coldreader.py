"""Cold reads: lazily hydrate archived segments and serve them at RAM speed.

A rewinding consumer that drops below the hot log's start offset lands here.
The reader locates the archived segment through the manifest, *hydrates* it
(one whole-object cold fetch, charged to the cold cost model — the expensive
step), then serves records out of a bounded local cache:

* the **hydration cache** holds the fetched record runs, LRU-evicted under a
  byte cap, so one backfill does not hold unbounded history in memory;
* hydrated pages are also **installed into the shared page cache** (clean,
  with no extra read charge — the cold fetch already paid for the transfer),
  so repeat reads of the same history cost RAM time, and under the
  anti-caching eviction policy cold pages are the first to go when the hot
  head needs the space (cold file ids sort before hot segment files).

This is the paper's §4.1 rewind story ("a few seconds" of seek-then-stream,
then fast sequential reads) extended across the tier boundary: the first
touch of archived history pays the cold fetch, the rest of the scan streams.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from itertools import accumulate

from repro.common.clock import Clock
from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import OffsetOutOfRangeError
from repro.common.metrics import MetricsRegistry, metric_name
from repro.common.records import StoredMessage
from repro.storage.log import ReadResult
from repro.storage.pagecache import PageCache
from repro.storage.tiered.manifest import ArchivedSegment, TierManifest
from repro.storage.tiered.objectstore import ObjectStore

# Metric names precomputed once (layer.component.metric convention).
_M_COLD_HITS = metric_name("storage", "tiered", "cold_hits")
_M_COLD_FETCHES = metric_name("storage", "tiered", "cold_fetches")
_M_BYTES_HYDRATED = metric_name("storage", "tiered", "bytes_hydrated")
_M_HYDRATION_LATENCY = metric_name("storage", "tiered", "hydration_latency")
_M_HYDRATION_EVICTIONS = metric_name("storage", "tiered", "hydration_evictions")
_M_COLD_RECORDS_READ = metric_name("storage", "tiered", "cold_records_read")

#: Cold page-cache file ids start with "!" so they sort *before* every hot
#: segment file: the append-order ("anti-caching") eviction policy evicts the
#: oldest data first, and archived history is by definition the oldest data
#: in the system — a backfill can never displace the hot head of the log.
COLD_FILE_PREFIX = "!cold/"


class _HydratedSegment:
    """One archived segment's records, resident in the hydration cache."""

    __slots__ = ("records", "offsets", "positions", "size_bytes")

    def __init__(self, records: list[StoredMessage], size_bytes: int) -> None:
        self.records = records
        self.offsets = [r.offset for r in records]
        # positions[i] = byte offset of record i; final element = total size,
        # so served byte ranges are prefix-sum arithmetic as in LogSegment.
        # Physical (stored) sizes: compressed archives hydrate and serve at
        # their compressed footprint, matching entry.size_bytes.
        self.positions = list(
            accumulate((r.stored_size for r in records), initial=0)
        )
        self.size_bytes = size_bytes


class ColdReader:
    """Reads archived offset ranges through a bounded hydration cache."""

    def __init__(
        self,
        store: ObjectStore,
        manifest: TierManifest,
        clock: Clock,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        page_cache: PageCache | None = None,
        hydration_cache_bytes: int = 64 * 1024 * 1024,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.manifest = manifest
        self.clock = clock
        self.cost_model = cost_model
        self.page_cache = page_cache
        self.hydration_cache_bytes = hydration_cache_bytes
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hydrated: OrderedDict[str, _HydratedSegment] = OrderedDict()
        self._hydrated_bytes = 0
        self.hits = 0
        self.misses = 0

    # -- hydration cache ---------------------------------------------------------

    def _file_id(self, object_key: str) -> str:
        return COLD_FILE_PREFIX + object_key

    def _hydrate(self, entry: ArchivedSegment) -> tuple[_HydratedSegment, float]:
        """Return the hydrated segment, fetching from the cold store on miss."""
        cached = self._hydrated.get(entry.object_key)
        if cached is not None:
            self._hydrated.move_to_end(entry.object_key)
            self.hits += 1
            self.metrics.counter(_M_COLD_HITS).increment()
            return cached, 0.0
        self.misses += 1
        self.metrics.counter(_M_COLD_FETCHES).increment()
        got = self.store.get(entry.object_key)
        hydrated = _HydratedSegment(got.records, entry.size_bytes)
        self._hydrated[entry.object_key] = hydrated
        self._hydrated_bytes += entry.size_bytes
        if self.page_cache is not None:
            self.page_cache.install(
                self._file_id(entry.object_key), 0, entry.size_bytes
            )
        self._evict_to_cap()
        self.metrics.counter(_M_BYTES_HYDRATED).increment(entry.size_bytes)
        self.metrics.histogram(_M_HYDRATION_LATENCY).observe(got.latency)
        return hydrated, got.latency

    def _evict_to_cap(self) -> None:
        while (
            self._hydrated_bytes > self.hydration_cache_bytes
            and len(self._hydrated) > 1  # keep the segment being served
        ):
            key, victim = self._hydrated.popitem(last=False)
            self._hydrated_bytes -= victim.size_bytes
            if self.page_cache is not None:
                self.page_cache.forget_file(self._file_id(key))
            self.metrics.counter(_M_HYDRATION_EVICTIONS).increment()

    # -- read path ------------------------------------------------------------------

    def read(
        self,
        offset: int,
        max_messages: int = 100,
        max_bytes: int | None = None,
    ) -> ReadResult:
        """Read archived records with offset >= ``offset``.

        Stops at the end of the archive (``next_offset`` then equals the
        archive's end offset, which is where the hot log picks up).  Raises
        :class:`OffsetOutOfRangeError` when ``offset`` precedes the oldest
        archived record.
        """
        start = self.manifest.start_offset
        end = self.manifest.end_offset
        if start is None or end is None or offset < start:
            raise OffsetOutOfRangeError(offset, start if start is not None else 0, end if end is not None else 0)
        collected: list[StoredMessage] = []
        latency = 0.0
        byte_budget = max_bytes if max_bytes is not None else 1 << 62
        cursor = offset
        entry = self.manifest.entry_for(offset)
        while entry is not None and len(collected) < max_messages:
            hydrated, fetch_latency = self._hydrate(entry)
            latency += fetch_latency
            idx = bisect_left(hydrated.offsets, cursor)
            stop = min(len(hydrated.records), idx + max_messages - len(collected))
            keep = idx
            while keep < stop:
                size = hydrated.records[keep].stored_size
                if size > byte_budget and (collected or keep > idx):
                    break  # Kafka semantics: always deliver >= 1 record
                byte_budget -= size
                keep += 1
            if keep > idx:
                nbytes = hydrated.positions[keep] - hydrated.positions[idx]
                latency += self._charge_read(
                    entry.object_key, hydrated.positions[idx], nbytes
                )
                collected.extend(hydrated.records[idx:keep])
                cursor = hydrated.offsets[keep - 1] + 1
                self.metrics.counter(_M_COLD_RECORDS_READ).increment(
                    keep - idx
                )
            if keep < stop or byte_budget <= 0:
                break  # byte budget exhausted mid-segment
            entry = self.manifest.next_entry(entry)
            if entry is not None:
                cursor = max(cursor, entry.first_offset)
        next_offset = collected[-1].offset + 1 if collected else offset
        if entry is None and len(collected) < max_messages and byte_budget > 0:
            # Ran off the end of the archive: the hot log continues at `end`.
            next_offset = max(next_offset, end)
        return ReadResult(collected, latency, end, next_offset)

    def _charge_read(self, object_key: str, position: int, nbytes: int) -> float:
        """Cost of copying served bytes out of the hydrated segment."""
        if self.page_cache is not None:
            return self.page_cache.read(self._file_id(object_key), position, nbytes)
        return self.cost_model.ram_read(nbytes)

    def drop_cache(self) -> None:
        """Discard all hydrated segments (e.g. the hosting machine crashed —
        the hydration cache is RAM and does not survive)."""
        if self.page_cache is not None:
            for key in self._hydrated:
                self.page_cache.forget_file(self._file_id(key))
        self._hydrated.clear()
        self._hydrated_bytes = 0

    # -- timestamp lookup -------------------------------------------------------------

    def offset_for_timestamp(self, timestamp: float) -> int | None:
        """Earliest archived offset with record timestamp >= ``timestamp``.

        A metadata operation (no latency channel), but it may hydrate the
        covering segment to answer exactly; the hydration stays cached for
        the rewind read that almost always follows.
        """
        entry = self.manifest.entry_for_timestamp(timestamp)
        if entry is None:
            return None
        hydrated, _latency = self._hydrate(entry)
        keys = [r.timestamp for r in hydrated.records]
        idx = bisect_left(keys, timestamp)
        if idx >= len(hydrated.records):
            return None
        return hydrated.records[idx].offset

    # -- introspection ----------------------------------------------------------------

    @property
    def hydrated_segments(self) -> int:
        return len(self._hydrated)

    @property
    def hydrated_bytes(self) -> int:
        return self._hydrated_bytes

    @property
    def hit_ratio(self) -> float | None:
        total = self.hits + self.misses
        return self.hits / total if total else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColdReader(hydrated={len(self._hydrated)}, "
            f"{self._hydrated_bytes}B, hits={self.hits}, misses={self.misses})"
        )
