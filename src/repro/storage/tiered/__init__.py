"""Tiered log storage: offload sealed segments to an offline cold store.

The hot tier (:class:`~repro.storage.log.PartitionLog`) keeps a bounded
window of recent history at RAM/disk speed; this package provides the cold
tier that makes the rest of the history *rewindable* instead of deleted:

* :class:`ObjectStore` / :class:`DfsObjectStore` / :class:`InMemoryObjectStore`
  — the immutable object store holding archived segments;
* :class:`TierManifest` / :class:`ArchivedSegment` — the per-partition index
  of archived offset ranges;
* :class:`SegmentArchiver` — copies sealed segments to the store before
  retention deletes them (wired through
  :class:`~repro.storage.retention.RetentionEnforcer`);
* :class:`ColdReader` — lazily hydrates archived segments under a bounded
  cache and serves them through the page cache;
* :class:`ColdTier` — the per-replica bundle with the stitched
  archive-into-hot-log read path.
"""

from repro.storage.tiered.archiver import ArchiveResult, SegmentArchiver
from repro.storage.tiered.coldreader import COLD_FILE_PREFIX, ColdReader
from repro.storage.tiered.config import TieredConfig
from repro.storage.tiered.manifest import ArchivedSegment, TierManifest
from repro.storage.tiered.objectstore import (
    DfsObjectStore,
    InMemoryObjectStore,
    ObjectGetResult,
    ObjectPutResult,
    ObjectStore,
)
from repro.storage.tiered.tier import ColdTier

__all__ = [
    "ArchiveResult",
    "ArchivedSegment",
    "COLD_FILE_PREFIX",
    "ColdReader",
    "ColdTier",
    "DfsObjectStore",
    "InMemoryObjectStore",
    "ObjectGetResult",
    "ObjectPutResult",
    "ObjectStore",
    "SegmentArchiver",
    "TierManifest",
    "TieredConfig",
]
