"""Per-partition manifest of archived offset ranges.

The manifest is the cold tier's index: for each sealed segment offloaded to
the object store it records the offset range, byte size, timestamp span and
object key.  Lookups mirror the hot log's segment lookup (bisect on base
offsets), so locating an archived offset is O(log #archived-segments)
regardless of how much history has been offloaded — the tiered analogue of
the paper's "cost independent of log size" claim.

Entries are append-only and must arrive in offset order (retention always
drops — and therefore archives — from the head of the log), which keeps the
bookkeeping a sorted list rather than an interval tree.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class ArchivedSegment:
    """One sealed segment's footprint in the cold store."""

    base_offset: int
    first_offset: int
    last_offset: int
    message_count: int
    size_bytes: int
    object_key: str
    first_timestamp: float
    last_timestamp: float
    archived_at: float

    def __post_init__(self) -> None:
        if self.message_count <= 0:
            raise ConfigError("archived segment must hold at least one record")
        if not self.base_offset <= self.first_offset <= self.last_offset:
            raise ConfigError(
                f"inconsistent archived range: base={self.base_offset}, "
                f"first={self.first_offset}, last={self.last_offset}"
            )

    def covers(self, offset: int) -> bool:
        """True iff ``offset`` falls inside this segment's offset range.

        Compaction may have punched holes inside the range; ``covers`` is
        about *range* membership — readers skip to the next surviving record
        exactly as hot-log reads do.
        """
        return self.first_offset <= offset <= self.last_offset


class TierManifest:
    """Ordered, non-overlapping record of a partition's archived segments."""

    def __init__(self) -> None:
        self._entries: list[ArchivedSegment] = []
        self._firsts: list[int] = []  # first_offset of each entry (bisect key)

    # -- bookkeeping -----------------------------------------------------------

    def add(self, entry: ArchivedSegment) -> None:
        """Record a newly archived segment; must extend the archive forward."""
        if self._entries:
            newest = self._entries[-1]
            if entry.object_key == newest.object_key:
                raise ConfigError(
                    f"segment {entry.object_key} already archived"
                )
            if entry.first_offset <= newest.last_offset:
                raise ConfigError(
                    f"archived ranges must be disjoint and ordered: "
                    f"[{entry.first_offset}, {entry.last_offset}] after "
                    f"[{newest.first_offset}, {newest.last_offset}]"
                )
        self._entries.append(entry)
        self._firsts.append(entry.first_offset)

    # -- lookup -----------------------------------------------------------------

    def entry_for(self, offset: int) -> ArchivedSegment | None:
        """Entry holding the first archived record with offset >= ``offset``.

        Returns the covering entry, or the next one forward when ``offset``
        falls in a hole between archived ranges; ``None`` when the archive
        ends before ``offset``.
        """
        if not self._entries:
            return None
        idx = bisect_right(self._firsts, offset) - 1
        if idx < 0:
            return self._entries[0]
        if self._entries[idx].last_offset >= offset:
            return self._entries[idx]
        if idx + 1 < len(self._entries):
            return self._entries[idx + 1]
        return None

    def next_entry(self, entry: ArchivedSegment) -> ArchivedSegment | None:
        """The entry following ``entry`` in offset order, if any."""
        idx = bisect_right(self._firsts, entry.first_offset) - 1
        if 0 <= idx < len(self._entries) - 1:
            return self._entries[idx + 1]
        return None

    def entry_for_timestamp(self, timestamp: float) -> ArchivedSegment | None:
        """Earliest entry whose newest record is at/after ``timestamp``."""
        for entry in self._entries:
            if entry.last_timestamp >= timestamp:
                return entry
        return None

    # -- introspection ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def start_offset(self) -> int | None:
        """Offset of the oldest archived record (the true log beginning)."""
        return self._entries[0].first_offset if self._entries else None

    @property
    def end_offset(self) -> int | None:
        """One past the newest archived record."""
        return self._entries[-1].last_offset + 1 if self._entries else None

    @property
    def segment_count(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        return sum(e.size_bytes for e in self._entries)

    @property
    def total_messages(self) -> int:
        return sum(e.message_count for e in self._entries)

    def entries(self) -> list[ArchivedSegment]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self._entries:
            return "TierManifest(empty)"
        return (
            f"TierManifest([{self.start_offset}, {self.end_offset}), "
            f"segments={len(self._entries)}, bytes={self.total_bytes})"
        )
