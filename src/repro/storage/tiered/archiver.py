"""Segment offload: copy sealed segments to the cold store before deletion.

The archiver is the write side of the tiered log.  Retention calls it on
every sealed segment it is about to drop; the archiver uploads the segment's
records as one immutable object, records the offset range in the partition's
:class:`~repro.storage.tiered.manifest.TierManifest`, and returns what it
moved so :class:`~repro.storage.retention.RetentionResult` can report both
halves (archived, then deleted) of the offload.

Object keys embed only the partition namespace and base offset — never the
broker id — so when several replicas of the same partition run retention,
the second and third ``put`` of the same segment are idempotent no-ops
(every replica holds byte-identical sealed segments below the high
watermark, which is what replication guarantees).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import Clock
from repro.common.metrics import MetricsRegistry, metric_name
from repro.storage.segment import LogSegment
from repro.storage.tiered.manifest import ArchivedSegment, TierManifest
from repro.storage.tiered.objectstore import ObjectStore

# Metric names precomputed once (layer.component.metric convention).
_M_SEGMENTS_ARCHIVED = metric_name("storage", "tiered", "segments_archived")
_M_BYTES_ARCHIVED = metric_name("storage", "tiered", "bytes_archived")


@dataclass
class ArchiveResult:
    """Outcome of archiving one segment."""

    archived: bool
    object_key: str = ""
    size_bytes: int = 0
    message_count: int = 0
    latency: float = 0.0
    deduplicated: bool = False  # another replica uploaded this object first


class SegmentArchiver:
    """Uploads sealed segments to an :class:`ObjectStore` and indexes them."""

    def __init__(
        self,
        store: ObjectStore,
        manifest: TierManifest,
        namespace: str,
        clock: Clock,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.manifest = manifest
        self.namespace = namespace
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def object_key(self, segment: LogSegment) -> str:
        return f"{self.namespace}/{segment.base_offset:020d}"

    def archive(self, segment: LogSegment) -> ArchiveResult:
        """Offload one sealed segment; empty segments are skipped.

        A sealed segment whose records were all compacted away carries no
        data, so there is nothing to archive — retention deletes it directly
        (see the explicit empty-segment policy in
        :mod:`repro.storage.retention`).
        """
        records = list(segment.messages())
        if not records:
            return ArchiveResult(archived=False)
        key = self.object_key(segment)
        put = self.store.put(key, records, segment.size_bytes)
        entry = ArchivedSegment(
            base_offset=segment.base_offset,
            first_offset=records[0].offset,
            last_offset=records[-1].offset,
            message_count=len(records),
            size_bytes=segment.size_bytes,
            object_key=key,
            first_timestamp=records[0].timestamp,
            last_timestamp=records[-1].timestamp,
            archived_at=self.clock.now(),
        )
        self.manifest.add(entry)
        self.metrics.counter(_M_SEGMENTS_ARCHIVED).increment()
        self.metrics.counter(_M_BYTES_ARCHIVED).increment(
            segment.size_bytes
        )
        return ArchiveResult(
            archived=True,
            object_key=key,
            size_bytes=segment.size_bytes,
            message_count=len(records),
            latency=put.latency,
            deduplicated=not put.created,
        )
