"""Cold-store abstraction: immutable objects keyed by name.

The offline tier of the tiered log is an object store in the S3/HDFS mold:
whole-object puts and gets, no appends, no offsets.  Two implementations:

* :class:`DfsObjectStore` — persists objects as files in a
  :class:`~repro.baselines.dfs.SimulatedDFS`, turning the paper's batch-
  storage foil into the cold tier of the unified system.  Latency charges
  the cross-tier cost model *plus* the DFS's own block mechanics (namenode
  round trip, per-block seeks, replication pipeline).
* :class:`InMemoryObjectStore` — a test double charging only the cold-tier
  cost model, with deterministic contents.

Objects are immutable once written; an idempotent ``put`` of an existing key
(two replicas archiving the same segment) is a free no-op by design, which
is what makes replica-side archiving race-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol

from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import ObjectNotFoundError

if TYPE_CHECKING:  # pragma: no cover - avoids storage <-> baselines cycle
    from repro.baselines.dfs import SimulatedDFS


@dataclass
class ObjectPutResult:
    """Outcome of an object upload."""

    key: str
    size_bytes: int
    latency: float
    created: bool  # False when the key already existed (idempotent put)


@dataclass
class ObjectGetResult:
    """Outcome of an object download."""

    key: str
    records: list[Any] = field(default_factory=list)
    size_bytes: int = 0
    latency: float = 0.0


class ObjectStore(Protocol):
    """Minimal cold-store surface the tiered subsystem depends on."""

    def put(self, key: str, records: list[Any], size_bytes: int) -> ObjectPutResult:
        """Upload ``records`` under ``key``; no-op if the key exists."""
        ...

    def get(self, key: str) -> ObjectGetResult:
        """Download the object stored under ``key``."""
        ...

    def exists(self, key: str) -> bool:
        ...

    def delete(self, key: str) -> None:
        ...

    def list_prefix(self, prefix: str) -> list[str]:
        """Keys under ``prefix``, sorted."""
        ...

    def size_of(self, key: str) -> int:
        ...

    def total_stored_bytes(self) -> int:
        ...


class InMemoryObjectStore:
    """Dict-backed cold store charging only the cold-tier cost model."""

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        self.cost_model = cost_model
        self._objects: dict[str, tuple[list[Any], int]] = {}
        self.puts = 0
        self.gets = 0

    def put(self, key: str, records: list[Any], size_bytes: int) -> ObjectPutResult:
        if key in self._objects:
            return ObjectPutResult(key, self._objects[key][1], 0.0, created=False)
        self._objects[key] = (list(records), size_bytes)
        self.puts += 1
        return ObjectPutResult(
            key, size_bytes, self.cost_model.cold_put(size_bytes), created=True
        )

    def get(self, key: str) -> ObjectGetResult:
        stored = self._objects.get(key)
        if stored is None:
            raise ObjectNotFoundError(key)
        records, size_bytes = stored
        self.gets += 1
        return ObjectGetResult(
            key, list(records), size_bytes, self.cost_model.cold_fetch(size_bytes)
        )

    def exists(self, key: str) -> bool:
        return key in self._objects

    def delete(self, key: str) -> None:
        if key not in self._objects:
            raise ObjectNotFoundError(key)
        del self._objects[key]

    def list_prefix(self, prefix: str) -> list[str]:
        return sorted(k for k in self._objects if k.startswith(prefix))

    def size_of(self, key: str) -> int:
        stored = self._objects.get(key)
        if stored is None:
            raise ObjectNotFoundError(key)
        return stored[1]

    def total_stored_bytes(self) -> int:
        return sum(size for _records, size in self._objects.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InMemoryObjectStore(objects={len(self._objects)})"


class DfsObjectStore:
    """Cold store persisted in a :class:`SimulatedDFS` under one root dir.

    The cross-tier transfer (request round trip + hydration/upload stream)
    comes from the cold cost model; the storage-side work (namenode, block
    seeks, replication pipeline) comes from the DFS itself — so archived
    bytes show up in the same ``total_stored_bytes`` accounting every DFS
    baseline uses, and cold reads are visibly more expensive than hot ones.
    """

    def __init__(
        self,
        dfs: "SimulatedDFS",
        root: str = "/cold",
        cost_model: CostModel | None = None,
    ) -> None:
        self.dfs = dfs
        self.root = root.rstrip("/")
        self.cost_model = cost_model if cost_model is not None else dfs.cost_model

    def _path(self, key: str) -> str:
        return f"{self.root}/{key}"

    def put(self, key: str, records: list[Any], size_bytes: int) -> ObjectPutResult:
        path = self._path(key)
        if self.dfs.exists(path):
            return ObjectPutResult(
                key, self.dfs.file_size(path), 0.0, created=False
            )
        dfs_result = self.dfs.write_file(path, records)
        latency = self.cost_model.cold_put(size_bytes) + dfs_result.latency
        return ObjectPutResult(key, size_bytes, latency, created=True)

    def get(self, key: str) -> ObjectGetResult:
        path = self._path(key)
        if not self.dfs.exists(path):
            raise ObjectNotFoundError(key)
        dfs_result = self.dfs.read_file(path)
        size = self.dfs.file_size(path)
        latency = self.cost_model.cold_fetch(size) + dfs_result.latency
        return ObjectGetResult(key, dfs_result.records, size, latency)

    def exists(self, key: str) -> bool:
        return self.dfs.exists(self._path(key))

    def delete(self, key: str) -> None:
        path = self._path(key)
        if not self.dfs.exists(path):
            raise ObjectNotFoundError(key)
        self.dfs.delete(path)

    def list_prefix(self, prefix: str) -> list[str]:
        start = len(self.root) + 1
        normalized = self._path(prefix)
        return sorted(
            p[start:] for p in self.dfs.list_dir(self.root)
            if p.startswith(normalized)
        )

    def size_of(self, key: str) -> int:
        path = self._path(key)
        if not self.dfs.exists(path):
            raise ObjectNotFoundError(key)
        return self.dfs.file_size(path)

    def total_stored_bytes(self) -> int:
        return sum(
            self.dfs.file_size(p) for p in self.dfs.list_dir(self.root)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DfsObjectStore(root={self.root!r})"
