"""Configuration for the tiered (hot/cold) log storage subsystem.

One knob set per topic: whether sealed segments are archived to the cold
store before retention deletes them, and how much local RAM/disk the cold
reader may spend keeping hydrated segments around.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class TieredConfig:
    """Per-topic cold-tier knobs.

    ``hydration_cache_bytes`` bounds the :class:`~repro.storage.tiered.
    coldreader.ColdReader`'s local copies of fetched cold segments (the
    "rewind working set"); it is deliberately separate from the page-cache
    capacity so a historical backfill cannot silently consume the broker's
    RAM budget.
    """

    hydration_cache_bytes: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.hydration_cache_bytes <= 0:
            raise ConfigError("hydration_cache_bytes must be > 0")
