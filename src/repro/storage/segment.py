"""Log segments: the physical unit of the append-only commit log.

A partition's log is a sequence of segments (§4.1).  Only the last segment
(the *active* one) accepts appends; older segments are *sealed* and become
the units of retention (whole-segment deletion) and compaction (in-place
rewrite preserving offsets).

Offsets inside a segment are not necessarily contiguous: compaction removes
superseded records but survivors keep their original offsets, exactly as in
Kafka.  Reads therefore locate records by binary search on offset; the
segment keeps parallel ``offsets`` and ``positions`` arrays alongside the
records so lookups never rebuild a key list and byte accounting is prefix-sum
arithmetic rather than per-record summation.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator

from repro.common.errors import ConfigError
from repro.common.records import StoredMessage


class SegmentView:
    """A zero-copy read view over a contiguous run of segment records.

    Produced by :meth:`LogSegment.read_from`.  ``messages`` is the record
    slice; ``start_position`` is the first record's byte position in the
    segment; :meth:`prefix_bytes` returns the byte size of the first ``k``
    records in O(1) using the segment's positions (prefix-sum) array, so
    byte-budget accounting never re-sums record sizes.
    """

    __slots__ = ("messages", "start_index", "start_position", "_end_positions")

    def __init__(
        self,
        messages: list[StoredMessage],
        start_index: int,
        start_position: int,
        end_positions: list[int],
    ) -> None:
        self.messages = messages
        self.start_index = start_index
        self.start_position = start_position
        # end_positions[i] is the byte position one past record
        # start_index + i; a plain slice of the segment's cumulative array.
        self._end_positions = end_positions

    def prefix_bytes(self, count: int) -> int:
        """Total bytes of the first ``count`` records of the view."""
        if count <= 0:
            return 0
        return self._end_positions[count - 1] - self.start_position

    def prefix_within(self, byte_budget: int) -> int:
        """Largest record count whose total size fits in ``byte_budget``.

        O(log n) bisect over the cumulative positions instead of a
        per-record remaining-budget loop.
        """
        if not self.messages:
            return 0
        limit = self.start_position + byte_budget
        return bisect_left(self._end_positions, limit + 1)

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> Iterator[StoredMessage]:
        return iter(self.messages)

    def __getitem__(self, index):
        return self.messages[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, SegmentView):
            return self.messages == other.messages
        if isinstance(other, list):
            return self.messages == other
        return NotImplemented


class LogSegment:
    """One segment file of a partition log.

    Tracks byte positions of each record so the simulated page cache can
    translate offset ranges into page ranges.
    """

    def __init__(self, base_offset: int, created_at: float) -> None:
        if base_offset < 0:
            raise ConfigError(f"base_offset must be >= 0, got {base_offset}")
        self.base_offset = base_offset
        self.created_at = created_at
        self.sealed = False
        self._messages: list[StoredMessage] = []
        self._offsets: list[int] = []  # offset of each record (bisect key)
        self._positions: list[int] = []  # start byte of each record
        self._size_bytes = 0
        self.last_append_at = created_at

    # -- append path ----------------------------------------------------------

    def append(self, message: StoredMessage, now: float) -> int:
        """Append one record; returns its start byte position in the segment."""
        if self.sealed:
            raise ConfigError(
                f"segment@{self.base_offset} is sealed; appends go to the "
                "active segment"
            )
        if self._offsets and message.offset <= self._offsets[-1]:
            raise ConfigError(
                f"offset {message.offset} not greater than last "
                f"{self._offsets[-1]}"
            )
        position = self._size_bytes
        self._messages.append(message)
        self._offsets.append(message.offset)
        self._positions.append(position)
        # Positions and sizes are *physical* bytes: a record's share of its
        # (possibly compressed) batch frame.  Equal to the logical size for
        # uncompressed records.
        self._size_bytes += message.stored_size
        self.last_append_at = now
        return position

    def append_bulk(self, messages: list[StoredMessage], now: float) -> int:
        """Append an offset-ordered run of records in one pass.

        Returns the start byte position of the first record.  Equivalent to
        N :meth:`append` calls but with a single validation and one extend
        per parallel array instead of N list growths.
        """
        if not messages:
            return self._size_bytes
        if self.sealed:
            raise ConfigError(
                f"segment@{self.base_offset} is sealed; appends go to the "
                "active segment"
            )
        first = messages[0].offset
        if self._offsets and first <= self._offsets[-1]:
            raise ConfigError(
                f"offset {first} not greater than last {self._offsets[-1]}"
            )
        start = self._size_bytes
        position = start
        offsets = []
        positions = []
        previous = first - 1
        for message in messages:
            if message.offset <= previous:
                raise ConfigError(
                    f"offset {message.offset} not greater than last {previous}"
                )
            previous = message.offset
            offsets.append(message.offset)
            positions.append(position)
            position += message.stored_size
        self._messages.extend(messages)
        self._offsets.extend(offsets)
        self._positions.extend(positions)
        self._size_bytes = position
        self.last_append_at = now
        return start

    def _extend_trusted(
        self,
        messages: list[StoredMessage],
        offsets: list[int],
        positions: list[int],
        size_bytes: int,
        now: float,
    ) -> None:
        """Extend with a pre-validated run (:meth:`append_bulk` without the
        per-record checks).

        The caller — :meth:`PartitionLog._append_run` — has already
        established that offsets strictly increase and follow the current
        tail, and supplies the parallel arrays plus the resulting segment
        size so nothing is recomputed per record.
        """
        if self.sealed:
            raise ConfigError(
                f"segment@{self.base_offset} is sealed; appends go to the "
                "active segment"
            )
        self._messages.extend(messages)
        self._offsets.extend(offsets)
        self._positions.extend(positions)
        self._size_bytes = size_bytes
        self.last_append_at = now

    def seal(self) -> None:
        """Mark the segment read-only; sealed segments are retention/compaction
        candidates."""
        self.sealed = True

    # -- read path ------------------------------------------------------------

    def read_from(self, offset: int, max_messages: int) -> SegmentView:
        """View of records with offset >= ``offset``, at most ``max_messages``.

        If ``offset`` was compacted away, reading resumes at the next
        surviving record (Kafka fetch semantics).  The view carries the byte
        position of its first record and a cumulative-size slice so callers
        do no per-record size arithmetic.
        """
        idx = bisect_left(self._offsets, offset)
        end = idx + max_messages
        batch = self._messages[idx:end]
        if not batch:
            return SegmentView([], idx, self._size_bytes, [])
        end = idx + len(batch)
        end_positions = self._positions[idx + 1 : end]
        end_positions.append(
            self._positions[end] if end < len(self._positions) else self._size_bytes
        )
        return SegmentView(batch, idx, self._positions[idx], end_positions)

    def position_of(self, offset: int) -> int:
        """Start byte of the first record with offset >= ``offset``."""
        idx = bisect_left(self._offsets, offset)
        if idx >= len(self._positions):
            return self._size_bytes
        return self._positions[idx]

    def offset_for_timestamp(self, timestamp: float) -> int | None:
        """Smallest offset whose record timestamp >= ``timestamp``."""
        keys = [m.timestamp for m in self._messages]
        idx = bisect_left(keys, timestamp)
        if idx >= len(self._messages):
            return None
        return self._messages[idx].offset

    # -- compaction support -----------------------------------------------------

    def replace_messages(self, survivors: list[StoredMessage]) -> int:
        """Rewrite the segment with the given (offset-ordered) survivors.

        Returns the number of bytes reclaimed.  Only sealed segments may be
        rewritten; the active segment is never compacted (§4.1).
        """
        if not self.sealed:
            raise ConfigError("cannot compact the active segment")
        offsets = [m.offset for m in survivors]
        if offsets != sorted(offsets):
            raise ConfigError("survivors must be offset-ordered")
        old_size = self._size_bytes
        self._messages = list(survivors)
        self._offsets = offsets
        self._positions = []
        position = 0
        for message in self._messages:
            self._positions.append(position)
            position += message.stored_size
        self._size_bytes = position
        return old_size - self._size_bytes

    # -- introspection ----------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    @property
    def message_count(self) -> int:
        return len(self._messages)

    @property
    def is_empty(self) -> bool:
        return not self._messages

    @property
    def first_offset(self) -> int | None:
        return self._offsets[0] if self._offsets else None

    @property
    def last_offset(self) -> int | None:
        return self._offsets[-1] if self._offsets else None

    @property
    def last_timestamp(self) -> float | None:
        return self._messages[-1].timestamp if self._messages else None

    def messages(self) -> Iterator[StoredMessage]:
        return iter(self._messages)

    def keys(self) -> set[Any]:
        return {m.key for m in self._messages}

    def __len__(self) -> int:
        return len(self._messages)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "sealed" if self.sealed else "active"
        return (
            f"LogSegment(base={self.base_offset}, n={len(self)}, "
            f"{self._size_bytes}B, {state})"
        )
