"""Log segments: the physical unit of the append-only commit log.

A partition's log is a sequence of segments (§4.1).  Only the last segment
(the *active* one) accepts appends; older segments are *sealed* and become
the units of retention (whole-segment deletion) and compaction (in-place
rewrite preserving offsets).

Offsets inside a segment are not necessarily contiguous: compaction removes
superseded records but survivors keep their original offsets, exactly as in
Kafka.  Reads therefore locate records by binary search on offset.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator

from repro.common.errors import ConfigError
from repro.common.records import StoredMessage


class LogSegment:
    """One segment file of a partition log.

    Tracks byte positions of each record so the simulated page cache can
    translate offset ranges into page ranges.
    """

    def __init__(self, base_offset: int, created_at: float) -> None:
        if base_offset < 0:
            raise ConfigError(f"base_offset must be >= 0, got {base_offset}")
        self.base_offset = base_offset
        self.created_at = created_at
        self.sealed = False
        self._messages: list[StoredMessage] = []
        self._positions: list[int] = []  # start byte of each record
        self._size_bytes = 0
        self.last_append_at = created_at

    # -- append path ----------------------------------------------------------

    def append(self, message: StoredMessage, now: float) -> int:
        """Append one record; returns its start byte position in the segment."""
        if self.sealed:
            raise ConfigError(
                f"segment@{self.base_offset} is sealed; appends go to the "
                "active segment"
            )
        if self._messages and message.offset <= self._messages[-1].offset:
            raise ConfigError(
                f"offset {message.offset} not greater than last "
                f"{self._messages[-1].offset}"
            )
        position = self._size_bytes
        self._messages.append(message)
        self._positions.append(position)
        self._size_bytes += message.size
        self.last_append_at = now
        return position

    def seal(self) -> None:
        """Mark the segment read-only; sealed segments are retention/compaction
        candidates."""
        self.sealed = True

    # -- read path ------------------------------------------------------------

    def read_from(self, offset: int, max_messages: int) -> list[StoredMessage]:
        """Records with offset >= ``offset``, at most ``max_messages``.

        If ``offset`` was compacted away, reading resumes at the next
        surviving record (Kafka fetch semantics).
        """
        idx = self._find_index(offset)
        return self._messages[idx : idx + max_messages]

    def position_of(self, offset: int) -> int:
        """Start byte of the first record with offset >= ``offset``."""
        idx = self._find_index(offset)
        if idx >= len(self._positions):
            return self._size_bytes
        return self._positions[idx]

    def _find_index(self, offset: int) -> int:
        keys = [m.offset for m in self._messages]
        return bisect_left(keys, offset)

    def offset_for_timestamp(self, timestamp: float) -> int | None:
        """Smallest offset whose record timestamp >= ``timestamp``."""
        keys = [m.timestamp for m in self._messages]
        idx = bisect_left(keys, timestamp)
        if idx >= len(self._messages):
            return None
        return self._messages[idx].offset

    # -- compaction support -----------------------------------------------------

    def replace_messages(self, survivors: list[StoredMessage]) -> int:
        """Rewrite the segment with the given (offset-ordered) survivors.

        Returns the number of bytes reclaimed.  Only sealed segments may be
        rewritten; the active segment is never compacted (§4.1).
        """
        if not self.sealed:
            raise ConfigError("cannot compact the active segment")
        offsets = [m.offset for m in survivors]
        if offsets != sorted(offsets):
            raise ConfigError("survivors must be offset-ordered")
        old_size = self._size_bytes
        self._messages = list(survivors)
        self._positions = []
        position = 0
        for message in self._messages:
            self._positions.append(position)
            position += message.size
        self._size_bytes = position
        return old_size - self._size_bytes

    # -- introspection ----------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    @property
    def message_count(self) -> int:
        return len(self._messages)

    @property
    def is_empty(self) -> bool:
        return not self._messages

    @property
    def first_offset(self) -> int | None:
        return self._messages[0].offset if self._messages else None

    @property
    def last_offset(self) -> int | None:
        return self._messages[-1].offset if self._messages else None

    @property
    def last_timestamp(self) -> float | None:
        return self._messages[-1].timestamp if self._messages else None

    def messages(self) -> Iterator[StoredMessage]:
        return iter(self._messages)

    def keys(self) -> set[Any]:
        return {m.key for m in self._messages}

    def __len__(self) -> int:
        return len(self._messages)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "sealed" if self.sealed else "active"
        return (
            f"LogSegment(base={self.base_offset}, n={len(self)}, "
            f"{self._size_bytes}B, {state})"
        )
