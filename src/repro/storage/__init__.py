"""Storage engine: segmented append-only logs with simulated page cache."""

from repro.storage.compaction import CompactionConfig, CompactionResult, LogCompactor
from repro.storage.index import SparseOffsetIndex
from repro.storage.log import AppendResult, LogConfig, PartitionLog, ReadResult
from repro.storage.pagecache import PageCache
from repro.storage.retention import (
    RetentionConfig,
    RetentionEnforcer,
    RetentionResult,
)
from repro.storage.segment import LogSegment
from repro.storage.tiered import (
    ColdReader,
    ColdTier,
    DfsObjectStore,
    InMemoryObjectStore,
    SegmentArchiver,
    TierManifest,
    TieredConfig,
)

__all__ = [
    "LogSegment",
    "SparseOffsetIndex",
    "PageCache",
    "PartitionLog",
    "LogConfig",
    "AppendResult",
    "ReadResult",
    "RetentionConfig",
    "RetentionEnforcer",
    "RetentionResult",
    "CompactionConfig",
    "CompactionResult",
    "LogCompactor",
    "ColdReader",
    "ColdTier",
    "DfsObjectStore",
    "InMemoryObjectStore",
    "SegmentArchiver",
    "TierManifest",
    "TieredConfig",
]
