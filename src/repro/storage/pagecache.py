"""Simulated OS page cache with "anti-caching" eviction (§4.1).

The paper's messaging layer does not manage its own buffer pool; it leans on
the OS file-system cache, configured so that freshly appended data stays in
RAM and is flushed to disk after a timeout.  Because the log is append-only,
the data most likely to be read (the *head* of the log, i.e. the newest
messages consumed by nearline systems) is exactly the data most recently
written — so flushing/evicting in append order keeps tail readers at RAM
speed while cold, historical data lives on disk.  This mirrors the
anti-caching idea of DeBrabant et al. the paper cites: RAM is the default
home of data, disk is where cold data is *evicted to*.

The cache models three effects the paper calls out explicitly:

* head-of-log reads hit RAM (fast path for nearline consumers);
* a cold random read ("rewind") pays a disk seek, then *prefetching* makes
  successive sequential reads fast "after typically a few seconds";
* sequential cold reads stream at disk bandwidth without per-read seeks.

Foreground latency is returned to the caller; background work (timed
flushes, readahead) is accounted in metrics but does not block clients.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Literal

from repro.common.clock import Clock, SimClock
from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import ConfigError
from repro.common.metrics import MetricsRegistry, metric_name

EvictionPolicy = Literal["append_order", "lru"]

# Metric names precomputed once (layer.component.metric convention).
_M_BYTES_WRITTEN = metric_name("storage", "pagecache", "bytes_written")
_M_BYTES_FLUSHED = metric_name("storage", "pagecache", "bytes_flushed")
_M_BACKGROUND_DISK_SECONDS = metric_name(
    "storage", "pagecache", "background_disk_seconds"
)
_M_HITS = metric_name("storage", "pagecache", "hits")
_M_MISSES = metric_name("storage", "pagecache", "misses")
_M_BYTES_READ_DISK = metric_name("storage", "pagecache", "bytes_read_disk")
_M_BYTES_READ = metric_name("storage", "pagecache", "bytes_read")
_M_BYTES_INSTALLED = metric_name("storage", "pagecache", "bytes_installed")
_M_BYTES_PREFETCHED = metric_name("storage", "pagecache", "bytes_prefetched")
_M_FORCED_FLUSHES = metric_name("storage", "pagecache", "forced_flushes")
_M_EVICTIONS = metric_name("storage", "pagecache", "evictions")


class _Page:
    __slots__ = ("file_id", "page_no", "dirty", "last_access")

    def __init__(self, file_id: str, page_no: int, dirty: bool, now: float) -> None:
        self.file_id = file_id
        self.page_no = page_no
        self.dirty = dirty
        self.last_access = now


class PageCache:
    """Byte-addressed cache over named files, in fixed-size pages.

    ``eviction="append_order"`` is the paper's anti-caching behaviour: when
    capacity is exceeded, the *oldest-written* clean pages are dropped first,
    so the newest data survives.  ``eviction="lru"`` is the conventional
    policy, kept as the E6 ablation.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        capacity_bytes: int = 256 * 1024 * 1024,
        flush_timeout: float = 5.0,
        prefetch_pages: int = 8,
        eviction: EvictionPolicy = "append_order",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ConfigError(f"capacity_bytes must be > 0, got {capacity_bytes}")
        if flush_timeout < 0:
            raise ConfigError(f"flush_timeout must be >= 0, got {flush_timeout}")
        if prefetch_pages < 0:
            raise ConfigError(f"prefetch_pages must be >= 0, got {prefetch_pages}")
        if eviction not in ("append_order", "lru"):
            raise ConfigError(f"unknown eviction policy {eviction!r}")
        self.clock = clock if clock is not None else SimClock()
        self.cost_model = cost_model
        self.capacity_bytes = capacity_bytes
        self.flush_timeout = flush_timeout
        self.prefetch_pages = prefetch_pages
        self.eviction = eviction
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.page_size = cost_model.page_size
        # Iteration order of this dict is the eviction order.
        self._pages: OrderedDict[tuple[str, int], _Page] = OrderedDict()
        # Per-file end position of the last read, for sequential detection.
        self._last_read_end: dict[str, int] = {}

    # -- write path -----------------------------------------------------------

    def write(self, file_id: str, start: int, nbytes: int) -> float:
        """Write ``nbytes`` at ``start``; returns foreground latency.

        Pages land dirty in RAM and are flushed to disk ``flush_timeout``
        seconds later by a scheduled background flush, per the paper's
        configurable-timeout design.
        """
        if nbytes <= 0:
            return 0.0
        now = self.clock.now()
        touched = self._page_range(start, nbytes)
        for page_no in touched:
            key = (file_id, page_no)
            page = self._pages.get(key)
            if page is None:
                page = _Page(file_id, page_no, dirty=True, now=now)
                self._pages[key] = page
            else:
                page.dirty = True
                page.last_access = now
                self._pages.move_to_end(key)  # rewritten pages are newest
        self._evict_to_capacity()
        if isinstance(self.clock, SimClock) and self.flush_timeout > 0:
            keys = [(file_id, p) for p in touched]
            self.clock.schedule(self.flush_timeout, self._flush_pages, keys)
        elif self.flush_timeout == 0:
            self._flush_pages([(file_id, p) for p in touched])
        self.metrics.counter(_M_BYTES_WRITTEN).increment(nbytes)
        return self.cost_model.ram_write(nbytes)

    def write_batch(
        self, file_id: str, start: int, sizes: list[int], base_latency: float = 0.0
    ) -> float:
        """Write a contiguous run of records starting at ``start``.

        Equivalent to one :meth:`write` per record (same pages dirtied, same
        flush scheduling, same metrics totals) but with a single bookkeeping
        pass over the touched page range.  Latency is folded onto
        ``base_latency`` per record, left to right — the same accumulation
        order as a caller summing per-record :meth:`write` results — so
        simulated totals stay bit-identical even across chunked calls.
        """
        if not sizes:
            return base_latency
        latency = base_latency
        nbytes = 0
        cost_model = self.cost_model
        if type(cost_model).ram_write is CostModel.ram_write:
            # Stock linear model: inline nbytes / ram_bandwidth — the exact
            # expression ram_write evaluates, so the fold stays bit-identical
            # while skipping one method call per record.
            bandwidth = cost_model.ram_bandwidth
            for size in sizes:
                if size > 0:
                    latency += size / bandwidth
                    nbytes += size
        else:
            ram_write = cost_model.ram_write
            for size in sizes:
                if size > 0:
                    latency += ram_write(size)
                    nbytes += size
        if nbytes == 0:
            return latency
        now = self.clock.now()
        touched = self._page_range(start, nbytes)
        pages = self._pages
        for page_no in touched:
            key = (file_id, page_no)
            page = pages.get(key)
            if page is None:
                pages[key] = _Page(file_id, page_no, dirty=True, now=now)
            else:
                page.dirty = True
                page.last_access = now
                pages.move_to_end(key)  # rewritten pages are newest
        self._evict_to_capacity()
        if isinstance(self.clock, SimClock) and self.flush_timeout > 0:
            keys = [(file_id, p) for p in touched]
            self.clock.schedule(self.flush_timeout, self._flush_pages, keys)
        elif self.flush_timeout == 0:
            self._flush_pages([(file_id, p) for p in touched])
        self.metrics.counter(_M_BYTES_WRITTEN).increment(nbytes)
        return latency

    def _flush_pages(self, keys: list[tuple[str, int]]) -> None:
        """Background flush: dirty pages become clean, staying resident."""
        flushed = 0
        for key in keys:
            page = self._pages.get(key)
            if page is not None and page.dirty:
                page.dirty = False
                flushed += 1
        if flushed:
            nbytes = flushed * self.page_size
            self.metrics.counter(_M_BYTES_FLUSHED).increment(nbytes)
            self.metrics.counter(_M_BACKGROUND_DISK_SECONDS).increment(
                self.cost_model.disk_sequential_write(nbytes)
            )

    def flush_all(self) -> int:
        """Force-flush every dirty page; returns pages flushed (tests/shutdown)."""
        dirty = [key for key, page in self._pages.items() if page.dirty]
        self._flush_pages(dirty)
        return len(dirty)

    # -- read path ------------------------------------------------------------

    def read(self, file_id: str, start: int, nbytes: int) -> float:
        """Read ``nbytes`` at ``start``; returns foreground latency.

        Resident pages cost RAM time.  A run of non-resident pages costs one
        seek (unless the read continues the previous one sequentially) plus
        sequential-disk time, and triggers readahead of the following pages.
        """
        if nbytes <= 0:
            return 0.0
        now = self.clock.now()
        pages = self._page_range(start, nbytes)
        sequential = self._last_read_end.get(file_id) == start
        self._last_read_end[file_id] = start + nbytes

        # Classify pages, collecting runs of consecutive misses.
        hits = 0
        miss_runs: list[tuple[int, int]] = []  # (first_page, run_length)
        for page_no in pages:
            key = (file_id, page_no)
            page = self._pages.get(key)
            if page is not None:
                page.last_access = now
                if self.eviction == "lru":
                    self._pages.move_to_end(key)
                hits += 1
            else:
                if miss_runs and miss_runs[-1][0] + miss_runs[-1][1] == page_no:
                    first, length = miss_runs[-1]
                    miss_runs[-1] = (first, length + 1)
                else:
                    miss_runs.append((page_no, 1))
                self._insert_clean(file_id, page_no, now)

        latency = hits * self.cost_model.ram_read(self.page_size)
        if hits:
            self.metrics.counter(_M_HITS).increment(hits)
        for first, length in miss_runs:
            run_bytes = length * self.page_size
            cost = self.cost_model.disk_sequential_read(run_bytes)
            # A miss run starting where the previous read ended continues a
            # sequential scan: the disk head is already positioned.
            if not (sequential and first == pages[0]):
                cost += self.cost_model.disk_seek_time
            latency += cost
            self.metrics.counter(_M_MISSES).increment(length)
            self.metrics.counter(_M_BYTES_READ_DISK).increment(run_bytes)
        if miss_runs:
            self._prefetch(file_id, pages[-1] + 1, now)
        self.metrics.counter(_M_BYTES_READ).increment(nbytes)
        return latency

    def _insert_clean(self, file_id: str, page_no: int, now: float) -> None:
        key = (file_id, page_no)
        self._pages[key] = _Page(file_id, page_no, dirty=False, now=now)
        self._evict_to_capacity()

    def install(self, file_id: str, start: int, nbytes: int) -> int:
        """Insert clean resident pages with no foreground read charge.

        Used by the cold tier after hydrating an archived segment: the bytes
        were already paid for by the cold fetch, so residency is recorded
        without charging a second (disk-priced) read.  Returns the number of
        pages newly inserted; existing pages are left untouched.
        """
        if nbytes <= 0:
            return 0
        now = self.clock.now()
        inserted = 0
        for page_no in self._page_range(start, nbytes):
            key = (file_id, page_no)
            if key not in self._pages:
                self._pages[key] = _Page(file_id, page_no, dirty=False, now=now)
                inserted += 1
        if inserted:
            self.metrics.counter(_M_BYTES_INSTALLED).increment(
                inserted * self.page_size
            )
            self._evict_to_capacity()
        return inserted

    def _prefetch(self, file_id: str, from_page: int, now: float) -> None:
        """Readahead: pull the next pages into cache in the background."""
        loaded = 0
        for page_no in range(from_page, from_page + self.prefetch_pages):
            key = (file_id, page_no)
            if key not in self._pages:
                self._pages[key] = _Page(file_id, page_no, dirty=False, now=now)
                loaded += 1
        if loaded:
            nbytes = loaded * self.page_size
            self.metrics.counter(_M_BYTES_PREFETCHED).increment(nbytes)
            self.metrics.counter(_M_BACKGROUND_DISK_SECONDS).increment(
                self.cost_model.disk_sequential_read(nbytes)
            )
            self._evict_to_capacity()

    # -- eviction ---------------------------------------------------------------

    def _evict_to_capacity(self) -> None:
        capacity_pages = self.capacity_bytes // self.page_size
        while len(self._pages) > capacity_pages:
            if not self._evict_one():
                break

    def _evict_one(self) -> bool:
        """Evict one page according to the policy; force-flush if all dirty.

        * ``lru`` — evict the least-recently-used page (front of the
          access-ordered dict).
        * ``append_order`` — anti-caching: evict the page holding the OLDEST
          log data (smallest file position), regardless of when it entered
          the cache.  A scan that drags cold history into RAM therefore
          cannot displace the head of the log.
        """
        victim = self._pick_victim(require_clean=True)
        if victim is None:
            victim = self._pick_victim(require_clean=False)
            if victim is None:
                return False
            self._pages[victim].dirty = False
            self.metrics.counter(_M_FORCED_FLUSHES).increment()
            self.metrics.counter(_M_BACKGROUND_DISK_SECONDS).increment(
                self.cost_model.disk_sequential_write(self.page_size)
            )
        del self._pages[victim]
        self.metrics.counter(_M_EVICTIONS).increment()
        return True

    def _pick_victim(self, require_clean: bool) -> tuple[str, int] | None:
        candidates = (
            key
            for key, page in self._pages.items()
            if not (require_clean and page.dirty)
        )
        if self.eviction == "append_order":
            # Oldest log position first; file ids embed zero-padded base
            # offsets, so lexicographic order is append order.
            return min(candidates, default=None)
        return next(candidates, None)

    # -- maintenance --------------------------------------------------------------

    def forget_file(self, file_id: str) -> int:
        """Drop all pages of a deleted file (segment removed by retention)."""
        victims = [key for key in self._pages if key[0] == file_id]
        for key in victims:
            del self._pages[key]
        self._last_read_end.pop(file_id, None)
        return len(victims)

    # -- introspection --------------------------------------------------------------

    def is_resident(self, file_id: str, start: int, nbytes: int) -> bool:
        """True iff every page of the byte range is in cache."""
        return all(
            (file_id, p) in self._pages for p in self._page_range(start, nbytes)
        )

    def resident_bytes(self) -> int:
        return len(self._pages) * self.page_size

    def resident_pages_of(self, file_id: str) -> int:
        return sum(1 for key in self._pages if key[0] == file_id)

    def dirty_pages(self) -> int:
        return sum(1 for page in self._pages.values() if page.dirty)

    def _page_range(self, start: int, nbytes: int) -> list[int]:
        if start < 0:
            raise ConfigError(f"start must be >= 0, got {start}")
        first = start // self.page_size
        last = (start + nbytes - 1) // self.page_size
        return list(range(first, last + 1))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PageCache({len(self._pages)} pages, {self.dirty_pages()} dirty, "
            f"policy={self.eviction})"
        )
