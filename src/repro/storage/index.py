"""Sparse offset index, one per segment.

§4.1: "brokers maintain an incrementally-built index file that is used to
select the chunks of the log at which requested offsets are stored."  The
index maps offsets to byte positions at a configurable byte interval, so a
fetch at an arbitrary offset costs one index probe plus a bounded scan,
independent of log size — the mechanism behind E1's constant-throughput
claim.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.common.errors import ConfigError


class SparseOffsetIndex:
    """Maps offsets to byte positions at ``interval_bytes`` granularity."""

    def __init__(self, interval_bytes: int = 4096) -> None:
        if interval_bytes <= 0:
            raise ConfigError(f"interval_bytes must be > 0, got {interval_bytes}")
        self.interval_bytes = interval_bytes
        self._offsets: list[int] = []
        self._positions: list[int] = []
        self._bytes_since_entry = interval_bytes  # index the first record

    def maybe_add(self, offset: int, position: int, record_size: int) -> bool:
        """Record an index entry if at least ``interval_bytes`` accumulated
        since the last one.  Returns True if an entry was added."""
        if self._offsets and offset <= self._offsets[-1]:
            raise ConfigError(
                f"index offsets must increase: {offset} <= {self._offsets[-1]}"
            )
        added = False
        if self._bytes_since_entry >= self.interval_bytes:
            self._offsets.append(offset)
            self._positions.append(position)
            self._bytes_since_entry = 0
            added = True
        self._bytes_since_entry += record_size
        return added

    def extend(self, entries: list[tuple[int, int, int]]) -> int:
        """Bulk :meth:`maybe_add` of ``(offset, position, size)`` triples.

        One call per appended batch instead of one per record; state after
        the call is identical to N sequential ``maybe_add`` calls.  Returns
        the number of index entries added.
        """
        offsets = self._offsets
        positions = self._positions
        interval = self.interval_bytes
        accumulated = self._bytes_since_entry
        added = 0
        for offset, position, size in entries:
            if offsets and offset <= offsets[-1]:
                self._bytes_since_entry = accumulated
                raise ConfigError(
                    f"index offsets must increase: {offset} <= {offsets[-1]}"
                )
            if accumulated >= interval:
                offsets.append(offset)
                positions.append(position)
                accumulated = 0
                added += 1
            accumulated += size
        self._bytes_since_entry = accumulated
        return added

    def extend_run(
        self, offsets: list[int], positions: list[int], end_position: int
    ) -> int:
        """Bulk :meth:`maybe_add` for a validated, offset-ordered run.

        ``offsets``/``positions`` are the run's parallel arrays (positions
        are absolute segment byte positions, strictly increasing);
        ``end_position`` is one past the run's last byte.  Because index
        entries are sparse (one per ``interval_bytes``), this jumps from
        entry to entry with a bisect over ``positions`` instead of touching
        every record; state afterwards is identical to N sequential
        ``maybe_add`` calls.

        The caller guarantees offsets strictly increase within the run; only
        the run's head is checked against the last existing entry.
        """
        if not offsets:
            return 0
        if self._offsets and offsets[0] <= self._offsets[-1]:
            raise ConfigError(
                f"index offsets must increase: {offsets[0]} <= "
                f"{self._offsets[-1]}"
            )
        interval = self.interval_bytes
        base = positions[0]
        # First record j with interval_bytes accumulated before it:
        # _bytes_since_entry + (positions[j] - base) >= interval.
        j = bisect_left(positions, base + interval - self._bytes_since_entry)
        n = len(offsets)
        added = 0
        while j < n:
            self._offsets.append(offsets[j])
            self._positions.append(positions[j])
            added += 1
            j = bisect_left(positions, positions[j] + interval, j + 1)
        if added:
            self._bytes_since_entry = end_position - self._positions[-1]
        else:
            self._bytes_since_entry += end_position - base
        return added

    def lookup(self, offset: int) -> int:
        """Byte position of the greatest indexed offset <= ``offset``.

        Returns 0 when the offset precedes the first entry (scan from the
        segment start).
        """
        idx = bisect_right(self._offsets, offset) - 1
        if idx < 0:
            return 0
        return self._positions[idx]

    def rebuild(self, entries: list[tuple[int, int, int]]) -> None:
        """Rebuild from ``(offset, position, size)`` triples after compaction."""
        self._offsets.clear()
        self._positions.clear()
        self._bytes_since_entry = self.interval_bytes
        for offset, position, size in entries:
            self.maybe_add(offset, position, size)

    @property
    def entry_count(self) -> int:
        return len(self._offsets)

    def size_bytes(self) -> int:
        """Approximate on-disk index size (16 bytes per entry)."""
        return 16 * len(self._offsets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SparseOffsetIndex(entries={len(self._offsets)})"
