"""Log compaction: keep only the newest record per key (§4.1).

"The log is scanned asynchronously, de-duplicating messages with the same
key and keeping only the most recent data for each key."

Compaction is what makes changelog feeds (the processing layer's state
checkpoints, §3.2) both small and fast to replay: after compaction the
changelog holds one record per live state key instead of one per update —
E4 measures exactly this.

Semantics reproduced from Kafka:

* only *sealed* segments are compacted; the active segment is the "dirty"
  region and is never rewritten;
* a record survives iff no record with the same key and a higher offset
  exists anywhere in the log (including the active segment — a newer value
  still in the dirty region supersedes older sealed copies);
* surviving records keep their original offsets;
* a ``None`` value is a *tombstone*: it supersedes earlier values and is
  itself dropped once older than ``tombstone_retention_seconds``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.clock import Clock
from repro.common.errors import ConfigError
from repro.storage.log import PartitionLog


@dataclass(frozen=True)
class CompactionConfig:
    """Compaction knobs.

    ``min_dirty_ratio`` mimics Kafka's cleaner threshold: compaction only
    runs when at least that fraction of sealed bytes is superseded, so the
    cleaner does not burn I/O rewriting already-clean segments.
    """

    tombstone_retention_seconds: float = 60.0
    min_dirty_ratio: float = 0.0

    def __post_init__(self) -> None:
        if self.tombstone_retention_seconds < 0:
            raise ConfigError("tombstone_retention_seconds must be >= 0")
        if not 0.0 <= self.min_dirty_ratio <= 1.0:
            raise ConfigError("min_dirty_ratio must be in [0, 1]")


@dataclass
class CompactionResult:
    """What one compaction pass achieved."""

    ran: bool = False
    segments_rewritten: int = 0
    segments_merged: int = 0
    messages_removed: int = 0
    bytes_reclaimed: int = 0
    tombstones_dropped: int = 0


class LogCompactor:
    """Compacts a :class:`PartitionLog` in place."""

    def __init__(self, config: CompactionConfig | None = None, clock: Clock | None = None) -> None:
        self.config = config if config is not None else CompactionConfig()
        self._clock = clock

    def compact(self, log: PartitionLog, now: float | None = None) -> CompactionResult:
        """Run one compaction pass over the log's sealed segments."""
        if now is None:
            now = self._clock.now() if self._clock is not None else 0.0
        result = CompactionResult()
        sealed = log.sealed_segments()
        if not sealed:
            return result

        latest_offset_per_key = self._build_offset_map(log)
        if self.config.min_dirty_ratio > 0:
            dirty = self._dirty_ratio(log, latest_offset_per_key)
            if dirty < self.config.min_dirty_ratio:
                return result

        result.ran = True
        horizon = now - self.config.tombstone_retention_seconds
        for segment in sealed:
            survivors = []
            removed = 0
            tombstones = 0
            for message in segment.messages():
                if message.offset != latest_offset_per_key.get(message.key):
                    removed += 1
                    continue
                is_tombstone = message.value is None
                if is_tombstone and message.timestamp < horizon:
                    tombstones += 1
                    removed += 1
                    continue
                survivors.append(message)
            if removed:
                result.bytes_reclaimed += log.rewrite_segment(segment, survivors)
                result.segments_rewritten += 1
                result.messages_removed += removed
                result.tombstones_dropped += tombstones
        if result.segments_rewritten:
            result.segments_merged = log.merge_sealed_segments()
        return result

    def _build_offset_map(self, log: PartitionLog) -> dict[Any, int]:
        """Highest offset per key across the whole log (sealed + active)."""
        latest: dict[Any, int] = {}
        for segment in log.segments():
            for message in segment.messages():
                latest[message.key] = message.offset
        return latest

    def _dirty_ratio(
        self, log: PartitionLog, latest_offset_per_key: dict[Any, int]
    ) -> float:
        """Fraction of sealed bytes occupied by superseded records."""
        total = 0
        superseded = 0
        for segment in log.sealed_segments():
            for message in segment.messages():
                total += message.size
                if latest_offset_per_key.get(message.key) != message.offset:
                    superseded += message.size
        if total == 0:
            return 0.0
        return superseded / total
