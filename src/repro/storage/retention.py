"""Log retention: bound the stored history by time and/or size (§4.1).

"To put a bound on the amount of data that is stored, a retention period is
configured per topic.  This period is usually expressed in terms of time,
e.g. one month worth of data, but for operational reasons it may also be
configured as a maximum log size."

Retention deletes whole *sealed* segments from the head (oldest end) of the
log; the active segment is never deleted.  Deleting whole segments is what
keeps retention O(1) per segment regardless of log size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import Clock
from repro.common.errors import ConfigError
from repro.storage.log import PartitionLog


@dataclass(frozen=True)
class RetentionConfig:
    """Retention bounds; ``None`` disables the respective bound."""

    retention_seconds: float | None = None
    retention_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.retention_seconds is not None and self.retention_seconds < 0:
            raise ConfigError("retention_seconds must be >= 0")
        if self.retention_bytes is not None and self.retention_bytes < 0:
            raise ConfigError("retention_bytes must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.retention_seconds is not None or self.retention_bytes is not None


@dataclass
class RetentionResult:
    """What one enforcement pass removed."""

    segments_deleted: int = 0
    bytes_deleted: int = 0
    messages_deleted: int = 0
    new_log_start_offset: int = 0


class RetentionEnforcer:
    """Applies a :class:`RetentionConfig` to a :class:`PartitionLog`."""

    def __init__(self, config: RetentionConfig, clock: Clock) -> None:
        self.config = config
        self.clock = clock

    def enforce(self, log: PartitionLog) -> RetentionResult:
        """Delete expired/oversized sealed segments from the oldest end."""
        result = RetentionResult(new_log_start_offset=log.log_start_offset)
        if not self.config.enabled:
            return result
        now = self.clock.now()
        # Time-based: a sealed segment expires when its newest record is
        # older than the retention window.
        if self.config.retention_seconds is not None:
            horizon = now - self.config.retention_seconds
            for segment in list(log.sealed_segments()):
                last_ts = segment.last_timestamp
                expired = last_ts is None or last_ts < horizon
                if not expired:
                    break  # segments are time-ordered; later ones are newer
                self._drop(log, segment, result)
        # Size-based: drop oldest sealed segments while the log exceeds the cap.
        if self.config.retention_bytes is not None:
            while log.size_bytes > self.config.retention_bytes:
                sealed = log.sealed_segments()
                if not sealed:
                    break  # only the active segment remains
                self._drop(log, sealed[0], result)
        result.new_log_start_offset = log.log_start_offset
        return result

    def _drop(self, log: PartitionLog, segment, result: RetentionResult) -> None:
        result.messages_deleted += segment.message_count
        result.bytes_deleted += log.drop_segment(segment)
        result.segments_deleted += 1
