"""Log retention: bound the stored history by time and/or size (§4.1).

"To put a bound on the amount of data that is stored, a retention period is
configured per topic.  This period is usually expressed in terms of time,
e.g. one month worth of data, but for operational reasons it may also be
configured as a maximum log size."

Retention deletes whole *sealed* segments from the head (oldest end) of the
log; the active segment is never deleted.  Deleting whole segments is what
keeps retention O(1) per segment regardless of log size.

With a :class:`~repro.storage.tiered.archiver.SegmentArchiver` attached, the
enforcer runs in **archive-before-delete** mode: every sealed segment is
offloaded to the cold store before it leaves the hot log, so the retention
horizon bounds *hot* storage without destroying history — the data stays
rewindable through the cold tier (§2.2).

Empty-segment policy (explicit): a sealed segment whose records were all
compacted away has ``last_timestamp is None`` — it holds no data, so no
retention window can apply to it and deleting it can never lose anything.
The time-based pass therefore treats such segments as **immediately
expired** and the archiver skips them (there is nothing to archive).  This
also prevents empty husks from blocking the head-of-log scan: segments are
time-ordered, and an empty segment must not stop newer-but-expired segments
behind it from being examined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.clock import Clock
from repro.common.errors import ConfigError
from repro.storage.log import PartitionLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.storage.tiered.archiver import SegmentArchiver


@dataclass(frozen=True)
class RetentionConfig:
    """Retention bounds; ``None`` disables the respective bound."""

    retention_seconds: float | None = None
    retention_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.retention_seconds is not None and self.retention_seconds < 0:
            raise ConfigError("retention_seconds must be >= 0")
        if self.retention_bytes is not None and self.retention_bytes < 0:
            raise ConfigError("retention_bytes must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.retention_seconds is not None or self.retention_bytes is not None


@dataclass
class RetentionResult:
    """What one enforcement pass removed (and, in tiered mode, offloaded)."""

    segments_deleted: int = 0
    bytes_deleted: int = 0
    messages_deleted: int = 0
    new_log_start_offset: int = 0
    segments_archived: int = 0
    bytes_archived: int = 0
    archive_latency: float = 0.0


class RetentionEnforcer:
    """Applies a :class:`RetentionConfig` to a :class:`PartitionLog`.

    ``archiver`` switches on archive-before-delete: each segment is copied
    to the cold store (idempotently — replicas racing on the same segment
    upload it once) before :meth:`PartitionLog.drop_segment` removes it from
    the hot tier.
    """

    def __init__(
        self,
        config: RetentionConfig,
        clock: Clock,
        archiver: "SegmentArchiver | None" = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.archiver = archiver

    def enforce(self, log: PartitionLog) -> RetentionResult:
        """Delete expired/oversized sealed segments from the oldest end."""
        result = RetentionResult(new_log_start_offset=log.log_start_offset)
        if not self.config.enabled:
            return result
        now = self.clock.now()
        # Time-based: a sealed segment expires when its newest record is
        # older than the retention window.  Empty sealed segments (fully
        # compacted away; last_timestamp is None) are expired by policy —
        # see the module docstring.
        if self.config.retention_seconds is not None:
            horizon = now - self.config.retention_seconds
            for segment in list(log.sealed_segments()):
                last_ts = segment.last_timestamp
                expired = last_ts is None or last_ts < horizon
                if not expired:
                    break  # segments are time-ordered; later ones are newer
                self._drop(log, segment, result)
        # Size-based: drop oldest sealed segments while the log exceeds the cap.
        if self.config.retention_bytes is not None:
            while log.size_bytes > self.config.retention_bytes:
                sealed = log.sealed_segments()
                if not sealed:
                    break  # only the active segment remains
                self._drop(log, sealed[0], result)
        result.new_log_start_offset = log.log_start_offset
        return result

    def _drop(self, log: PartitionLog, segment, result: RetentionResult) -> None:
        if self.archiver is not None:
            archived = self.archiver.archive(segment)
            if archived.archived:
                result.segments_archived += 1
                result.bytes_archived += archived.size_bytes
                result.archive_latency += archived.latency
        result.messages_deleted += segment.message_count
        result.bytes_deleted += log.drop_segment(segment)
        result.segments_deleted += 1
