"""The partition log: a segmented, indexed, append-only commit log.

This is the storage engine behind every topic partition in the messaging
layer (§3.1 "distributed commit log") and the substrate of E1: because
appends always go to the tail and fetches locate their position through the
sparse index, the cost of both is independent of how much history the log
holds.

One :class:`PartitionLog` corresponds to one replica of one partition on one
broker.  Latency for each operation is computed from the shared
:class:`~repro.storage.pagecache.PageCache` and returned to the caller (the
broker adds request/network overheads on top).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from itertools import accumulate
from typing import Any

from repro.common.clock import Clock, SimClock
from repro.common.compression import BatchFrame
from repro.common.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import ConfigError, OffsetOutOfRangeError
from repro.common.records import StoredMessage
from repro.chaos.failpoints import failpoint
from repro.storage.index import SparseOffsetIndex
from repro.storage.pagecache import PageCache
from repro.storage.segment import LogSegment


@dataclass(frozen=True)
class LogConfig:
    """Per-log storage knobs (per-topic in the messaging layer)."""

    segment_max_bytes: int = 1024 * 1024
    segment_max_messages: int = 10_000
    index_interval_bytes: int = 4096
    max_message_bytes: int = 1024 * 1024

    def __post_init__(self) -> None:
        if self.segment_max_bytes <= 0:
            raise ConfigError("segment_max_bytes must be > 0")
        if self.segment_max_messages <= 0:
            raise ConfigError("segment_max_messages must be > 0")
        if self.max_message_bytes <= 0:
            raise ConfigError("max_message_bytes must be > 0")


@dataclass
class AppendResult:
    """Outcome of a log append: assigned offset plus charged latency."""

    offset: int
    latency: float


@dataclass
class BatchAppendResult:
    """Outcome of a batched append: offset range plus charged latency.

    ``latency`` is the same total the per-record path would have charged
    (record costs are accumulated in append order), so batched and looped
    appends are indistinguishable in simulated time.
    """

    base_offset: int
    last_offset: int
    latency: float
    count: int


@dataclass
class ReadResult:
    """Outcome of a log read: records plus charged latency.

    ``next_offset`` is where a sequential reader should continue — one past
    the last *scanned* record.  Layers above may filter records out of
    ``messages`` (high-watermark bounds, transaction markers); consumers
    advance by ``next_offset`` so filtered batches cannot wedge them.
    """

    messages: list[StoredMessage]
    latency: float
    log_end_offset: int
    next_offset: int = 0


class PartitionLog:
    """Segmented append-only log with sparse per-segment indexes."""

    def __init__(
        self,
        name: str,
        config: LogConfig | None = None,
        clock: Clock | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        page_cache: PageCache | None = None,
    ) -> None:
        self.name = name
        self.config = config if config is not None else LogConfig()
        self.clock = clock if clock is not None else SimClock()
        self.cost_model = cost_model
        self.page_cache = (
            page_cache
            if page_cache is not None
            else PageCache(clock=self.clock, cost_model=cost_model)
        )
        self._segments: list[LogSegment] = [LogSegment(0, self.clock.now())]
        self._indexes: dict[int, SparseOffsetIndex] = {
            0: SparseOffsetIndex(self.config.index_interval_bytes)
        }
        # Cached base offsets of self._segments, kept in sync by every
        # mutation (roll/truncate/drop/merge) so reads bisect without
        # rebuilding an O(#segments) list per call.
        self._bases: list[int] = [0]
        self._next_offset = 0
        self._log_start_offset = 0
        # Compressed-batch registry: base offset -> (last offset, frame).
        # The frame is the physical unit the records arrived in; fetch paths
        # consult it to hand consumers the still-compressed blob instead of
        # re-materialized records.  Entries are invalidated whenever the
        # covered offsets are truncated, dropped, or compacted.
        self._frames: dict[int, tuple[int, BatchFrame]] = {}
        self._frame_bases: list[int] = []

    # -- identity helpers -------------------------------------------------------

    def _file_id(self, segment: LogSegment) -> str:
        return f"{self.name}/{segment.base_offset:020d}.log"

    # -- append path --------------------------------------------------------------

    def append(
        self,
        key: Any,
        value: Any,
        timestamp: float | None = None,
        headers: dict[str, Any] | None = None,
    ) -> AppendResult:
        """Append one record at the tail; returns offset and latency."""
        now = self.clock.now()
        message = StoredMessage(
            key=key,
            value=value,
            timestamp=timestamp if timestamp is not None else now,
            offset=self._next_offset,
            headers=headers if headers is not None else {},
        )
        if message.size > self.config.max_message_bytes:
            raise ConfigError(
                f"message of {message.size}B exceeds max_message_bytes="
                f"{self.config.max_message_bytes}"
            )
        segment = self._maybe_roll(message.stored_size, now)
        position = segment.append(message, now)
        self._indexes[segment.base_offset].maybe_add(
            message.offset, position, message.stored_size
        )
        latency = self.page_cache.write(
            self._file_id(segment), position, message.stored_size
        )
        self._next_offset += 1
        return AppendResult(offset=message.offset, latency=latency)

    def append_stored(self, message: StoredMessage) -> AppendResult:
        """Append a pre-built record, preserving its offset.

        Used by follower replicas copying from the leader: offsets must match
        the leader's exactly, so gaps after the local end offset are allowed
        only when they continue the leader's sequence.
        """
        if message.offset < self._next_offset:
            raise ConfigError(
                f"replica append out of order: {message.offset} < "
                f"{self._next_offset}"
            )
        now = self.clock.now()
        segment = self._maybe_roll(message.stored_size, now)
        position = segment.append(message, now)
        self._indexes[segment.base_offset].maybe_add(
            message.offset, position, message.stored_size
        )
        latency = self.page_cache.write(
            self._file_id(segment), position, message.stored_size
        )
        self._next_offset = message.offset + 1
        return AppendResult(offset=message.offset, latency=latency)

    def append_batch(
        self,
        entries: list[tuple[Any, Any, float | None, dict[str, Any] | None]],
        frame: BatchFrame | None = None,
    ) -> BatchAppendResult:
        """Append a batch of ``(key, value, timestamp, headers)`` at the tail.

        Semantically identical to one :meth:`append` per entry — same offset
        assignment, same ``max_message_bytes`` enforcement (records before an
        oversized one are appended, then :class:`ConfigError` raised), same
        segment roll points, same index entries, and the same total simulated
        latency — but charges the page cache once per segment run and updates
        the index in bulk, so the wall-clock cost amortizes over the batch.

        With ``frame`` set the batch arrived as one compressed blob: each
        record's physical footprint becomes its share of the frame's wire
        bytes, and the frame is registered so fetches can serve the blob
        without re-materializing records.
        """
        failpoint("log.append", log=self.name, count=len(entries))
        now = self.clock.now()
        messages: list[StoredMessage] = []
        error: ConfigError | None = None
        offset = self._next_offset
        max_bytes = self.config.max_message_bytes
        for key, value, timestamp, headers in entries:
            message = StoredMessage(
                key=key,
                value=value,
                timestamp=timestamp if timestamp is not None else now,
                offset=offset,
                headers=headers if headers is not None else {},
            )
            if message.size > max_bytes:
                error = ConfigError(
                    f"message of {message.size}B exceeds max_message_bytes="
                    f"{max_bytes}"
                )
                break
            messages.append(message)
            offset += 1
        if (
            frame is not None
            and error is None
            and len(messages) == frame.count
        ):
            for message, stored in zip(messages, frame.stored_sizes()):
                message.stored_size = stored
        else:
            frame = None  # partial batch: store records uncompressed
        latency = self._append_run(messages, now)
        if frame is not None and messages:
            self.register_frame(
                messages[0].offset, messages[-1].offset, frame
            )
        if error is not None:
            raise error
        if not messages:
            return BatchAppendResult(
                self._next_offset, self._next_offset - 1, 0.0, 0
            )
        return BatchAppendResult(
            messages[0].offset, messages[-1].offset, latency, len(messages)
        )

    def append_stored_batch(
        self,
        messages: list[StoredMessage],
        frames: list[tuple[int, int, BatchFrame]] | None = None,
    ) -> BatchAppendResult:
        """Batched :meth:`append_stored`: a follower copying a fetched batch.

        Offsets must continue the leader's sequence (strictly increasing,
        starting at or beyond the local end offset; gaps from compaction are
        allowed).  Records before an out-of-order one are appended before
        :class:`ConfigError` is raised, matching the per-record loop.

        ``frames`` carries the leader's ``(base, last, frame)`` registry
        entries covering the batch: the follower re-registers the *same*
        frame objects, so the leader-to-follower hop never re-encodes a
        compressed batch (the opaque-unit property).
        """
        failpoint("log.append", log=self.name, count=len(messages))
        now = self.clock.now()
        valid = len(messages)
        error: ConfigError | None = None
        expected = self._next_offset
        for i, message in enumerate(messages):
            if message.offset < expected:
                error = ConfigError(
                    f"replica append out of order: {message.offset} < "
                    f"{expected}"
                )
                valid = i
                break
            expected = message.offset + 1
        run = messages[:valid] if valid < len(messages) else messages
        latency = self._append_run(run, now)
        if frames and run:
            lo, hi = run[0].offset, run[-1].offset
            for base, last, frame in frames:
                if lo <= base and last <= hi:  # fully appended coverage only
                    self.register_frame(base, last, frame)
        if error is not None:
            raise error
        if not run:
            return BatchAppendResult(
                self._next_offset, self._next_offset - 1, 0.0, 0
            )
        return BatchAppendResult(
            run[0].offset, run[-1].offset, latency, len(run)
        )

    def _append_run(self, messages: list[StoredMessage], now: float) -> float:
        """Append pre-built, offset-ordered records, amortizing roll checks,
        index updates and page-cache charges over segment-contiguous chunks.

        Returns the charged latency; advances ``_next_offset`` past the last
        record.  Roll decisions replay the per-record rule exactly (an empty
        active segment always accepts a record; otherwise the segment rolls
        when byte or message capacity would be exceeded).
        """
        if not messages:
            return 0.0
        config = self.config
        segment_max_bytes = config.segment_max_bytes
        segment_max_messages = config.segment_max_messages
        sizes = [m.stored_size for m in messages]
        offsets = [m.offset for m in messages]
        # cum[j] = bytes of the first j records; strictly increasing (every
        # record carries at least its framing bytes), so chunk-fit decisions
        # are a bisect rather than a per-record scan.
        cum = list(accumulate(sizes, initial=0))
        latency = 0.0
        i = 0
        n = len(messages)
        vnext = self._next_offset
        while i < n:
            active = self._segments[-1]
            count = active.message_count
            # Largest k where messages[i:i+k] pass the per-record roll rule:
            # bytes — first record whose cumulative size would overflow the
            # segment; messages — remaining capacity.
            k = (
                bisect_right(cum, cum[i] + segment_max_bytes - active.size_bytes)
                - 1
                - i
            )
            count_room = segment_max_messages - count
            if count_room < k:
                k = count_room
            if n - i < k:
                k = n - i
            if k <= 0:
                if count == 0:
                    # An empty active segment always accepts one record,
                    # even an oversized one (per-record roll semantics).
                    k = 1
                else:
                    # Active segment is full: seal and roll, as _maybe_roll
                    # would.
                    active.seal()
                    active = LogSegment(vnext, now)
                    self._segments.append(active)
                    self._bases.append(vnext)
                    self._indexes[vnext] = SparseOffsetIndex(
                        config.index_interval_bytes
                    )
                    continue
            end = i + k
            chunk = messages[i:end]
            chunk_offsets = offsets[i:end]
            start = active.size_bytes
            base = start - cum[i]
            chunk_positions = [base + c for c in cum[i:end]]
            active._extend_trusted(
                chunk, chunk_offsets, chunk_positions, base + cum[end], now
            )
            self._indexes[active.base_offset].extend_run(
                chunk_offsets, chunk_positions, base + cum[end]
            )
            latency = self.page_cache.write_batch(
                self._file_id(active), start, sizes[i:end], latency
            )
            vnext = chunk_offsets[-1] + 1
            i = end
        self._next_offset = vnext
        return latency

    def _maybe_roll(self, incoming_size: int, now: float) -> LogSegment:
        active = self._segments[-1]
        full = (
            active.size_bytes + incoming_size > self.config.segment_max_bytes
            or active.message_count >= self.config.segment_max_messages
        )
        if full and active.message_count > 0:
            active.seal()
            active = LogSegment(self._next_offset, now)
            self._segments.append(active)
            self._bases.append(active.base_offset)
            self._indexes[active.base_offset] = SparseOffsetIndex(
                self.config.index_interval_bytes
            )
        return active

    # -- read path ----------------------------------------------------------------

    def read(
        self,
        offset: int,
        max_messages: int = 100,
        max_bytes: int | None = None,
    ) -> ReadResult:
        """Read records with offset >= ``offset``; returns records + latency.

        Raises :class:`OffsetOutOfRangeError` when ``offset`` lies outside
        ``[log_start_offset, log_end_offset]``; reading exactly at the end
        offset returns an empty batch (a poll with no new data).
        """
        failpoint("log.read", log=self.name, offset=offset)
        if offset < self._log_start_offset or offset > self._next_offset:
            raise OffsetOutOfRangeError(
                offset, self._log_start_offset, self._next_offset
            )
        if max_messages <= 0:
            return ReadResult([], 0.0, self._next_offset, next_offset=offset)

        collected: list[StoredMessage] = []
        latency = 0.0
        byte_budget = max_bytes if max_bytes is not None else 1 << 62
        seg_idx = self._segment_index_for(offset)
        cursor = offset
        segments = self._segments
        while seg_idx < len(segments) and len(collected) < max_messages:
            segment = segments[seg_idx]
            # Index probe: one RAM-resident binary-search per segment touched.
            latency += self.cost_model.request_overhead / 10
            self._indexes[segment.base_offset].lookup(cursor)
            view = segment.read_from(cursor, max_messages - len(collected))
            budget_hit = False
            if view.messages:
                keep = view.prefix_within(byte_budget)
                # Kafka semantics: always deliver at least one record so an
                # oversized message cannot wedge a consumer.
                if keep == 0 and not collected:
                    keep = 1
                if keep < len(view.messages):
                    budget_hit = True
                if keep:
                    kept = (
                        view.messages
                        if keep == len(view.messages)
                        else view.messages[:keep]
                    )
                    nbytes = view.prefix_bytes(keep)
                    latency += self.page_cache.read(
                        self._file_id(segment), view.start_position, nbytes
                    )
                    collected.extend(kept)
                    byte_budget -= nbytes
                    cursor = kept[-1].offset + 1
            if budget_hit:
                break
            seg_idx += 1
            if seg_idx < len(segments):
                cursor = max(cursor, segments[seg_idx].base_offset)
        next_offset = collected[-1].offset + 1 if collected else offset
        return ReadResult(collected, latency, self._next_offset, next_offset)

    # -- compressed-batch registry -------------------------------------------------

    def register_frame(self, base: int, last: int, frame: BatchFrame) -> None:
        """Record that offsets ``[base, last]`` arrived as one frame."""
        if base not in self._frames:
            insort(self._frame_bases, base)
        self._frames[base] = (last, frame)

    def frames_between(
        self, lo: int, hi: int
    ) -> list[tuple[int, int, BatchFrame]]:
        """Frames whose full ``[base, last]`` range lies within ``[lo, hi]``.

        Only fully-covered frames are returned: a frame that was partially
        truncated or straddles the requested range cannot safely stand in
        for its records.
        """
        if not self._frame_bases:
            return []
        start = bisect_left(self._frame_bases, lo)
        end = bisect_right(self._frame_bases, hi)
        out = []
        for base in self._frame_bases[start:end]:
            last, frame = self._frames[base]
            if last <= hi:
                out.append((base, last, frame))
        return out

    def _drop_frames_overlapping(self, lo: int, hi: int) -> None:
        """Invalidate every frame overlapping offsets ``[lo, hi]``."""
        if not self._frame_bases:
            return
        end = bisect_right(self._frame_bases, hi)
        keep_head = []
        for base in self._frame_bases[:end]:
            last, _frame = self._frames[base]
            if last < lo:
                keep_head.append(base)
            else:
                del self._frames[base]
        self._frame_bases = keep_head + self._frame_bases[end:]

    def _segment_index_for(self, offset: int) -> int:
        idx = bisect_right(self._bases, offset) - 1
        if idx < 0:
            idx = 0
        # Compaction/retention may leave the target segment empty or the
        # offset past its last record; walk forward to the covering segment.
        while idx < len(self._segments):
            segment = self._segments[idx]
            last = segment.last_offset
            if last is not None and last >= offset:
                return idx
            if not segment.sealed:
                return idx
            idx += 1
        return len(self._segments) - 1

    def offset_for_timestamp(self, timestamp: float) -> int | None:
        """Earliest offset whose record timestamp >= ``timestamp``.

        This is the §3.1 "metadata-based access" primitive: consumers rewind
        to a point in time, not just to a raw offset.
        """
        for segment in self._segments:
            last_ts = segment.last_timestamp
            if last_ts is not None and last_ts >= timestamp:
                found = segment.offset_for_timestamp(timestamp)
                if found is not None:
                    return found
        return None

    # -- truncation (follower reconciliation) ------------------------------------

    def truncate_to(self, offset: int) -> int:
        """Discard all records with offset >= ``offset``; returns #removed.

        Used when a follower re-syncs with a newly elected leader whose log
        is shorter than the follower's un-replicated tail.
        """
        if offset < self._log_start_offset:
            raise ConfigError(
                f"cannot truncate below log start {self._log_start_offset}"
            )
        self._drop_frames_overlapping(offset, 1 << 62)
        removed = 0
        while self._segments and self._segments[-1].base_offset >= offset:
            victim = self._segments.pop()
            removed += victim.message_count
            self._indexes.pop(victim.base_offset, None)
            self.page_cache.forget_file(self._file_id(victim))
            if not self._segments:
                break
        if not self._segments:
            self._segments = [LogSegment(offset, self.clock.now())]
            self._indexes[offset] = SparseOffsetIndex(
                self.config.index_interval_bytes
            )
            self._bases = [offset]
        else:
            tail = self._segments[-1]
            survivors = [m for m in tail.messages() if m.offset < offset]
            removed += tail.message_count - len(survivors)
            was_sealed = tail.sealed
            if not was_sealed:
                tail.sealed = True  # replace_messages requires sealed
            tail.replace_messages(survivors)
            tail.sealed = was_sealed
            self._rebuild_index(tail)
            if tail.sealed:
                # Truncated into a sealed segment: it becomes active again.
                tail.sealed = False
            self._bases = [s.base_offset for s in self._segments]
        self._next_offset = min(self._next_offset, offset)
        return removed

    def _rebuild_index(self, segment: LogSegment) -> None:
        entries = []
        position = 0
        for message in segment.messages():
            entries.append((message.offset, position, message.stored_size))
            position += message.stored_size
        self._indexes[segment.base_offset].rebuild(entries)

    # -- retention / compaction hooks ----------------------------------------------

    def sealed_segments(self) -> list[LogSegment]:
        return [s for s in self._segments if s.sealed]

    def active_segment(self) -> LogSegment:
        return self._segments[-1]

    def drop_segment(self, segment: LogSegment) -> int:
        """Remove a sealed segment entirely (retention); returns bytes freed."""
        if not segment.sealed:
            raise ConfigError("cannot drop the active segment")
        if segment not in self._segments:
            raise ConfigError("segment does not belong to this log")
        freed = segment.size_bytes
        last = segment.last_offset
        self._drop_frames_overlapping(
            segment.base_offset, last if last is not None else segment.base_offset
        )
        self._segments.remove(segment)
        self._indexes.pop(segment.base_offset, None)
        self.page_cache.forget_file(self._file_id(segment))
        if self._segments:
            first = self._segments[0]
            start = first.first_offset
            self._log_start_offset = (
                start if start is not None else first.base_offset
            )
        else:
            self._segments = [LogSegment(self._next_offset, self.clock.now())]
            self._indexes[self._next_offset] = SparseOffsetIndex(
                self.config.index_interval_bytes
            )
            self._log_start_offset = self._next_offset
        self._bases = [s.base_offset for s in self._segments]
        return freed

    def rewrite_segment(
        self, segment: LogSegment, survivors: list[StoredMessage]
    ) -> int:
        """Compaction hook: replace a sealed segment's records; returns bytes
        reclaimed and rebuilds its index and cache pages."""
        last = segment.last_offset
        if last is not None:
            # Compaction may delete records out of a frame's range; the frame
            # can no longer stand in for its records.
            self._drop_frames_overlapping(segment.base_offset, last)
        reclaimed = segment.replace_messages(survivors)
        self._rebuild_index(segment)
        self.page_cache.forget_file(self._file_id(segment))
        # log_start_offset is NOT advanced by compaction (Kafka semantics):
        # reads below the first surviving offset skip forward to it.
        return reclaimed

    def merge_sealed_segments(self) -> int:
        """Coalesce adjacent sealed segments up to the configured segment
        size; returns the number of segments eliminated.

        Compaction leaves many small, sparse segments; merging them restores
        sequential read locality (one seek per merged segment instead of one
        per original segment), which is what makes post-compaction changelog
        recovery *faster*, as the paper claims (Kafka's cleaner groups
        segments the same way).
        """
        new_segments: list[LogSegment] = []
        group: list[LogSegment] = []
        group_bytes = 0
        group_msgs = 0
        eliminated = 0

        def flush_group() -> None:
            nonlocal group, group_bytes, group_msgs, eliminated
            if not group:
                return
            if len(group) == 1:
                new_segments.append(group[0])
            else:
                merged = LogSegment(group[0].base_offset, self.clock.now())
                bulk: list[StoredMessage] = []
                for old in group:
                    bulk.extend(old.messages())
                    self._indexes.pop(old.base_offset, None)
                    self.page_cache.forget_file(self._file_id(old))
                merged.append_bulk(bulk, self.clock.now())
                merged.seal()
                self._indexes[merged.base_offset] = SparseOffsetIndex(
                    self.config.index_interval_bytes
                )
                self._rebuild_index(merged)
                eliminated += len(group) - 1
                new_segments.append(merged)
            group = []
            group_bytes = 0
            group_msgs = 0

        for segment in self._segments:
            if not segment.sealed:
                flush_group()
                new_segments.append(segment)
                continue
            over = (
                group_bytes + segment.size_bytes > self.config.segment_max_bytes
                or group_msgs + segment.message_count
                > self.config.segment_max_messages
            )
            if group and over:
                flush_group()
            group.append(segment)
            group_bytes += segment.size_bytes
            group_msgs += segment.message_count
        flush_group()
        self._segments = new_segments
        self._bases = [s.base_offset for s in new_segments]
        return eliminated

    # -- introspection ----------------------------------------------------------------

    @property
    def log_start_offset(self) -> int:
        return self._log_start_offset

    @property
    def log_end_offset(self) -> int:
        """Offset that the *next* appended record will receive (LEO)."""
        return self._next_offset

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def size_bytes(self) -> int:
        return sum(s.size_bytes for s in self._segments)

    @property
    def message_count(self) -> int:
        return sum(s.message_count for s in self._segments)

    def segments(self) -> list[LogSegment]:
        return list(self._segments)

    def all_messages(self) -> list[StoredMessage]:
        """Every record currently retained, in offset order (tests/recovery)."""
        out: list[StoredMessage] = []
        for segment in self._segments:
            out.extend(segment.messages())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PartitionLog({self.name!r}, [{self._log_start_offset}, "
            f"{self._next_offset}), segments={len(self._segments)})"
        )
