"""Self-monitoring: Liquid's own metrics as a Liquid feed (Figure 1, §5.1).

Figure 1 routes "Logs/Metrics" through the stack itself to "Business
Metrics" and the engineer terminal, and §5.1 notes that "all data is
transported by the messaging layer, which only needs to produce a new
metric."  The :class:`MetricsPublisher` closes that loop: it periodically
snapshots the cluster's operational metrics (broker counters, latency
histograms, deployment stats, per-group lag) and publishes them as keyed
records to an ordinary feed — which downstream jobs can aggregate, alert
on, or visualize like any other data.
"""

from __future__ import annotations

from typing import Any

from repro.common.clock import SimClock
from repro.common.errors import ConfigError
from repro.messaging.cluster import MessagingCluster
from repro.messaging.producer import Producer
from repro.tools.admin import AdminClient

#: Default feed name for cluster self-metrics.
METRICS_FEED = "cluster-metrics"


class MetricsPublisher:
    """Periodically publishes cluster metrics into a feed."""

    def __init__(
        self,
        cluster: MessagingCluster,
        feed: str = METRICS_FEED,
        interval: float = 10.0,
        partitions: int = 1,
    ) -> None:
        if interval <= 0:
            raise ConfigError("interval must be > 0")
        self.cluster = cluster
        self.feed = feed
        self.interval = interval
        if feed not in cluster.topics():
            cluster.create_topic(
                feed,
                num_partitions=partitions,
                replication_factor=min(3, len(cluster.brokers())),
            )
        self._producer = Producer(cluster)
        self._admin = AdminClient(cluster)
        self.snapshots_published = 0
        self._timer = None

    # -- one snapshot ---------------------------------------------------------------

    def snapshot(self) -> list[dict[str, Any]]:
        """Build the metric records for one publication cycle."""
        now = self.cluster.clock.now()
        records: list[dict[str, Any]] = []
        stats = self._admin.describe_cluster()
        for name, value in stats.items():
            if isinstance(value, (int, float)):
                records.append(
                    {"metric": f"cluster.{name}", "value": float(value),
                     "timestamp": now}
                )
        for name in self.cluster.metrics.names():
            metric = self.cluster.metrics.get(name)
            snap = getattr(metric, "snapshot", None)
            if callable(snap):
                for stat, value in snap().items():
                    records.append(
                        {"metric": f"{name}.{stat}", "value": value,
                         "timestamp": now}
                    )
            else:
                records.append(
                    {"metric": name, "value": metric.value, "timestamp": now}
                )
        for group, lag in self._admin.all_group_lags().items():
            records.append(
                {"metric": f"group_lag.{group}", "value": float(lag),
                 "timestamp": now}
            )
        return records

    def publish_once(self) -> int:
        """Publish one snapshot; returns the number of metric records."""
        records = self.snapshot()
        for record in records:
            self._producer.send(
                self.feed, record, key=record["metric"],
                timestamp=record["timestamp"],
            )
        self.snapshots_published += 1
        return len(records)

    # -- scheduling ------------------------------------------------------------------

    def start(self) -> None:
        """Publish on every ``interval`` of simulated time."""
        if not isinstance(self.cluster.clock, SimClock):
            raise ConfigError("scheduled publishing requires a SimClock")
        self._schedule_next()

    def _schedule_next(self) -> None:
        assert isinstance(self.cluster.clock, SimClock)
        self._timer = self.cluster.clock.schedule(self.interval, self._fire)

    def _fire(self) -> None:
        self.publish_once()
        self._schedule_next()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
