"""Lint: every metric name registered by library code follows the convention.

The convention is ``layer.component.metric`` (see
:func:`repro.common.metrics.metric_name`); tests pin it for the subsystems
they exercise, but a new instrument in a rarely-driven path could slip in
with an ad-hoc name.  Two checks, run by CI after the test suite:

1. **Static** — every ``.counter("..."`` / ``.gauge("..."`` /
   ``.histogram("..."`` call in library code with a *literal* name must
   pass :func:`is_conventional`.  Names built via ``metric_name(...)`` are
   checked at build time by the helper itself.
2. **Dynamic** — drive a small full-stack deployment (produce, process,
   consume, telemetry export) and assert the resulting registry contains
   only conventional names, minus an explicit allowlist for test/scratch
   names (``--allow name`` may extend it).

Exit status 0 when clean; 1 with a report of offenders otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

from repro.common.metrics import is_conventional

#: Literal-name instrument registrations: ``registry.counter("...")`` etc.
_LITERAL_CALL = re.compile(
    r"\.\s*(?:counter|gauge|histogram)\s*\(\s*(['\"])([^'\"]+)\1"
)

#: Library paths exempt from the static scan: this linter and the metrics
#: module itself (its docstrings/examples mention short names).
_ALLOWED_PATHS = ("repro/tools/lint_metrics.py", "repro/common/metrics.py")

#: Registered names that are allowed to break the convention.  Empty today;
#: test/scratch names belong here (or in ``--allow``) if a future dynamic
#: exercise needs one.
DEFAULT_ALLOWLIST: frozenset[str] = frozenset()


def find_static_offenders(src_root: Path) -> list[str]:
    """Library lines registering a non-conventional literal metric name."""
    offenders: list[str] = []
    for path in sorted(src_root.rglob("*.py")):
        relative = path.relative_to(src_root).as_posix()
        if relative in _ALLOWED_PATHS:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            stripped = line.split("#", 1)[0]
            for match in _LITERAL_CALL.finditer(stripped):
                name = match.group(2)
                if not is_conventional(name):
                    offenders.append(f"{relative}:{lineno}: {line.strip()}")
    return offenders


def find_runtime_offenders(allow: frozenset[str] = DEFAULT_ALLOWLIST) -> list[str]:
    """Non-conventional names registered by a representative deployment."""
    from repro.core.liquid import Liquid
    from repro.processing.job import JobConfig

    class _PassThrough:
        def process(self, record, collector):
            collector.send("derived", record.value, key=record.key)

    liquid = Liquid(num_brokers=3)
    liquid.enable_telemetry(interval=0.5, with_slos=True)
    liquid.create_feed("source", partitions=1)
    liquid.submit_job(
        JobConfig(name="lint-job", inputs=["source"], task_factory=_PassThrough),
        outputs=["derived"],
    )
    producer = liquid.producer()
    for i in range(10):
        producer.send("source", {"i": i}, key=f"k{i}")
    producer.flush()
    liquid.process_available()
    liquid.tick(2.0)  # fire at least one telemetry export cycle
    return sorted(
        name
        for name in liquid.cluster.metrics.names()
        if name not in allow and not is_conventional(name)
    )


def main(argv: list[str] | None = None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    allow = set(DEFAULT_ALLOWLIST)
    paths: list[str] = []
    while args:
        arg = args.pop(0)
        if arg == "--allow":
            if not args:
                print("lint_metrics: --allow needs a name", file=sys.stderr)
                return 2
            allow.add(args.pop(0))
        else:
            paths.append(arg)
    src_root = Path(paths[0]) if paths else Path(__file__).resolve().parents[2]
    offenders = find_static_offenders(src_root)
    runtime = find_runtime_offenders(frozenset(allow))
    if offenders:
        print("metric lint: library code registers non-conventional literals:")
        for offender in offenders:
            print(f"  {offender}")
    if runtime:
        print(f"metric lint: non-conventional names at runtime: {runtime}")
    if offenders or runtime:
        return 1
    print("metric lint: OK (every registered name is layer.component.metric)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
