"""Operational tooling: the engineer-facing inspection surface."""

from repro.tools.admin import AdminClient, GroupLag, HealthReport, PartitionInfo
from repro.tools.metrics_feed import METRICS_FEED, MetricsPublisher
from repro.tools.tracequery import SpanNode, TraceQuery, render_timeline

__all__ = [
    "AdminClient",
    "PartitionInfo",
    "GroupLag",
    "HealthReport",
    "MetricsPublisher",
    "METRICS_FEED",
    "TraceQuery",
    "SpanNode",
    "render_timeline",
]
