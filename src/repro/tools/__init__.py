"""Operational tooling: the engineer-facing inspection surface."""

from repro.tools.admin import AdminClient, GroupLag, HealthReport, PartitionInfo
from repro.tools.metrics_feed import METRICS_FEED, MetricsPublisher

__all__ = [
    "AdminClient",
    "PartitionInfo",
    "GroupLag",
    "HealthReport",
    "MetricsPublisher",
    "METRICS_FEED",
]
