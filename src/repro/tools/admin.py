"""Operational inspection: the "Engineer Terminal" of Figure 1.

Figure 1 shows engineers interacting with the Liquid stack directly, and
§5.1's operational-analysis use case describes "an internal service
[presenting] a range of business, operational and user metrics ... that help
different teams understand the current infrastructure status."

:class:`AdminClient` is that surface for this reproduction: structured
descriptions of brokers, topics, partitions (leader/ISR/offsets), consumer
groups (positions + lag), feeds (lineage), and a health check that flags the
conditions an on-call engineer cares about — offline partitions,
under-replicated partitions, and lagging consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.common.errors import TopicNotFoundError
from repro.common.metrics import metric_name
from repro.common.records import TopicPartition
from repro.messaging.cluster import MessagingCluster

# Compression / prefetch observability surfaced by describe_cluster.
_M_COMPRESSION_RATIO = metric_name("messaging", "producer", "compression_ratio")
_M_BYTES_SAVED = metric_name("messaging", "broker", "bytes_saved")
_M_WIRE_BYTES = metric_name("messaging", "cluster", "bytes_on_wire")
_M_PREFETCH_HITS = metric_name("messaging", "consumer", "prefetch_hits")

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.health import ClusterHealthReport
    from repro.observability.trace import Tracer


@dataclass
class PartitionInfo:
    """Operational view of one partition."""

    partition: TopicPartition
    leader: int | None
    replicas: list[int]
    isr: list[int]
    epoch: int
    log_start_offset: int
    high_watermark: int
    log_end_offset: int
    #: Tiered-storage stats on the leader (None for untiered partitions):
    #: archived bytes/segments, earliest archived offset, cold-hit ratio.
    tiered: dict[str, Any] | None = None

    @property
    def online(self) -> bool:
        return self.leader is not None

    @property
    def under_replicated(self) -> bool:
        return len(self.isr) < len(self.replicas)

    @property
    def archived_bytes(self) -> int:
        return self.tiered["archived_bytes"] if self.tiered else 0

    @property
    def cold_hit_ratio(self) -> float | None:
        return self.tiered["cold_hit_ratio"] if self.tiered else None


@dataclass
class GroupLag:
    """One consumer group's position on one partition."""

    group: str
    partition: TopicPartition
    committed_offset: int | None
    end_offset: int

    @property
    def lag(self) -> int:
        if self.committed_offset is None:
            return self.end_offset
        return max(0, self.end_offset - self.committed_offset)


@dataclass
class HealthReport:
    """What an on-call engineer needs to know right now."""

    live_brokers: int
    total_brokers: int
    offline_partitions: list[TopicPartition] = field(default_factory=list)
    under_replicated: list[TopicPartition] = field(default_factory=list)
    lagging_groups: list[GroupLag] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return (
            self.live_brokers == self.total_brokers
            and not self.offline_partitions
            and not self.under_replicated
            and not self.lagging_groups
        )


# ---------------------------------------------------------------------------
# Typed admin reports
#
# Every report method returns one of these frozen dataclasses: fields for
# programmatic use, ``as_dict()`` for the loose nested-dict shape the methods
# used to return (serialization, diffing, older scripts).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PartitionLag:
    """One consumer group's standing on one partition."""

    topic: str
    partition: int
    committed_offset: int | None
    end_offset: int
    lag: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "topic": self.topic,
            "partition": self.partition,
            "committed_offset": self.committed_offset,
            "end_offset": self.end_offset,
            "lag": self.lag,
        }


@dataclass(frozen=True)
class GroupLagReport:
    """Lag standings and smoothed consumption rate of one consumer group."""

    group: str
    partitions: tuple[PartitionLag, ...]
    consumption_rate: float

    @property
    def total_lag(self) -> int:
        return sum(p.lag for p in self.partitions)

    def as_dict(self) -> dict[str, Any]:
        return {
            "partitions": [p.as_dict() for p in self.partitions],
            "total_lag": self.total_lag,
            "consumption_rate": self.consumption_rate,
        }


@dataclass(frozen=True)
class ConsumerLagReport:
    """Lag standings of every known consumer group."""

    groups: tuple[GroupLagReport, ...]

    def group(self, name: str) -> GroupLagReport:
        for entry in self.groups:
            if entry.group == name:
                return entry
        raise KeyError(
            f"unknown group {name!r}; known: {[g.group for g in self.groups]}"
        )

    def as_dict(self) -> dict[str, dict[str, Any]]:
        return {entry.group: entry.as_dict() for entry in self.groups}


@dataclass(frozen=True)
class OpenTransaction:
    """The coordinator's view of one still-open transaction."""

    transactional_id: str
    producer_id: int
    epoch: int
    partitions: tuple[str, ...]
    pending_offsets: int
    decided: str | None

    def as_dict(self) -> dict[str, Any]:
        return {
            "transactional_id": self.transactional_id,
            "producer_id": self.producer_id,
            "epoch": self.epoch,
            "partitions": list(self.partitions),
            "pending_offsets": self.pending_offsets,
            "decided": self.decided,
        }


@dataclass(frozen=True)
class TransactionReport:
    """Open transactions, the LSO lag they impose, lifecycle counters."""

    open_transactions: tuple[OpenTransaction, ...]
    #: ``str(TopicPartition) -> high_watermark - last_stable_offset`` for
    #: every partition where an open transaction holds records back.
    lso_lag: dict[str, int]
    #: ``messaging.transactions.*`` counter values, keyed by short name.
    counters: dict[str, float]

    def as_dict(self) -> dict[str, Any]:
        return {
            "open_transactions": [t.as_dict() for t in self.open_transactions],
            "lso_lag": dict(self.lso_lag),
            "counters": dict(self.counters),
        }


@dataclass(frozen=True)
class StageLatency:
    """Latency percentiles of one traced stage."""

    stage: str
    count: int
    p50: float
    p99: float

    def as_dict(self) -> dict[str, float]:
        return {"count": float(self.count), "p50": self.p50, "p99": self.p99}


@dataclass(frozen=True)
class StageLatencyReport:
    """Per-stage latency percentiles from the tracing layer's spans."""

    stages: tuple[StageLatency, ...]

    def stage(self, name: str) -> StageLatency:
        for entry in self.stages:
            if entry.stage == name:
                return entry
        raise KeyError(
            f"unknown stage {name!r}; known: {[s.stage for s in self.stages]}"
        )

    def __bool__(self) -> bool:
        return bool(self.stages)

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {entry.stage: entry.as_dict() for entry in self.stages}


class AdminClient:
    """Read-only operational views over a messaging cluster."""

    def __init__(self, cluster: MessagingCluster) -> None:
        self.cluster = cluster

    # -- cluster / topics -----------------------------------------------------------

    def describe_cluster(self) -> dict[str, Any]:
        stats = self.cluster.stats()
        stats["controller"] = self.cluster.controller.controller_id
        stats["offline_partitions"] = len(
            self.cluster.controller.offline_partitions()
        )
        stats["compression"] = self.compression_stats()
        return stats

    def compression_stats(self) -> dict[str, float]:
        """Batch-compression and prefetch effectiveness, cluster-wide.

        ``mean_compression_ratio`` is logical/wire averaged over produced
        frames (0.0 until a compressing producer has flushed);
        ``bytes_saved`` the cumulative wire/storage bytes compression
        avoided; ``bytes_on_wire`` every physical byte the simulated network
        moved; ``prefetch_hits`` polls served from a fetch issued ahead of
        demand.
        """
        metrics = self.cluster.metrics
        ratio = metrics.histogram(_M_COMPRESSION_RATIO)
        return {
            "mean_compression_ratio": ratio.mean if ratio.count else 0.0,
            "compressed_batches": float(ratio.count),
            "bytes_saved": metrics.counter(_M_BYTES_SAVED).value,
            "bytes_on_wire": metrics.counter(_M_WIRE_BYTES).value,
            "prefetch_hits": metrics.counter(_M_PREFETCH_HITS).value,
        }

    def describe_topic(self, topic: str) -> list[PartitionInfo]:
        config = self.cluster.topic_config(topic)  # raises if unknown
        infos = []
        for tp in self.cluster.partitions_of(topic):
            state = self.cluster.controller.partition_state(tp)
            tiered = None
            if state.leader is not None:
                replica = self.cluster.broker(state.leader).replica(tp)
                log_start = replica.log.log_start_offset
                hw = replica.high_watermark
                leo = replica.log_end_offset
                if replica.cold_tier is not None:
                    tiered = replica.cold_tier.stats()
            else:
                log_start = hw = leo = 0
            infos.append(
                PartitionInfo(
                    partition=tp,
                    leader=state.leader,
                    replicas=list(state.replicas),
                    isr=list(state.isr),
                    epoch=state.epoch,
                    log_start_offset=log_start,
                    high_watermark=hw,
                    log_end_offset=leo,
                    tiered=tiered,
                )
            )
        assert config is not None
        return infos

    def under_replicated_partitions(self) -> list[TopicPartition]:
        out = []
        for topic in self.cluster.topics():
            for info in self.describe_topic(topic):
                if info.under_replicated:
                    out.append(info.partition)
        return out

    # -- consumer groups -----------------------------------------------------------------

    def consumer_lag(self, group: str) -> list[GroupLag]:
        """Lag of every partition the group has ever committed."""
        out = []
        for tp, commit in self.cluster.offset_manager.fetch_group(group).items():
            try:
                end = self.cluster.end_offset(tp)
            except TopicNotFoundError:
                continue
            out.append(
                GroupLag(
                    group=group,
                    partition=tp,
                    committed_offset=commit.offset,
                    end_offset=end,
                )
            )
        return sorted(out, key=lambda lag: str(lag.partition))

    def all_group_lags(self) -> dict[str, int]:
        """Total lag per known group."""
        return {
            group: sum(entry.lag for entry in self.consumer_lag(group))
            for group in sorted(self.cluster.offset_manager.groups())
        }

    def consumer_lag_report(self, alpha: float = 0.3) -> ConsumerLagReport:
        """Per-group lag standings with smoothed consumption rates.

        For every known group: per-partition committed offset, end offset,
        and lag, plus an EWMA consumption rate (records per simulated
        second, smoothing factor ``alpha``) derived from the offset
        manager's commit history — the operator view of the signal the
        elasticity layer's autoscaler acts on, and the numbers behind an
        ``all_group_lags`` summary when an on-call engineer needs to know
        *which* partition is behind and whether the group is gaining.
        Returns a typed :class:`ConsumerLagReport`
        (``.as_dict()`` restores the legacy nested-dict shape).
        """
        from repro.elasticity.lagmonitor import Ewma

        manager = self.cluster.offset_manager
        groups: list[GroupLagReport] = []
        for group in sorted(manager.groups()):
            partitions: list[PartitionLag] = []
            rate_ewma = Ewma(alpha)
            for entry in self.consumer_lag(group):
                for elapsed, advanced in manager.consumption_deltas(
                    group, entry.partition
                ):
                    rate_ewma.update(advanced / elapsed)
                partitions.append(
                    PartitionLag(
                        topic=entry.partition.topic,
                        partition=entry.partition.partition,
                        committed_offset=entry.committed_offset,
                        end_offset=entry.end_offset,
                        lag=entry.lag,
                    )
                )
            groups.append(
                GroupLagReport(
                    group=group,
                    partitions=tuple(partitions),
                    consumption_rate=rate_ewma.value,
                )
            )
        return ConsumerLagReport(groups=tuple(groups))

    # -- health -------------------------------------------------------------------------------

    def health_check(self, max_group_lag: int = 1000) -> HealthReport:
        controller = self.cluster.controller
        report = HealthReport(
            live_brokers=len(controller.live_brokers()),
            total_brokers=len(self.cluster.brokers()),
            offline_partitions=controller.offline_partitions(),
            under_replicated=self.under_replicated_partitions(),
        )
        for group in self.cluster.offset_manager.groups():
            if group.startswith("__"):
                continue  # internal groups (mirrors) have their own alerts
            for entry in self.consumer_lag(group):
                if entry.lag > max_group_lag:
                    report.lagging_groups.append(entry)
        return report

    def cluster_health_report(
        self,
        runners: Iterable = (),
        valves: Iterable = (),
        servers: Iterable = (),
        **thresholds: Any,
    ) -> "ClusterHealthReport":
        """The full health rollup: one status, machine-readable reasons.

        Extends :meth:`health_check` beyond messaging: pass the
        deployment's job ``runners`` (standby staleness), backpressure
        ``valves``, and state ``servers`` and the verdict covers broker
        liveness, ISR state, consumer lag, open transactions, valve state,
        and standby staleness in one typed
        :class:`~repro.observability.health.ClusterHealthReport`
        (``healthy`` / ``degraded`` / ``unhealthy``; ``.as_dict()`` for
        serialization).  Threshold knobs (``max_group_lag``,
        ``max_standby_staleness``, ``max_lso_lag``) pass through to
        :func:`~repro.observability.health.evaluate_cluster_health`.
        """
        from repro.observability.health import evaluate_cluster_health

        return evaluate_cluster_health(
            self.cluster,
            runners=runners,
            valves=valves,
            servers=servers,
            **thresholds,
        )

    # -- transactions -------------------------------------------------------------------------------

    def transaction_report(self) -> TransactionReport:
        """Open transactions and the LSO lag they impose, per partition.

        ``open_transactions`` is the coordinator's view (id, producer id,
        epoch, touched partitions, staged offset count); ``lso_lag`` maps
        every partition whose last stable offset trails its high watermark —
        records a ``read_committed`` consumer cannot see yet because an
        open transaction holds them back.  Lifecycle counters come from the
        ``messaging.transactions.*`` instruments.  Returns a typed
        :class:`TransactionReport` (``.as_dict()`` restores the legacy shape).
        """
        from repro.messaging.transactions import get_transaction_coordinator

        coordinator = get_transaction_coordinator(self.cluster)
        lso_lag: dict[str, int] = {}
        for topic in self.cluster.topics():
            for tp in self.cluster.partitions_of(topic):
                state = self.cluster.controller.partition_state(tp)
                if state.leader is None:
                    continue
                replica = self.cluster.broker(state.leader).replica(tp)
                lag = replica.high_watermark - replica.last_stable_offset
                if lag > 0:
                    lso_lag[str(tp)] = lag
        metrics = self.cluster.metrics
        counters = {
            name.rsplit(".", 1)[-1]: metrics.counter(name).value
            for name in metrics.names()
            if name.startswith("messaging.transactions.")
        }
        return TransactionReport(
            open_transactions=tuple(
                OpenTransaction(
                    transactional_id=txn["transactional_id"],
                    producer_id=txn["producer_id"],
                    epoch=txn["epoch"],
                    partitions=tuple(txn["partitions"]),
                    pending_offsets=txn["pending_offsets"],
                    decided=txn["decided"],
                )
                for txn in coordinator.open_transactions()
            ),
            lso_lag=dict(sorted(lso_lag.items())),
            counters=counters,
        )

    # -- tracing ------------------------------------------------------------------------------------

    def stage_latency_report(
        self, tracer: "Tracer | None" = None
    ) -> StageLatencyReport:
        """Per-stage latency percentiles from the tracing layer's spans.

        Groups the tracer's retained spans by stage name and reports
        count/p50/p99 simulated seconds for each — the per-record complement
        to the aggregate ``*_latency`` histograms in the metrics registry.
        Uses the installed tracer when none is passed; the report is empty
        (falsy) when tracing is off or nothing was retained.  Returns a
        typed :class:`StageLatencyReport` (``.as_dict()`` restores the
        legacy shape).
        """
        from repro.common.metrics import Histogram
        from repro.observability.trace import current_tracer

        tracer = tracer if tracer is not None else current_tracer()
        if tracer is None:
            return StageLatencyReport(stages=())
        by_stage: dict[str, Histogram] = {}
        for span in tracer.spans():
            histogram = by_stage.get(span.name)
            if histogram is None:
                histogram = by_stage[span.name] = Histogram(span.name)
            histogram.observe(span.duration)
        return StageLatencyReport(
            stages=tuple(
                StageLatency(
                    stage=name,
                    count=histogram.count,
                    p50=histogram.percentile(50),
                    p99=histogram.percentile(99),
                )
                for name, histogram in sorted(by_stage.items())
            )
        )

    # -- rendering ---------------------------------------------------------------------------------

    def format_topic(self, topic: str) -> str:
        """Human-readable one-screen description of a topic."""
        lines = [f"Topic: {topic}"]
        for info in self.describe_topic(topic):
            state = "ONLINE" if info.online else "OFFLINE"
            flag = " UNDER-REPLICATED" if info.under_replicated else ""
            lines.append(
                f"  partition {info.partition.partition}: leader={info.leader} "
                f"isr={info.isr} epoch={info.epoch} "
                f"offsets=[{info.log_start_offset}..{info.high_watermark}"
                f"/{info.log_end_offset}] {state}{flag}"
            )
            if info.tiered is not None:
                ratio = info.cold_hit_ratio
                ratio_str = f"{ratio:.2f}" if ratio is not None else "n/a"
                lines.append(
                    f"    tiered: archived={info.tiered['archived_segments']} "
                    f"segments/{info.archived_bytes}B "
                    f"range=[{info.tiered['archived_start_offset']}.."
                    f"{info.tiered['archived_end_offset']}) "
                    f"cold_hit_ratio={ratio_str}"
                )
        return "\n".join(lines)

    def format_health(self, report: HealthReport | None = None) -> str:
        if report is None:
            report = self.health_check()
        lines = [
            f"Brokers: {report.live_brokers}/{report.total_brokers} live",
            f"Offline partitions: {len(report.offline_partitions)}",
            f"Under-replicated partitions: {len(report.under_replicated)}",
            f"Lagging consumer groups: {len(report.lagging_groups)}",
            f"Status: {'HEALTHY' if report.healthy else 'DEGRADED'}",
        ]
        return "\n".join(lines)
