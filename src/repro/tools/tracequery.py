"""Trace reconstruction and rendering (§5.1 "operational analysis").

The tracer (:mod:`repro.observability.trace`) collects flat spans; this
module turns them back into what an engineer asks for: *what happened to
this record?*  :class:`TraceQuery` groups a tracer's span buffer by trace,
rebuilds each trace's parent/child tree, and answers structural questions
(roots, children, stage names, connectivity); :func:`render_timeline` draws
one trace as an indented timeline for the terminal.

Everything here is read-only over ``Tracer.spans()`` — querying a trace
never mutates the tracer, and a query sees whatever the ring buffer
currently retains (a trace whose early spans were evicted renders as a
forest with more than one root).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.trace import Span, Tracer

__all__ = ["SpanNode", "TraceQuery", "render_timeline"]


@dataclass
class SpanNode:
    """One span plus its resolved children, ordered by (start, span id)."""

    span: Span
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.span.name

    def walk(self) -> list["SpanNode"]:
        """This node and every descendant, depth-first."""
        out = [self]
        for child in self.children:
            out.extend(child.walk())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpanNode({self.span.name}, children={len(self.children)})"


class TraceQuery:
    """Query API over one tracer's retained spans."""

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer

    # -- trace inventory ----------------------------------------------------------

    def trace_ids(self) -> list[str]:
        """Traces with at least one retained span, by first appearance."""
        return self.tracer.trace_ids()

    def spans(self, trace_id: str) -> list[Span]:
        """Retained spans of ``trace_id``, ordered by (start, span id)."""
        return self.tracer.spans_for(trace_id)

    # -- tree reconstruction ------------------------------------------------------

    def tree(self, trace_id: str) -> list[SpanNode]:
        """Rebuild the span tree of ``trace_id``; returns its roots.

        A fully retained trace has exactly one root (the ``produce.send``
        that started it).  Spans whose parent was evicted from the ring
        buffer — or sampled before the buffer wrapped — surface as extra
        roots rather than being dropped, so partial traces stay visible.
        """
        spans = self.spans(trace_id)
        nodes = {span.span_id: SpanNode(span) for span in spans}
        roots: list[SpanNode] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = (
                nodes.get(span.parent_id) if span.parent_id is not None else None
            )
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: (n.span.start, n.span.span_id))
        return roots

    def is_connected(self, trace_id: str) -> bool:
        """True when every retained span hangs off one single root."""
        return len(self.tree(trace_id)) == 1

    def stages(self, trace_id: str) -> list[str]:
        """Span names of the trace in (start, span id) order."""
        return [span.name for span in self.spans(trace_id)]

    def find(self, trace_id: str, name: str) -> list[Span]:
        """All spans of the trace with stage name ``name``."""
        return [span for span in self.spans(trace_id) if span.name == name]

    def duration(self, trace_id: str) -> float:
        """Simulated seconds from the first span start to the last end."""
        spans = self.spans(trace_id)
        if not spans:
            return 0.0
        return max(s.end for s in spans) - min(s.start for s in spans)


def render_timeline(trace_id: str, tracer: Tracer) -> str:
    """Render one trace as an indented, time-annotated tree::

        trace 1d8a44f0c3e2 (7 spans, 0.004521s)
        └─ produce.send [0.000000s +0.001200s] topic=clicks partition=0
           ├─ broker.append [0.000000s +0.000800s] broker=0 offset=0
           ...

    Times are the simulated clock: absolute start (relative to the trace's
    first span) and ``+duration``.  Attributes render as ``key=value`` pairs
    in insertion order.
    """
    query = TraceQuery(tracer)
    spans = query.spans(trace_id)
    if not spans:
        return f"trace {trace_id} (no retained spans)"
    origin = min(s.start for s in spans)
    lines = [
        f"trace {trace_id} ({len(spans)} spans, "
        f"{query.duration(trace_id):.6f}s)"
    ]

    def draw(node: SpanNode, prefix: str, last: bool) -> None:
        span = node.span
        attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
        connector = "└─" if last else "├─"
        lines.append(
            f"{prefix}{connector} {span.name} "
            f"[{span.start - origin:.6f}s +{span.duration:.6f}s]"
            + (f" {attrs}" if attrs else "")
        )
        child_prefix = prefix + ("   " if last else "│  ")
        for i, child in enumerate(node.children):
            draw(child, child_prefix, i == len(node.children) - 1)

    roots = query.tree(trace_id)
    for i, root in enumerate(roots):
        draw(root, "", i == len(roots) - 1)
    return "\n".join(lines)
